//! Tiered topologies of compute nodes and network links.

use std::collections::HashMap;

use simclock::SimDuration;

/// The four tiers of the paper's fog model (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Smartphones, Raspberry Pis: collect sensor/camera data.
    Edge,
    /// Embedded accelerators (NVIDIA Jetson-class): aggregate edges, run the
    /// first layers of models.
    Fog,
    /// Analysis servers: train models, run full inference.
    Server,
    /// Federated cloud (AWS/Azure + GENI/XSEDE): long-term storage & mining.
    Cloud,
}

impl Tier {
    /// All tiers bottom-up.
    pub const ALL: [Tier; 4] = [Tier::Edge, Tier::Fog, Tier::Server, Tier::Cloud];

    /// Lowercase tier name, used in metric names
    /// (e.g. `scfog_sim_queue_wait_edge_seconds`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Edge => "edge",
            Tier::Fog => "fog",
            Tier::Server => "server",
            Tier::Cloud => "cloud",
        }
    }

    /// The tier above, if any.
    pub fn upstream(self) -> Option<Tier> {
        match self {
            Tier::Edge => Some(Tier::Fog),
            Tier::Fog => Some(Tier::Server),
            Tier::Server => Some(Tier::Cloud),
            Tier::Cloud => None,
        }
    }
}

/// Identifier of a node in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FogNodeId(pub u32);

/// Hardware description of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Sustained compute throughput in operations per second.
    pub flops: f64,
    /// Memory in MB (bounds model size; informational in the simulator).
    pub memory_mb: u64,
}

/// A directed network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

/// Default per-tier hardware (edge ≈ Raspberry Pi, fog ≈ Jetson, server ≈
/// GPU box, cloud ≈ elastic) and uplink characteristics (edge uplinks are
/// slow cellular/WiFi; server→cloud rides Internet2).
fn default_spec(tier: Tier) -> NodeSpec {
    match tier {
        Tier::Edge => NodeSpec {
            flops: 5e8,
            memory_mb: 1_024,
        },
        Tier::Fog => NodeSpec {
            flops: 5e9,
            memory_mb: 8_192,
        },
        Tier::Server => NodeSpec {
            flops: 1e11,
            memory_mb: 131_072,
        },
        Tier::Cloud => NodeSpec {
            flops: 1e12,
            memory_mb: 1_048_576,
        },
    }
}

fn default_uplink(tier: Tier) -> Link {
    match tier {
        Tier::Edge => Link {
            latency: SimDuration::from_millis(5),
            bandwidth_bps: 2e6,
        },
        Tier::Fog => Link {
            latency: SimDuration::from_millis(10),
            bandwidth_bps: 2e7,
        },
        Tier::Server => Link {
            latency: SimDuration::from_millis(20),
            bandwidth_bps: 1.25e9,
        },
        Tier::Cloud => Link {
            latency: SimDuration::ZERO,
            bandwidth_bps: f64::INFINITY,
        },
    }
}

/// A tiered topology: every non-cloud node has exactly one upstream parent.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<(FogNodeId, Tier, NodeSpec)>,
    parents: HashMap<FogNodeId, (FogNodeId, Link)>,
}

impl Topology {
    /// Builds the canonical four-tier tree: one cloud, `servers` analysis
    /// servers, `fogs_per_server` fog nodes per server, `edges_per_fog` edge
    /// devices per fog node, with default hardware and links.
    ///
    /// # Panics
    ///
    /// Panics if any fan-out is zero.
    pub fn four_tier(edges_per_fog: usize, fogs_per_server: usize, servers: usize) -> Self {
        assert!(
            edges_per_fog > 0 && fogs_per_server > 0 && servers > 0,
            "fan-outs must be positive"
        );
        let mut topo = Topology {
            nodes: Vec::new(),
            parents: HashMap::new(),
        };
        let cloud = topo.add_node(Tier::Cloud, default_spec(Tier::Cloud));
        for _ in 0..servers {
            let server = topo.add_node(Tier::Server, default_spec(Tier::Server));
            topo.connect(server, cloud, default_uplink(Tier::Server));
            for _ in 0..fogs_per_server {
                let fog = topo.add_node(Tier::Fog, default_spec(Tier::Fog));
                topo.connect(fog, server, default_uplink(Tier::Fog));
                for _ in 0..edges_per_fog {
                    let edge = topo.add_node(Tier::Edge, default_spec(Tier::Edge));
                    topo.connect(edge, fog, default_uplink(Tier::Edge));
                }
            }
        }
        topo
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, tier: Tier, spec: NodeSpec) -> FogNodeId {
        let id = FogNodeId(self.nodes.len() as u32);
        self.nodes.push((id, tier, spec));
        id
    }

    /// Declares `parent` as `child`'s upstream over `link`.
    pub fn connect(&mut self, child: FogNodeId, parent: FogNodeId, link: Link) {
        self.parents.insert(child, (parent, link));
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The tier of a node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn tier(&self, id: FogNodeId) -> Tier {
        self.nodes[id.0 as usize].1
    }

    /// The hardware spec of a node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn spec(&self, id: FogNodeId) -> NodeSpec {
        self.nodes[id.0 as usize].2
    }

    /// The upstream parent and link of a node, if any.
    pub fn parent(&self, id: FogNodeId) -> Option<(FogNodeId, Link)> {
        self.parents.get(&id).copied()
    }

    /// All nodes of a tier.
    pub fn nodes_in_tier(&self, tier: Tier) -> Vec<FogNodeId> {
        self.nodes
            .iter()
            .filter(|(_, t, _)| *t == tier)
            .map(|(id, _, _)| *id)
            .collect()
    }

    /// The upstream chain from `id` (exclusive) to the root (inclusive).
    pub fn path_to_root(&self, id: FogNodeId) -> Vec<(FogNodeId, Link)> {
        let mut path = Vec::new();
        let mut cur = id;
        while let Some((parent, link)) = self.parent(cur) {
            path.push((parent, link));
            cur = parent;
        }
        path
    }

    /// The ancestor of `id` at `tier`, if the chain reaches it.
    pub fn ancestor_at(&self, id: FogNodeId, tier: Tier) -> Option<FogNodeId> {
        if self.tier(id) == tier {
            return Some(id);
        }
        self.path_to_root(id)
            .into_iter()
            .find(|(n, _)| self.tier(*n) == tier)
            .map(|(n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_tier_counts() {
        let t = Topology::four_tier(4, 3, 2);
        assert_eq!(t.nodes_in_tier(Tier::Cloud).len(), 1);
        assert_eq!(t.nodes_in_tier(Tier::Server).len(), 2);
        assert_eq!(t.nodes_in_tier(Tier::Fog).len(), 6);
        assert_eq!(t.nodes_in_tier(Tier::Edge).len(), 24);
        assert_eq!(t.len(), 33);
    }

    #[test]
    fn every_edge_reaches_cloud() {
        let t = Topology::four_tier(3, 2, 2);
        for edge in t.nodes_in_tier(Tier::Edge) {
            let path = t.path_to_root(edge);
            assert_eq!(path.len(), 3, "edge→fog→server→cloud");
            assert_eq!(t.tier(path[0].0), Tier::Fog);
            assert_eq!(t.tier(path[1].0), Tier::Server);
            assert_eq!(t.tier(path[2].0), Tier::Cloud);
        }
    }

    #[test]
    fn ancestor_lookup() {
        let t = Topology::four_tier(2, 2, 1);
        let edge = t.nodes_in_tier(Tier::Edge)[0];
        assert_eq!(t.ancestor_at(edge, Tier::Edge), Some(edge));
        let server = t.ancestor_at(edge, Tier::Server).unwrap();
        assert_eq!(t.tier(server), Tier::Server);
        let cloud = t.ancestor_at(edge, Tier::Cloud).unwrap();
        assert_eq!(t.tier(cloud), Tier::Cloud);
    }

    #[test]
    fn tiers_get_faster_upstream() {
        let t = Topology::four_tier(1, 1, 1);
        let edge = t.nodes_in_tier(Tier::Edge)[0];
        let fog = t.nodes_in_tier(Tier::Fog)[0];
        let server = t.nodes_in_tier(Tier::Server)[0];
        assert!(t.spec(fog).flops > t.spec(edge).flops);
        assert!(t.spec(server).flops > t.spec(fog).flops);
    }

    #[test]
    fn upstream_ordering() {
        assert_eq!(Tier::Edge.upstream(), Some(Tier::Fog));
        assert_eq!(Tier::Cloud.upstream(), None);
    }

    #[test]
    fn cloud_has_no_parent() {
        let t = Topology::four_tier(1, 1, 1);
        let cloud = t.nodes_in_tier(Tier::Cloud)[0];
        assert!(t.parent(cloud).is_none());
    }
}
