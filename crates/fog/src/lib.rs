//! # scfog — four-tier fog computing simulator
//!
//! The paper's hardware layer (§II-B, Fig. 3) is "a fog computing model
//! consisting of four tiers": edge devices (smartphones, Raspberry Pis), fog
//! nodes (NVIDIA Jetson-class), analysis servers, and a federated cloud,
//! interconnected by regional networks and Internet2. Computation is divided
//! across the tiers so that confident local inferences send only annotations
//! upstream, while uncertain ones escalate raw feature maps.
//!
//! This crate simulates that stack with discrete events:
//!
//! - [`Topology`]: tiered nodes (FLOPS capacities) and links
//!   (latency + bandwidth), built by [`Topology::four_tier`].
//! - [`Placement`]: where each video-analysis job runs — all-edge,
//!   server-only, all-cloud, or the paper's early-exit split.
//! - [`FogSimulator`]: executes a workload of jobs, producing per-job
//!   latencies, upstream byte counts, and per-tier utilization — the
//!   quantities behind experiments E3 and E4.
//!
//! # Examples
//!
//! ```
//! use scfog::{FogSimulator, Placement, Topology, Workload};
//!
//! let topo = Topology::four_tier(8, 2, 1); // 8 edges per fog, 2 fogs per server
//! let workload = Workload::uniform(50, 100_000, 5.0, 42);
//! let sim = FogSimulator::new(topo);
//! let report = sim
//!     .runner(&workload)
//!     .placement(Placement::EarlyExit {
//!         local_fraction: 0.3,
//!         feature_bytes: 20_000,
//!     })
//!     .run();
//! assert_eq!(report.jobs, 50);
//! ```
//!
//! Placement sweeps fan out across the [`scpar`] worker pool
//! (`SimRunner::sweep`); each individual run stays serial and
//! deterministic, so sweep results are identical for any thread count.
//!
//! Runs can execute under an [`scfault::FaultPlan`]
//! ([`SimRunner::faults`]): nodes crash and restart mid-sim, links
//! partition and spike, and the report grows `jobs_rerouted` /
//! `jobs_lost` / `jobs_degraded` / `recovery_time_s` columns describing
//! how the tiers routed around the damage.

mod sim;
mod topology;
mod workload;

pub use sim::{
    FogSimulator, SimReport, SimRunner, TierUtilization, METRIC_FAULT_RECOVERY,
    METRIC_FAULT_REQUEUES, METRIC_FAULT_RETRIES, METRIC_JOBS_DEGRADED, METRIC_JOBS_LOST,
    METRIC_JOBS_REROUTED,
};
pub use topology::{FogNodeId, Link, NodeSpec, Tier, Topology};
pub use workload::{Job, Placement, Workload};
