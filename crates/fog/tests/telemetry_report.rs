//! The fog simulator's report must be reconstructible from the telemetry
//! registry, and identical seeds must yield byte-identical JSON snapshots.

use scfog::{FogSimulator, Placement, SimReport, Topology, Workload};
use sctelemetry::{json_snapshot, prometheus_text, trace_json, Telemetry};

fn run_with_telemetry(seed: u64) -> (SimReport, std::sync::Arc<Telemetry>) {
    let telemetry = Telemetry::shared();
    let sim = FogSimulator::new(Topology::four_tier(4, 2, 1)).with_telemetry(telemetry.handle());
    let w = Workload::with_escalation(50, 100_000, 5.0, 0.3, seed);
    let report = sim
        .runner(&w)
        .placement(Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        })
        .run();
    (report, telemetry)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= a.abs().max(b.abs()) * 1e-12 + 1e-15
}

#[test]
fn report_is_a_view_over_the_registry() {
    let (report, telemetry) = run_with_telemetry(7);
    let derived = SimReport::from_registry(telemetry.registry()).expect("run was recorded");

    assert_eq!(derived.jobs, report.jobs);
    assert!(close(derived.mean_latency_s, report.mean_latency_s));
    assert_eq!(derived.p50_latency_s, report.p50_latency_s);
    assert_eq!(derived.p95_latency_s, report.p95_latency_s);
    assert_eq!(derived.p99_latency_s, report.p99_latency_s);
    assert_eq!(derived.max_latency_s, report.max_latency_s);
    assert_eq!(derived.edge_to_fog_bytes, report.edge_to_fog_bytes);
    assert_eq!(derived.fog_to_server_bytes, report.fog_to_server_bytes);
    assert_eq!(derived.server_to_cloud_bytes, report.server_to_cloud_bytes);
    assert_eq!(derived.makespan_s, report.makespan_s);
    for (d, r) in derived
        .tier_utilization
        .iter()
        .zip(&report.tier_utilization)
    {
        assert_eq!(d.tier, r.tier);
        assert_eq!(d.busy_secs, r.busy_secs);
        assert!(close(d.utilization, r.utilization));
    }
}

#[test]
fn identical_seeds_give_byte_identical_snapshots() {
    let (_, a) = run_with_telemetry(42);
    let (_, b) = run_with_telemetry(42);
    assert_eq!(
        serde_json::to_string(&json_snapshot(a.registry())).unwrap(),
        serde_json::to_string(&json_snapshot(b.registry())).unwrap()
    );
    assert_eq!(prometheus_text(a.registry()), prometheus_text(b.registry()));
    assert_eq!(
        serde_json::to_string(&trace_json(&a)).unwrap(),
        serde_json::to_string(&trace_json(&b)).unwrap()
    );
}

#[test]
fn different_seeds_give_different_snapshots() {
    let (_, a) = run_with_telemetry(1);
    let (_, b) = run_with_telemetry(2);
    assert_ne!(
        serde_json::to_string(&json_snapshot(a.registry())).unwrap(),
        serde_json::to_string(&json_snapshot(b.registry())).unwrap()
    );
}

#[test]
fn disabled_telemetry_records_nothing() {
    let sim = FogSimulator::new(Topology::four_tier(2, 1, 1));
    let w = Workload::with_escalation(10, 50_000, 5.0, 0.2, 3);
    let report = sim.runner(&w).placement(Placement::ServerOnly).run();
    assert_eq!(report.jobs, 10);
    let telemetry = Telemetry::shared();
    assert!(SimReport::from_registry(telemetry.registry()).is_none());
}

#[test]
fn spans_cover_every_job() {
    let (report, telemetry) = run_with_telemetry(11);
    let trace = telemetry.trace();
    let spans: Vec<_> = trace
        .iter()
        .filter_map(|r| match r {
            sctelemetry::TraceRecord::Span(s) => Some(s),
            _ => None,
        })
        .collect();
    // One root span per job, plus at least one compute/transfer child each.
    let roots = spans.iter().filter(|s| s.name.starts_with("job/")).count();
    assert_eq!(roots, report.jobs);
    let steps = spans
        .iter()
        .filter(|s| s.name.starts_with("compute/") || s.name.starts_with("xfer/"))
        .count();
    assert!(steps >= report.jobs);
    // Every span carries a trace context — no uncorrelated spans.
    assert!(spans.iter().all(|s| s.ctx.is_some()));
}
