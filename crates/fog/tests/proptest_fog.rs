//! Property tests for the fog simulator's physical invariants.

use proptest::prelude::*;
use scfog::{FogSimulator, Placement, Tier, Topology, Workload};

fn any_placement() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::AllEdge),
        Just(Placement::ServerOnly),
        Just(Placement::AllCloud),
        (0.0f64..1.0, 1_000u64..50_000).prop_map(|(f, b)| Placement::EarlyExit {
            local_fraction: f,
            feature_bytes: b,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every job completes; latencies are positive and ordered
    /// (p50 ≤ p95 ≤ max); utilizations lie in [0, 1].
    #[test]
    fn physical_invariants(
        jobs in 1usize..80,
        rate in 1.0f64..50.0,
        esc in 0.0f64..1.0,
        placement in any_placement(),
        seed in any::<u64>(),
    ) {
        let sim = FogSimulator::new(Topology::four_tier(3, 2, 1));
        let w = Workload::with_escalation(jobs, 50_000, rate, esc, seed);
        let r = sim.runner(&w).placement(placement).run();
        prop_assert_eq!(r.jobs, jobs);
        prop_assert!(r.mean_latency_s > 0.0);
        prop_assert!(r.p50_latency_s <= r.p95_latency_s + 1e-12);
        prop_assert!(r.p95_latency_s <= r.max_latency_s + 1e-12);
        prop_assert!(r.makespan_s > 0.0);
        for u in &r.tier_utilization {
            prop_assert!((0.0..=1.0).contains(&u.utilization), "{u:?}");
        }
    }

    /// All-cloud ships at least as many bytes as early-exit at any
    /// escalation rate (feature maps are smaller than raw frames).
    #[test]
    fn cloud_ships_most_bytes(
        jobs in 5usize..60,
        esc in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let sim = FogSimulator::new(Topology::four_tier(3, 2, 1));
        let w = Workload::with_escalation(jobs, 100_000, 10.0, esc, seed);
        let cloud = sim.runner(&w).placement(Placement::AllCloud).run();
        let early = sim.runner(&w).placement(Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 }).run();
        prop_assert!(early.total_upstream_bytes() <= cloud.total_upstream_bytes());
    }

    /// All-edge never sends more than annotations upstream.
    #[test]
    fn all_edge_bytes_are_annotations_only(jobs in 1usize..60, seed in any::<u64>()) {
        let sim = FogSimulator::new(Topology::four_tier(3, 2, 1));
        let w = Workload::with_escalation(jobs, 100_000, 10.0, 0.5, seed);
        let r = sim.runner(&w).placement(Placement::AllEdge).run();
        // 256 bytes per job per boundary, 3 boundaries.
        prop_assert_eq!(r.total_upstream_bytes(), jobs as u64 * 256 * 3);
    }

    /// Determinism: identical inputs give identical reports.
    #[test]
    fn runs_are_deterministic(
        jobs in 1usize..40,
        esc in 0.0f64..1.0,
        seed in any::<u64>(),
        placement in any_placement(),
    ) {
        let sim = FogSimulator::new(Topology::four_tier(3, 2, 1));
        let w = Workload::with_escalation(jobs, 80_000, 15.0, esc, seed);
        let a = sim.runner(&w).placement(placement).run();
        let b = sim.runner(&w).placement(placement).run();
        prop_assert_eq!(a.mean_latency_s, b.mean_latency_s);
        prop_assert_eq!(a.total_upstream_bytes(), b.total_upstream_bytes());
        prop_assert_eq!(a.makespan_s, b.makespan_s);
    }

    /// Early-exit fog→server bytes are exactly
    /// escalated_jobs × feature_bytes (annotations bypass that link only
    /// for local exits).
    #[test]
    fn early_exit_byte_accounting(jobs in 1usize..60, seed in any::<u64>()) {
        let sim = FogSimulator::new(Topology::four_tier(3, 2, 1));
        let w = Workload::with_escalation(jobs, 100_000, 10.0, 0.5, seed);
        let escalated = w.jobs().iter().filter(|j| j.escalates).count() as u64;
        let local = jobs as u64 - escalated;
        let feature_bytes = 12_345u64;
        let r = sim.runner(&w).placement(Placement::EarlyExit { local_fraction: 0.2, feature_bytes }).run();
        prop_assert_eq!(
            r.fog_to_server_bytes,
            escalated * feature_bytes + local * 256
        );
    }

    /// Tier utilization: only the tiers a placement uses are busy.
    #[test]
    fn placement_utilization_profile(jobs in 5usize..40, seed in any::<u64>()) {
        let sim = FogSimulator::new(Topology::four_tier(3, 2, 1));
        let w = Workload::with_escalation(jobs, 50_000, 10.0, 0.5, seed);
        let edge = sim.runner(&w).placement(Placement::AllEdge).run();
        prop_assert!(edge.utilization_of(Tier::Edge) > 0.0);
        prop_assert_eq!(edge.utilization_of(Tier::Server), 0.0);
        prop_assert_eq!(edge.utilization_of(Tier::Cloud), 0.0);
        let cloud = sim.runner(&w).placement(Placement::AllCloud).run();
        prop_assert_eq!(cloud.utilization_of(Tier::Edge), 0.0);
        prop_assert!(cloud.utilization_of(Tier::Cloud) > 0.0);
    }
}
