//! Synthetic action clips (paper §IV-A2).
//!
//! The paper trains its suspicious-behaviour recognizer on "previously
//! recorded videos from the city's street and traffic cameras ... split into
//! clips of several minutes in length and label\[led\] into different
//! categories of suspicious behaviors and crime activities" — it names
//! jaywalking, hit-and-run events, and armed robberies. This module renders
//! multi-frame clips of moving actors whose *motion patterns* (not single
//! frames) distinguish the classes, so the CNN+LSTM architecture of Fig. 7 is
//! genuinely required: several classes are indistinguishable from any single
//! frame.

use simclock::SeededRng;

use crate::video::Frame;

/// Action/behaviour categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionClass {
    /// Steady slow movement along the sidewalk.
    Walking,
    /// Steady fast movement along the sidewalk.
    Running,
    /// Small random jitter around a fixed point.
    Loitering,
    /// Two actors rapidly oscillating toward/away from each other.
    Fighting,
    /// An actor crossing the road band mid-block.
    Jaywalking,
    /// A fast vehicle blob strikes a pedestrian blob and keeps going.
    HitAndRun,
}

impl ActionClass {
    /// All classes in stable order.
    pub const ALL: [ActionClass; 6] = [
        ActionClass::Walking,
        ActionClass::Running,
        ActionClass::Loitering,
        ActionClass::Fighting,
        ActionClass::Jaywalking,
        ActionClass::HitAndRun,
    ];

    /// The class's stable index (0..6).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class in ALL")
    }

    /// Whether the paper's application would raise an operator alert.
    pub fn is_suspicious(self) -> bool {
        matches!(
            self,
            ActionClass::Fighting | ActionClass::Jaywalking | ActionClass::HitAndRun
        )
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ActionClass::Walking => "walking",
            ActionClass::Running => "running",
            ActionClass::Loitering => "loitering",
            ActionClass::Fighting => "fighting",
            ActionClass::Jaywalking => "jaywalking",
            ActionClass::HitAndRun => "hit-and-run",
        }
    }
}

/// A labelled sequence of frames.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Frames in temporal order.
    pub frames: Vec<Frame>,
    /// Ground-truth class.
    pub class: ActionClass,
}

impl Clip {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Generator of labelled action clips.
///
/// # Examples
///
/// ```
/// use scdata::actions::{ActionClass, ClipGenerator};
///
/// let mut gen = ClipGenerator::new(16, 16, 8, 42);
/// let clip = gen.clip(ActionClass::Running);
/// assert_eq!(clip.len(), 8);
/// assert_eq!(clip.class, ActionClass::Running);
/// ```
#[derive(Debug)]
pub struct ClipGenerator {
    width: usize,
    height: usize,
    frames_per_clip: usize,
    rng: SeededRng,
}

impl ClipGenerator {
    /// Creates a generator of `frames_per_clip`-frame clips at
    /// `width`×`height`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `frames_per_clip < 2`.
    pub fn new(width: usize, height: usize, frames_per_clip: usize, seed: u64) -> Self {
        assert!(width >= 8 && height >= 8, "frames must be at least 8x8");
        assert!(frames_per_clip >= 2, "clips need at least two frames");
        ClipGenerator {
            width,
            height,
            frames_per_clip,
            rng: SeededRng::new(seed),
        }
    }

    fn blank(&self) -> Frame {
        let mut f = Frame::new(self.width, self.height);
        // Road band across the middle third.
        let road_top = self.height / 3;
        let road_bot = 2 * self.height / 3;
        for y in road_top..road_bot {
            for x in 0..self.width {
                f.set(x, y, 0.15);
            }
        }
        f
    }

    fn draw_blob(frame: &mut Frame, cx: f64, cy: f64, r: usize, intensity: f32) {
        let (cx, cy) = (cx.round() as isize, cy.round() as isize);
        let r = r as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                if dx * dx + dy * dy <= r * r {
                    let x = cx + dx;
                    let y = cy + dy;
                    if x >= 0 && y >= 0 {
                        frame.set(x as usize, y as usize, intensity);
                    }
                }
            }
        }
    }

    /// Generates one clip of the given class.
    pub fn clip(&mut self, class: ActionClass) -> Clip {
        let w = self.width as f64;
        let h = self.height as f64;
        let sidewalk_y = h * 0.85; // below the road band
        let t_len = self.frames_per_clip;
        let mut frames = Vec::with_capacity(t_len);

        // Initial positions/speeds with seeded jitter.
        let start_x = self.rng.range_f64(1.0, w * 0.3);
        let jitter = self.rng.range_f64(-1.0, 1.0);

        for t in 0..t_len {
            let mut frame = self.blank();
            let tf = t as f64;
            match class {
                ActionClass::Walking => {
                    let x = (start_x + tf * (w * 0.03)).min(w - 2.0);
                    Self::draw_blob(&mut frame, x, sidewalk_y + jitter, 1, 0.9);
                }
                ActionClass::Running => {
                    let x = (start_x + tf * (w * 0.1)).min(w - 2.0);
                    Self::draw_blob(&mut frame, x, sidewalk_y + jitter, 1, 0.9);
                }
                ActionClass::Loitering => {
                    let jx = self.rng.range_f64(-1.2, 1.2);
                    let jy = self.rng.range_f64(-1.2, 1.2);
                    Self::draw_blob(&mut frame, w * 0.5 + jx, sidewalk_y + jy, 1, 0.9);
                }
                ActionClass::Fighting => {
                    // Two blobs oscillating against each other.
                    let phase = if t % 2 == 0 { 1.0 } else { -1.0 };
                    let gap = 1.5 + phase;
                    Self::draw_blob(&mut frame, w * 0.5 - gap, sidewalk_y, 1, 0.9);
                    Self::draw_blob(&mut frame, w * 0.5 + gap, sidewalk_y, 1, 0.7);
                }
                ActionClass::Jaywalking => {
                    // Vertical crossing through the road band.
                    let y = h * 0.9 - tf * (h * 0.8 / t_len as f64);
                    Self::draw_blob(&mut frame, w * 0.5 + jitter, y, 1, 0.9);
                }
                ActionClass::HitAndRun => {
                    // Vehicle races along the road; pedestrian stands in the
                    // road and vanishes (knocked down) after contact.
                    let vx = (start_x + tf * (w * 0.15)).min(w - 2.0);
                    let road_y = h * 0.5;
                    Self::draw_blob(&mut frame, vx, road_y, 2, 0.6);
                    let ped_x = w * 0.6;
                    if vx < ped_x {
                        Self::draw_blob(&mut frame, ped_x, road_y, 1, 0.95);
                    }
                }
            }
            frame.add_noise(0.02, &mut self.rng);
            frames.push(frame);
        }
        Clip { frames, class }
    }

    /// A balanced labelled dataset: `per_class` clips of every class.
    /// Returns `(clips, label_indices)`.
    pub fn dataset(&mut self, per_class: usize) -> (Vec<Clip>, Vec<usize>) {
        let mut clips = Vec::new();
        let mut labels = Vec::new();
        for rep in 0..per_class {
            for &class in &ActionClass::ALL {
                clips.push(self.clip(class));
                labels.push(class.index());
                let _ = rep;
            }
        }
        (clips, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> ClipGenerator {
        ClipGenerator::new(16, 16, 8, seed)
    }

    #[test]
    fn clip_shape() {
        let mut g = generator(1);
        let c = g.clip(ActionClass::Walking);
        assert_eq!(c.len(), 8);
        assert_eq!(c.frames[0].width(), 16);
    }

    #[test]
    fn class_indices_stable() {
        for (i, c) in ActionClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn suspicious_flags() {
        assert!(ActionClass::Fighting.is_suspicious());
        assert!(ActionClass::HitAndRun.is_suspicious());
        assert!(!ActionClass::Walking.is_suspicious());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generator(2).clip(ActionClass::Jaywalking);
        let b = generator(2).clip(ActionClass::Jaywalking);
        assert_eq!(a, b);
    }

    #[test]
    fn walking_and_running_differ_in_displacement() {
        // Blob center displacement over the clip distinguishes the classes.
        let mut g = generator(3);
        let centroid = |f: &Frame| {
            let mut sx = 0.0;
            let mut mass = 0.0;
            for y in 0..f.height() {
                for x in 0..f.width() {
                    let v = f.get(x, y);
                    if v > 0.5 {
                        sx += x as f32 * v;
                        mass += v;
                    }
                }
            }
            if mass > 0.0 {
                sx / mass
            } else {
                0.0
            }
        };
        let walk = g.clip(ActionClass::Walking);
        let run = g.clip(ActionClass::Running);
        let walk_d = centroid(walk.frames.last().unwrap()) - centroid(&walk.frames[0]);
        let run_d = centroid(run.frames.last().unwrap()) - centroid(&run.frames[0]);
        assert!(
            run_d > walk_d + 2.0,
            "running moves farther: {run_d} vs {walk_d}"
        );
    }

    #[test]
    fn jaywalking_crosses_road_band() {
        let mut g = generator(4);
        let clip = g.clip(ActionClass::Jaywalking);
        // Actor (intensity ~0.9) appears inside the road band in some frame.
        let road_top = 16 / 3;
        let road_bot = 2 * 16 / 3;
        let in_road = clip
            .frames
            .iter()
            .any(|f| (road_top..road_bot).any(|y| (0..16).any(|x| f.get(x, y) > 0.8)));
        assert!(in_road);
    }

    #[test]
    fn dataset_balanced() {
        let mut g = generator(5);
        let (clips, labels) = g.dataset(3);
        assert_eq!(clips.len(), 18);
        for i in 0..6 {
            assert_eq!(labels.iter().filter(|&&l| l == i).count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least two frames")]
    fn one_frame_clip_panics() {
        let _ = ClipGenerator::new(16, 16, 1, 0);
    }
}
