//! Synthetic tweet streams (paper §II-A2, §IV-B).
//!
//! Stands in for the Twitter API collection: tweets carry an author, text
//! built from topic vocabularies, a timestamp, and geo coordinates. Authors
//! can be flagged as criminal/gang affiliates whose tweets near incident
//! times/locations contain elevated risk vocabulary — the exact signal the
//! §IV-B multi-modal narrowing application triangulates.

use scgeo::GeoPoint;
use simclock::{SeededRng, SimTime};

/// A tweet record.
#[derive(Debug, Clone, PartialEq)]
pub struct Tweet {
    /// Unique id.
    pub id: u64,
    /// Author handle.
    pub user: String,
    /// Tweet text.
    pub text: String,
    /// Post time.
    pub time: SimTime,
    /// Geotag (the generator always geotags; sampling-rate realism is the
    /// consumer's concern).
    pub location: GeoPoint,
}

impl Tweet {
    /// Whether the text contains the given keyword (case-insensitive).
    pub fn contains_keyword(&self, keyword: &str) -> bool {
        self.text.to_lowercase().contains(&keyword.to_lowercase())
    }
}

const BENIGN_WORDS: &[&str] = &[
    "game", "lunch", "traffic", "weather", "music", "school", "work", "weekend", "tiger", "river",
    "festival", "crawfish", "coffee", "rain",
];

/// Vocabulary correlated with violent incidents — what the paper's NLP
/// module ("capture textual features present in tweet text at given times
/// and locations associated with violent criminal incidents") keys on.
pub const RISK_WORDS: &[&str] = &[
    "beef", "strap", "slide", "opps", "smoke", "ride", "caught", "lacking", "spin", "block",
];

/// Generator of tweet streams.
///
/// # Examples
///
/// ```
/// use scdata::tweets::TweetGenerator;
/// use scgeo::GeoPoint;
/// use simclock::SimTime;
///
/// let mut gen = TweetGenerator::new(7);
/// let t = gen.benign("citizen_1", GeoPoint::new(30.45, -91.18), SimTime::from_secs(100));
/// assert_eq!(t.user, "citizen_1");
/// ```
#[derive(Debug)]
pub struct TweetGenerator {
    rng: SeededRng,
    next_id: u64,
}

impl TweetGenerator {
    /// Creates a generator.
    pub fn new(seed: u64) -> Self {
        TweetGenerator {
            rng: SeededRng::new(seed),
            next_id: 0,
        }
    }

    fn compose(&mut self, vocab: &[&str], words: usize) -> String {
        (0..words)
            .map(|_| *self.rng.choose(vocab).expect("non-empty vocab"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// An everyday tweet with benign vocabulary.
    pub fn benign(&mut self, user: &str, location: GeoPoint, time: SimTime) -> Tweet {
        let words = 4 + self.rng.index(5);
        let text = self.compose(BENIGN_WORDS, words);
        Tweet {
            id: self.next_id(),
            user: user.to_string(),
            text,
            time,
            location,
        }
    }

    /// A tweet with elevated risk vocabulary (affiliate chatter around an
    /// incident).
    pub fn risky(&mut self, user: &str, location: GeoPoint, time: SimTime) -> Tweet {
        let mut words: Vec<&str> = Vec::new();
        for _ in 0..3 {
            words.push(self.rng.choose(RISK_WORDS).expect("non-empty"));
        }
        for _ in 0..3 {
            words.push(self.rng.choose(BENIGN_WORDS).expect("non-empty"));
        }
        self.rng.shuffle(&mut words);
        Tweet {
            id: self.next_id(),
            user: user.to_string(),
            text: words.join(" "),
            time,
            location,
        }
    }

    /// A tweet near an incident in both space and time: position jittered
    /// within `radius_m` of `center`, time jittered within `window_us` of
    /// `incident_time`, risky vocabulary.
    pub fn near_incident(
        &mut self,
        user: &str,
        center: GeoPoint,
        radius_m: f64,
        incident_time: SimTime,
        window_us: u64,
    ) -> Tweet {
        let dn = self.rng.range_f64(-radius_m, radius_m) * 0.7;
        let de = self.rng.range_f64(-radius_m, radius_m) * 0.7;
        let dt = self.rng.range_u64(0, (2 * window_us).max(1));
        let time = SimTime::from_micros(incident_time.as_micros().saturating_sub(window_us) + dt);
        self.risky(user, center.offset_m(dn, de), time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn br() -> GeoPoint {
        GeoPoint::new(30.45, -91.18)
    }

    #[test]
    fn ids_are_unique() {
        let mut g = TweetGenerator::new(1);
        let a = g.benign("u", br(), SimTime::ZERO);
        let b = g.benign("u", br(), SimTime::ZERO);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn benign_avoids_risk_words_mostly() {
        let mut g = TweetGenerator::new(2);
        let t = g.benign("u", br(), SimTime::ZERO);
        let risk_hits = RISK_WORDS.iter().filter(|w| t.contains_keyword(w)).count();
        assert_eq!(risk_hits, 0, "benign vocab only: {}", t.text);
    }

    #[test]
    fn risky_contains_risk_words() {
        let mut g = TweetGenerator::new(3);
        let t = g.risky("u", br(), SimTime::ZERO);
        let risk_hits = RISK_WORDS.iter().filter(|w| t.contains_keyword(w)).count();
        assert!(risk_hits >= 1, "{}", t.text);
    }

    #[test]
    fn near_incident_within_bounds() {
        let mut g = TweetGenerator::new(4);
        let center = br();
        let when = SimTime::from_secs(1000);
        for _ in 0..50 {
            let t = g.near_incident("u", center, 500.0, when, 60_000_000);
            assert!(center.haversine_m(t.location) <= 550.0);
            let dt = t.time.as_micros().abs_diff(when.as_micros());
            assert!(dt <= 60_000_000 + 1);
        }
    }

    #[test]
    fn keyword_search_case_insensitive() {
        let t = Tweet {
            id: 0,
            user: "u".into(),
            text: "Traffic on I-10".into(),
            time: SimTime::ZERO,
            location: br(),
        };
        assert!(t.contains_keyword("TRAFFIC"));
        assert!(!t.contains_keyword("flood"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TweetGenerator::new(5).risky("u", br(), SimTime::ZERO);
        let b = TweetGenerator::new(5).risky("u", br(), SimTime::ZERO);
        assert_eq!(a, b);
    }
}

/// A subscription-based tweet collector — §II-A2: "our cyberinfrastructure
/// collects tweets via Twitter API based on specific keywords and geospatial
/// coordinates. Users can easily add new keywords and locations to gather
/// tweets of interest."
///
/// # Examples
///
/// ```
/// use scdata::tweets::{TweetCollector, TweetGenerator};
/// use scgeo::GeoPoint;
/// use simclock::SimTime;
///
/// let mut collector = TweetCollector::new();
/// collector.add_keyword("traffic");
/// let mut gen = TweetGenerator::new(1);
/// let t = gen.benign("u", GeoPoint::new(30.45, -91.18), SimTime::ZERO);
/// // Collected only if it matches a subscription.
/// let _ = collector.matches(&t);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TweetCollector {
    keywords: Vec<String>,
    regions: Vec<(GeoPoint, f64)>,
}

impl TweetCollector {
    /// Creates a collector with no subscriptions (matches nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes to a keyword (case-insensitive substring match).
    pub fn add_keyword(&mut self, keyword: impl Into<String>) {
        self.keywords.push(keyword.into());
    }

    /// Subscribes to a circular region.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` is not positive.
    pub fn add_region(&mut self, center: GeoPoint, radius_m: f64) {
        assert!(radius_m > 0.0, "radius must be positive");
        self.regions.push((center, radius_m));
    }

    /// Active keyword subscriptions.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Number of region subscriptions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Whether a tweet matches any subscription (keyword OR region).
    pub fn matches(&self, tweet: &Tweet) -> bool {
        let kw = self.keywords.iter().any(|k| tweet.contains_keyword(k));
        let geo = self
            .regions
            .iter()
            .any(|(c, r)| c.haversine_m(tweet.location) <= *r);
        kw || geo
    }

    /// Filters a stream down to the matching tweets.
    pub fn collect<'a>(&self, tweets: &'a [Tweet]) -> Vec<&'a Tweet> {
        tweets.iter().filter(|t| self.matches(t)).collect()
    }
}

#[cfg(test)]
mod collector_tests {
    use super::*;

    fn br() -> GeoPoint {
        GeoPoint::new(30.45, -91.18)
    }

    fn tweet(text: &str, loc: GeoPoint) -> Tweet {
        Tweet {
            id: 0,
            user: "u".into(),
            text: text.into(),
            time: SimTime::ZERO,
            location: loc,
        }
    }

    #[test]
    fn empty_collector_matches_nothing() {
        let c = TweetCollector::new();
        assert!(!c.matches(&tweet("anything at all", br())));
    }

    #[test]
    fn keyword_subscription() {
        let mut c = TweetCollector::new();
        c.add_keyword("Traffic");
        assert!(c.matches(&tweet("heavy TRAFFIC on I-10", br())));
        assert!(!c.matches(&tweet("sunny day", br())));
    }

    #[test]
    fn region_subscription() {
        let mut c = TweetCollector::new();
        c.add_region(br(), 1_000.0);
        assert!(c.matches(&tweet("anything", br().offset_m(100.0, 100.0))));
        assert!(!c.matches(&tweet("anything", br().offset_m(5_000.0, 0.0))));
    }

    #[test]
    fn keyword_or_region_suffices() {
        let mut c = TweetCollector::new();
        c.add_keyword("flood");
        c.add_region(br(), 500.0);
        let far = br().offset_m(50_000.0, 0.0);
        assert!(
            c.matches(&tweet("flood warning", far)),
            "keyword matches far away"
        );
        assert!(
            c.matches(&tweet("no keywords", br())),
            "region matches without keyword"
        );
    }

    #[test]
    fn collect_filters_stream() {
        let mut c = TweetCollector::new();
        c.add_keyword("jam");
        let stream = vec![
            tweet("jam on the bridge", br()),
            tweet("lunch break", br()),
            tweet("traffic jam again", br()),
        ];
        assert_eq!(c.collect(&stream).len(), 2);
    }

    #[test]
    fn subscriptions_grow_dynamically() {
        let mut c = TweetCollector::new();
        let t = tweet("crawfish festival", br());
        assert!(!c.matches(&t));
        c.add_keyword("festival");
        assert!(c.matches(&t), "new keywords take effect immediately");
        assert_eq!(c.keywords().len(), 1);
        c.add_region(br(), 100.0);
        assert_eq!(c.region_count(), 1);
    }
}
