//! Synthetic video frames with exact ground truth.
//!
//! Stands in for the paper's live DOTD/city camera feeds (§II-A1): grayscale
//! rasters onto which vehicles (textured rectangles with class-specific
//! appearance) are rendered over structured road backgrounds, with pixel
//! ground truth returned alongside — the labelled training data the paper
//! gets from the Stanford cars dataset and hand-labelled street footage.

use simclock::SeededRng;

use crate::vehicles::{VehicleCatalog, VehicleClassId};

/// A grayscale raster frame with intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl Frame {
    /// Creates a black frame.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be positive");
        Frame {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel intensities.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets pixel `(x, y)`, clamping intensity to `[0, 1]`. Out-of-bounds
    /// writes are ignored (objects may be partially off-frame).
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = v.clamp(0.0, 1.0);
        }
    }

    /// Adds Gaussian pixel noise with the given standard deviation.
    pub fn add_noise(&mut self, std_dev: f64, rng: &mut SeededRng) {
        for p in &mut self.pixels {
            *p = (*p + rng.gaussian(0.0, std_dev) as f32).clamp(0.0, 1.0);
        }
    }

    /// Mean intensity.
    pub fn mean(&self) -> f32 {
        self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
    }
}

/// A pixel-space bounding box (inclusive min, exclusive max).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxPx {
    /// Left edge.
    pub x0: usize,
    /// Top edge.
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Bottom edge (exclusive).
    pub y1: usize,
}

impl BoxPx {
    /// Box area in pixels.
    pub fn area(&self) -> usize {
        (self.x1.saturating_sub(self.x0)) * (self.y1.saturating_sub(self.y0))
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BoxPx) -> f64 {
        let ix0 = self.x0.max(other.x0);
        let iy0 = self.y0.max(other.y0);
        let ix1 = self.x1.min(other.x1);
        let iy1 = self.y1.min(other.y1);
        if ix1 <= ix0 || iy1 <= iy0 {
            return 0.0;
        }
        let inter = ((ix1 - ix0) * (iy1 - iy0)) as f64;
        let union = (self.area() + other.area()) as f64 - inter;
        inter / union
    }

    /// Center point.
    pub fn center(&self) -> (usize, usize) {
        ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }
}

/// Ground truth for one rendered vehicle.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleTruth {
    /// Where the vehicle is.
    pub bbox: BoxPx,
    /// Which class it is.
    pub class: VehicleClassId,
}

/// Generator of labelled vehicle frames.
///
/// # Examples
///
/// ```
/// use scdata::vehicles::VehicleCatalog;
/// use scdata::video::FrameGenerator;
///
/// let catalog = VehicleCatalog::generate(40, 1);
/// let mut gen = FrameGenerator::new(catalog, 32, 32, 2);
/// let (frame, truth) = gen.vehicle_crop(scdata::vehicles::VehicleClassId(5));
/// assert_eq!(frame.width(), 32);
/// assert_eq!(truth.class.0, 5);
/// ```
#[derive(Debug)]
pub struct FrameGenerator {
    catalog: VehicleCatalog,
    width: usize,
    height: usize,
    rng: SeededRng,
    noise: f64,
}

impl FrameGenerator {
    /// Creates a generator for `width`×`height` frames.
    pub fn new(catalog: VehicleCatalog, width: usize, height: usize, seed: u64) -> Self {
        FrameGenerator {
            catalog,
            width,
            height,
            rng: SeededRng::new(seed),
            noise: 0.03,
        }
    }

    /// Sets the additive pixel-noise level (builder style).
    pub fn noise(mut self, std_dev: f64) -> Self {
        self.noise = std_dev;
        self
    }

    /// The catalog backing this generator.
    pub fn catalog(&self) -> &VehicleCatalog {
        &self.catalog
    }

    fn road_background(&mut self) -> Frame {
        let mut f = Frame::new(self.width, self.height);
        // Asphalt base + lane stripe.
        for y in 0..self.height {
            for x in 0..self.width {
                let lane = usize::from(y == self.height / 2 && x % 4 < 2);
                f.set(x, y, 0.12 + 0.08 * lane as f32);
            }
        }
        f
    }

    fn render_vehicle(
        &mut self,
        frame: &mut Frame,
        class: VehicleClassId,
        cx: usize,
        cy: usize,
    ) -> BoxPx {
        let spec = self.catalog.class(class).expect("class in catalog").clone();
        // Body size from the aspect ratio; height ~ 1/4 of frame.
        let bh = (self.height / 4).max(3);
        let bw = ((bh as f32 * spec.aspect) as usize).clamp(3, self.width - 1);
        let x0 = cx.saturating_sub(bw / 2);
        let y0 = cy.saturating_sub(bh / 2);
        let x1 = (x0 + bw).min(self.width);
        let y1 = (y0 + bh).min(self.height);
        for y in y0..y1 {
            for x in x0..x1 {
                // Class-specific stripe texture over the base intensity.
                let stripe = usize::from((x - x0).is_multiple_of(spec.stripe_period as usize));
                let v = spec.intensity - 0.12 * stripe as f32;
                frame.set(x, y, v);
            }
        }
        // "Windows": darker band along the top quarter of the body.
        for y in y0..(y0 + (y1 - y0) / 4).min(y1) {
            for x in x0..x1 {
                frame.set(x, y, spec.intensity * 0.5);
            }
        }
        BoxPx { x0, y0, x1, y1 }
    }

    /// A centered, tightly framed single-vehicle crop (classification
    /// training data — the Stanford-cars analogue).
    pub fn vehicle_crop(&mut self, class: VehicleClassId) -> (Frame, VehicleTruth) {
        let mut frame = self.road_background();
        let jx = self.rng.index(self.width / 4);
        let jy = self.rng.index(self.height / 4);
        let cx = self.width / 2 + jx - self.width / 8;
        let cy = self.height / 2 + jy - self.height / 8;
        let bbox = self.render_vehicle(&mut frame, class, cx, cy);
        let noise = self.noise;
        frame.add_noise(noise, &mut self.rng);
        (frame, VehicleTruth { bbox, class })
    }

    /// A road scene containing `count` random-class vehicles (detection
    /// data). Ground truth lists every vehicle.
    pub fn scene(&mut self, count: usize) -> (Frame, Vec<VehicleTruth>) {
        let mut frame = self.road_background();
        let mut truths = Vec::with_capacity(count);
        for _ in 0..count {
            let class = VehicleClassId(self.rng.index(self.catalog.len()) as u16);
            let cx = self.rng.index(self.width);
            let cy = self.rng.index(self.height);
            let bbox = self.render_vehicle(&mut frame, class, cx, cy);
            truths.push(VehicleTruth { bbox, class });
        }
        let noise = self.noise;
        frame.add_noise(noise, &mut self.rng);
        (frame, truths)
    }

    /// A labelled dataset of `per_class` crops for each of the first
    /// `classes` catalog classes, interleaved. Returns `(frames, labels)`.
    ///
    /// With `classes = 400` and `per_class = 80` this reproduces the paper's
    /// 32,000-image corpus.
    pub fn dataset(&mut self, classes: usize, per_class: usize) -> (Vec<Frame>, Vec<usize>) {
        let classes = classes.min(self.catalog.len());
        let mut frames = Vec::with_capacity(classes * per_class);
        let mut labels = Vec::with_capacity(classes * per_class);
        for rep in 0..per_class {
            for c in 0..classes {
                let (f, _) = self.vehicle_crop(VehicleClassId(c as u16));
                frames.push(f);
                labels.push(c);
                let _ = rep;
            }
        }
        (frames, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> FrameGenerator {
        FrameGenerator::new(VehicleCatalog::generate(40, 1), 32, 32, seed)
    }

    #[test]
    fn frame_basics() {
        let mut f = Frame::new(4, 3);
        f.set(1, 2, 0.5);
        assert_eq!(f.get(1, 2), 0.5);
        f.set(99, 99, 1.0); // ignored, no panic
        assert_eq!(f.pixels().len(), 12);
    }

    #[test]
    fn set_clamps() {
        let mut f = Frame::new(2, 2);
        f.set(0, 0, 5.0);
        f.set(1, 1, -1.0);
        assert_eq!(f.get(0, 0), 1.0);
        assert_eq!(f.get(1, 1), 0.0);
    }

    #[test]
    fn crop_contains_vehicle() {
        let mut g = generator(3);
        let (frame, truth) = g.vehicle_crop(VehicleClassId(10));
        assert!(truth.bbox.area() > 0);
        // The vehicle body is brighter than asphalt.
        let (cx, cy) = truth.bbox.center();
        assert!(frame.get(cx, cy.min(frame.height() - 1)) > 0.15);
    }

    #[test]
    fn crops_deterministic_per_seed() {
        let (a, _) = generator(7).vehicle_crop(VehicleClassId(3));
        let (b, _) = generator(7).vehicle_crop(VehicleClassId(3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_classes_look_different() {
        // Disable positional jitter influence by comparing mean intensity in
        // the truth bbox.
        let mut g = generator(4).noise(0.0);
        let (f1, t1) = g.vehicle_crop(VehicleClassId(0));
        let (f2, t2) = g.vehicle_crop(VehicleClassId(39));
        let mean_in = |f: &Frame, b: &BoxPx| {
            let mut s = 0.0;
            let mut n = 0;
            for y in b.y0..b.y1.min(f.height()) {
                for x in b.x0..b.x1.min(f.width()) {
                    s += f.get(x, y);
                    n += 1;
                }
            }
            s / n as f32
        };
        assert!(mean_in(&f2, &t2.bbox) > mean_in(&f1, &t1.bbox) + 0.2);
    }

    #[test]
    fn scene_has_requested_vehicles() {
        let mut g = generator(5);
        let (_, truths) = g.scene(3);
        assert_eq!(truths.len(), 3);
    }

    #[test]
    fn dataset_shape_and_balance() {
        let mut g = generator(6);
        let (frames, labels) = g.dataset(10, 4);
        assert_eq!(frames.len(), 40);
        for c in 0..10 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 4);
        }
    }

    #[test]
    fn iou_properties() {
        let a = BoxPx {
            x0: 0,
            y0: 0,
            x1: 10,
            y1: 10,
        };
        let b = BoxPx {
            x0: 5,
            y0: 5,
            x1: 15,
            y1: 15,
        };
        let c = BoxPx {
            x0: 20,
            y0: 20,
            x1: 30,
            y1: 30,
        };
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-9);
        assert_eq!(a.iou(&c), 0.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-12);
    }

    #[test]
    fn noise_perturbs() {
        let mut g1 = generator(8).noise(0.0);
        let mut g2 = generator(8).noise(0.1);
        let (clean, _) = g1.vehicle_crop(VehicleClassId(0));
        let (noisy, _) = g2.vehicle_crop(VehicleClassId(0));
        assert_ne!(clean, noisy);
    }
}
