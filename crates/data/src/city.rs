//! Open-city and law-enforcement data (paper §II-A3, §II-A4).
//!
//! Two generators:
//!
//! - [`OpenCityGenerator`]: the Baton Rouge open-data portal analogue —
//!   public-safety incidents, citizen service requests, building permits,
//!   potholes, traffic signals.
//! - [`CrimeBatchGenerator`]: the monthly individual-level violent-crime
//!   transfer the MOU provides — "incident report numbers, offense
//!   description, Louisiana criminal offense code, report address, offense
//!   district, date and time ..., agency ..., and the names and demographic
//!   information on all persons involved (both victims and suspects)".
//!   Synthetic people only; uploaded "on the first day of each month" with a
//!   90-day retention window modelled by [`CrimeBatch::expired_by`].

use scgeo::GeoPoint;
use simclock::{SeededRng, SimDuration, SimTime};

/// Louisiana criminal offense codes for the violent crimes the MOU covers
/// (La. R.S. Title 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffenseCode {
    /// La. R.S. 14:30 — homicide (first degree murder).
    Homicide,
    /// La. R.S. 14:65 — simple robbery.
    Robbery,
    /// La. R.S. 14:64 — armed robbery.
    ArmedRobbery,
    /// La. R.S. 14:37 — aggravated assault.
    AggravatedAssault,
    /// La. R.S. 14:94 — illegal use of weapons.
    IllegalWeaponUse,
}

impl OffenseCode {
    /// All codes in stable order.
    pub const ALL: [OffenseCode; 5] = [
        OffenseCode::Homicide,
        OffenseCode::Robbery,
        OffenseCode::ArmedRobbery,
        OffenseCode::AggravatedAssault,
        OffenseCode::IllegalWeaponUse,
    ];

    /// The statute string, e.g. `"La. R.S. 14:30"`.
    pub fn statute(self) -> &'static str {
        match self {
            OffenseCode::Homicide => "La. R.S. 14:30",
            OffenseCode::Robbery => "La. R.S. 14:65",
            OffenseCode::ArmedRobbery => "La. R.S. 14:64",
            OffenseCode::AggravatedAssault => "La. R.S. 14:37",
            OffenseCode::IllegalWeaponUse => "La. R.S. 14:94",
        }
    }

    /// Plain-English description.
    pub fn description(self) -> &'static str {
        match self {
            OffenseCode::Homicide => "homicide",
            OffenseCode::Robbery => "simple robbery",
            OffenseCode::ArmedRobbery => "armed robbery",
            OffenseCode::AggravatedAssault => "aggravated assault",
            OffenseCode::IllegalWeaponUse => "illegal use of weapons",
        }
    }
}

/// Role of a person in an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersonRole {
    /// Victim of the offense.
    Victim,
    /// Suspect in the offense.
    Suspect,
}

/// A (synthetic) person attached to an incident report.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonInvolved {
    /// Stable synthetic person id (shared across incidents — the co-offense
    /// signal the §IV-B social-network construction uses).
    pub person_id: u32,
    /// Synthetic display name.
    pub name: String,
    /// Role in this incident.
    pub role: PersonRole,
    /// Age in years.
    pub age: u8,
    /// Home district.
    pub home_district: u8,
}

/// One individual-level violent-crime record.
#[derive(Debug, Clone, PartialEq)]
pub struct CrimeRecord {
    /// Incident report number, e.g. `"BR-2026-000417"`.
    pub report_number: String,
    /// Offense classification.
    pub offense: OffenseCode,
    /// Street-style report address.
    pub address: String,
    /// Offense district (1-based).
    pub district: u8,
    /// Date/time of the offense in simulation time.
    pub time: SimTime,
    /// Reporting agency.
    pub agency: String,
    /// Incident location.
    pub location: GeoPoint,
    /// Everyone involved.
    pub persons: Vec<PersonInvolved>,
}

/// One monthly transfer of crime records.
#[derive(Debug, Clone, PartialEq)]
pub struct CrimeBatch {
    /// Month index since simulation start (0-based).
    pub month: u32,
    /// Upload time — the first day of the month.
    pub uploaded_at: SimTime,
    /// The records.
    pub records: Vec<CrimeRecord>,
}

/// Seconds in a (simplified, 30-day) month.
const MONTH_SECS: u64 = 30 * 24 * 3600;

impl CrimeBatch {
    /// Whether the 90-day retention window has passed at `now` ("files
    /// uploaded to the secure web server are deleted after 90 days").
    pub fn expired_by(&self, now: SimTime) -> bool {
        now.saturating_since(self.uploaded_at) > SimDuration::from_secs(90 * 24 * 3600)
    }
}

/// Generator of monthly law-enforcement transfers.
///
/// # Examples
///
/// ```
/// use scdata::city::CrimeBatchGenerator;
///
/// let mut gen = CrimeBatchGenerator::new(500, 11);
/// let batch = gen.monthly_batch(0, 40);
/// assert_eq!(batch.records.len(), 40);
/// assert!(batch.records.iter().all(|r| !r.persons.is_empty()));
/// ```
#[derive(Debug)]
pub struct CrimeBatchGenerator {
    rng: SeededRng,
    population: u32,
    next_report: u32,
    anchor: GeoPoint,
}

impl CrimeBatchGenerator {
    /// Creates a generator over a synthetic population of `population`
    /// person ids.
    ///
    /// # Panics
    ///
    /// Panics if `population < 2`.
    pub fn new(population: u32, seed: u64) -> Self {
        assert!(population >= 2, "need at least two people");
        CrimeBatchGenerator {
            rng: SeededRng::new(seed),
            population,
            next_report: 0,
            anchor: GeoPoint::new(30.4515, -91.1871), // Baton Rouge
        }
    }

    fn person(&mut self, role: PersonRole) -> PersonInvolved {
        let person_id = self.rng.next_bounded(self.population as u64) as u32;
        PersonInvolved {
            person_id,
            name: format!("person-{person_id:05}"),
            role,
            age: 15 + self.rng.index(50) as u8,
            home_district: 1 + self.rng.index(12) as u8,
        }
    }

    /// One crime record at time `t`.
    pub fn record(&mut self, t: SimTime) -> CrimeRecord {
        let offense = *self.rng.choose(&OffenseCode::ALL).expect("non-empty");
        let report_number = format!("BR-2026-{:06}", self.next_report);
        self.next_report += 1;
        let n_suspects = 1 + self.rng.index(3);
        let n_victims = 1 + self.rng.index(2);
        let mut persons = Vec::with_capacity(n_suspects + n_victims);
        for _ in 0..n_suspects {
            persons.push(self.person(PersonRole::Suspect));
        }
        for _ in 0..n_victims {
            persons.push(self.person(PersonRole::Victim));
        }
        CrimeRecord {
            report_number,
            offense,
            address: format!(
                "{} {} St",
                100 + self.rng.index(9900),
                ["Government", "Florida", "Plank", "Airline", "Nicholson"][self.rng.index(5)]
            ),
            district: 1 + self.rng.index(12) as u8,
            time: t,
            agency: "Baton Rouge PD".to_string(),
            location: self.anchor.offset_m(
                self.rng.range_f64(-8000.0, 8000.0),
                self.rng.range_f64(-8000.0, 8000.0),
            ),
            persons,
        }
    }

    /// The monthly transfer for month index `month` with `count` records,
    /// timestamps spread through the month, uploaded on the 1st of the
    /// following month.
    pub fn monthly_batch(&mut self, month: u32, count: usize) -> CrimeBatch {
        let month_start = SimTime::from_secs(month as u64 * MONTH_SECS);
        let records = (0..count)
            .map(|_| {
                let offset = self.rng.next_bounded(MONTH_SECS);
                self.record(month_start + SimDuration::from_secs(offset))
            })
            .collect();
        CrimeBatch {
            month,
            uploaded_at: SimTime::from_secs((month as u64 + 1) * MONTH_SECS),
            records,
        }
    }
}

/// Kinds of open-city records (the Baton Rouge open-data portal categories
/// the paper lists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpenRecordKind {
    /// Public-safety: a (non-individual-level) crime incident.
    CrimeIncident,
    /// Public-safety: fire department dispatch.
    FireIncident,
    /// Government: citizen request for service (311).
    CitizenRequest,
    /// Housing: building permit.
    BuildingPermit,
    /// Transportation: pothole report.
    Pothole,
    /// Transportation: traffic incident.
    TrafficIncident,
    /// Public-safety: 911 call.
    EmergencyCall,
}

impl OpenRecordKind {
    /// All kinds in stable order.
    pub const ALL: [OpenRecordKind; 7] = [
        OpenRecordKind::CrimeIncident,
        OpenRecordKind::FireIncident,
        OpenRecordKind::CitizenRequest,
        OpenRecordKind::BuildingPermit,
        OpenRecordKind::Pothole,
        OpenRecordKind::TrafficIncident,
        OpenRecordKind::EmergencyCall,
    ];
}

/// One open-city record.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRecord {
    /// Record id.
    pub id: u64,
    /// Category.
    pub kind: OpenRecordKind,
    /// Location.
    pub location: GeoPoint,
    /// Timestamp.
    pub time: SimTime,
    /// Free-text detail.
    pub detail: String,
}

/// Generator of open-data portal records.
#[derive(Debug)]
pub struct OpenCityGenerator {
    rng: SeededRng,
    next_id: u64,
    anchor: GeoPoint,
}

impl OpenCityGenerator {
    /// Creates a generator anchored on Baton Rouge.
    pub fn new(seed: u64) -> Self {
        OpenCityGenerator {
            rng: SeededRng::new(seed),
            next_id: 0,
            anchor: GeoPoint::new(30.4515, -91.1871),
        }
    }

    /// One record of a random kind at time `t`. Crime-adjacent records
    /// cluster in hot spots (three fixed centers) so the E10 k-means
    /// experiment has real structure to find.
    pub fn record(&mut self, t: SimTime) -> OpenRecord {
        let kind = *self.rng.choose(&OpenRecordKind::ALL).expect("non-empty");
        let id = self.next_id;
        self.next_id += 1;
        let location = match kind {
            OpenRecordKind::CrimeIncident | OpenRecordKind::EmergencyCall => {
                // Hot-spot mixture.
                let hot = [(3000.0, 2000.0), (-4000.0, -1000.0), (1000.0, -5000.0)];
                let (cn, ce) = hot[self.rng.index(3)];
                self.anchor.offset_m(
                    cn + self.rng.gaussian(0.0, 600.0),
                    ce + self.rng.gaussian(0.0, 600.0),
                )
            }
            _ => self.anchor.offset_m(
                self.rng.range_f64(-8000.0, 8000.0),
                self.rng.range_f64(-8000.0, 8000.0),
            ),
        };
        OpenRecord {
            id,
            kind,
            location,
            time: t,
            detail: format!("{kind:?} #{id}"),
        }
    }

    /// A stream of `n` records at one-minute spacing.
    pub fn stream(&mut self, n: usize) -> Vec<OpenRecord> {
        (0..n)
            .map(|i| self.record(SimTime::from_secs(60 * i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statutes_are_louisiana() {
        for code in OffenseCode::ALL {
            assert!(code.statute().starts_with("La. R.S. 14:"));
        }
    }

    #[test]
    fn records_have_suspects_and_victims() {
        let mut g = CrimeBatchGenerator::new(100, 1);
        let r = g.record(SimTime::ZERO);
        assert!(r.persons.iter().any(|p| p.role == PersonRole::Suspect));
        assert!(r.persons.iter().any(|p| p.role == PersonRole::Victim));
        assert!(r.report_number.starts_with("BR-2026-"));
    }

    #[test]
    fn monthly_batch_timing() {
        let mut g = CrimeBatchGenerator::new(100, 2);
        let batch = g.monthly_batch(2, 10);
        assert_eq!(batch.uploaded_at, SimTime::from_secs(3 * MONTH_SECS));
        let start = SimTime::from_secs(2 * MONTH_SECS);
        let end = SimTime::from_secs(3 * MONTH_SECS);
        for r in &batch.records {
            assert!(r.time >= start && r.time < end);
        }
    }

    #[test]
    fn retention_window_90_days() {
        let mut g = CrimeBatchGenerator::new(100, 3);
        let batch = g.monthly_batch(0, 1);
        let upload = batch.uploaded_at;
        assert!(!batch.expired_by(upload + SimDuration::from_secs(89 * 24 * 3600)));
        assert!(batch.expired_by(upload + SimDuration::from_secs(91 * 24 * 3600)));
    }

    #[test]
    fn report_numbers_unique_across_batches() {
        let mut g = CrimeBatchGenerator::new(100, 4);
        let a = g.monthly_batch(0, 20);
        let b = g.monthly_batch(1, 20);
        let mut nums: Vec<&String> = a
            .records
            .iter()
            .chain(&b.records)
            .map(|r| &r.report_number)
            .collect();
        nums.sort();
        nums.dedup();
        assert_eq!(nums.len(), 40);
    }

    #[test]
    fn shared_person_ids_create_co_offense_links() {
        // With a small population, suspects recur across incidents.
        let mut g = CrimeBatchGenerator::new(10, 5);
        let batch = g.monthly_batch(0, 40);
        let mut ids: Vec<u32> = batch
            .records
            .iter()
            .flat_map(|r| r.persons.iter())
            .map(|p| p.person_id)
            .collect();
        let total = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert!(ids.len() < total, "person ids must recur");
    }

    #[test]
    fn open_records_cover_all_kinds() {
        let mut g = OpenCityGenerator::new(6);
        let recs = g.stream(300);
        for kind in OpenRecordKind::ALL {
            assert!(recs.iter().any(|r| r.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn crime_records_cluster_in_hotspots() {
        let mut g = OpenCityGenerator::new(7);
        let recs = g.stream(2000);
        let anchor = GeoPoint::new(30.4515, -91.1871);
        let crimes: Vec<&OpenRecord> = recs
            .iter()
            .filter(|r| r.kind == OpenRecordKind::CrimeIncident)
            .collect();
        // Mean distance to the nearest hot-spot center should be well under
        // the uniform-spread records' scale.
        let hot = [
            anchor.offset_m(3000.0, 2000.0),
            anchor.offset_m(-4000.0, -1000.0),
            anchor.offset_m(1000.0, -5000.0),
        ];
        let mean_min: f64 = crimes
            .iter()
            .map(|r| {
                hot.iter()
                    .map(|h| h.haversine_m(r.location))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / crimes.len() as f64;
        assert!(
            mean_min < 1200.0,
            "clustered around hot spots, got {mean_min}"
        );
    }
}
