//! Crowd-sourced traffic reports (paper §II-A2).
//!
//! Stands in for the Waze Connected Citizens Program feed: "system-generated
//! traffic jams and user-reported traffic incidents" along highway corridors.

use scgeo::{corridor::Corridor, GeoPoint};
use simclock::{SeededRng, SimDuration, SimTime};

/// The kind of a Waze-style report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportKind {
    /// System-generated jam (speed below free-flow threshold).
    Jam,
    /// User-reported crash.
    Accident,
    /// User-reported hazard on the roadway.
    Hazard,
    /// User-reported closure.
    RoadClosed,
}

impl ReportKind {
    /// All kinds in stable order.
    pub const ALL: [ReportKind; 4] = [
        ReportKind::Jam,
        ReportKind::Accident,
        ReportKind::Hazard,
        ReportKind::RoadClosed,
    ];
}

/// One crowd-sourced traffic report.
#[derive(Debug, Clone, PartialEq)]
pub struct WazeReport {
    /// Unique id.
    pub id: u64,
    /// Report kind.
    pub kind: ReportKind,
    /// Where on the network.
    pub location: GeoPoint,
    /// When the report arrived.
    pub time: SimTime,
    /// Current speed at the location (km/h); meaningful for jams.
    pub speed_kmh: f64,
    /// Reporter reliability score in `[0, 1]` (Waze exposes a similar
    /// notion); system-generated jams report 1.0.
    pub reliability: f64,
}

/// Generator of report streams along a corridor.
///
/// # Examples
///
/// ```
/// use scdata::waze::WazeGenerator;
/// use scgeo::corridor::Corridor;
/// use scgeo::GeoPoint;
///
/// let i10 = Corridor::new("I-10", vec![
///     GeoPoint::new(30.40, -91.30),
///     GeoPoint::new(30.47, -91.00),
/// ]);
/// let mut gen = WazeGenerator::new(9);
/// let reports = gen.stream(&i10, 100);
/// assert_eq!(reports.len(), 100);
/// ```
#[derive(Debug)]
pub struct WazeGenerator {
    rng: SeededRng,
    next_id: u64,
}

impl WazeGenerator {
    /// Creates a generator.
    pub fn new(seed: u64) -> Self {
        WazeGenerator {
            rng: SeededRng::new(seed),
            next_id: 0,
        }
    }

    /// One report at a random milepost of `corridor` at time `t`.
    pub fn report(&mut self, corridor: &Corridor, t: SimTime) -> WazeReport {
        let kind = *self.rng.choose(&ReportKind::ALL).expect("non-empty kinds");
        let pos = corridor.point_at(self.rng.range_f64(0.0, corridor.length_m()));
        let id = self.next_id;
        self.next_id += 1;
        WazeReport {
            id,
            kind,
            location: pos,
            time: t,
            speed_kmh: match kind {
                ReportKind::Jam => self.rng.range_f64(0.0, 30.0),
                ReportKind::RoadClosed => 0.0,
                _ => self.rng.range_f64(40.0, 110.0),
            },
            reliability: match kind {
                ReportKind::Jam => 1.0,
                _ => self.rng.range_f64(0.3, 1.0),
            },
        }
    }

    /// A stream of `n` reports with exponentially distributed inter-arrival
    /// times (mean 30 s).
    pub fn stream(&mut self, corridor: &Corridor, n: usize) -> Vec<WazeReport> {
        let mut t = SimTime::ZERO;
        (0..n)
            .map(|_| {
                t += SimDuration::from_secs_f64(self.rng.exponential(1.0 / 30.0));
                self.report(corridor, t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Corridor {
        Corridor::new(
            "I-10",
            vec![GeoPoint::new(30.40, -91.30), GeoPoint::new(30.47, -91.00)],
        )
    }

    #[test]
    fn stream_is_time_ordered() {
        let mut g = WazeGenerator::new(1);
        let reports = g.stream(&corridor(), 50);
        for w in reports.windows(2) {
            assert!(w[1].time >= w[0].time);
        }
    }

    #[test]
    fn jams_are_slow_and_reliable() {
        let mut g = WazeGenerator::new(2);
        let reports = g.stream(&corridor(), 300);
        for r in reports.iter().filter(|r| r.kind == ReportKind::Jam) {
            assert!(r.speed_kmh < 30.0);
            assert_eq!(r.reliability, 1.0);
        }
    }

    #[test]
    fn reports_lie_on_corridor() {
        let c = corridor();
        let mut g = WazeGenerator::new(3);
        for r in g.stream(&c, 100) {
            // Within 100 m of the polyline's bounding envelope (straight line).
            let d0 = c.waypoints()[0].haversine_m(r.location);
            assert!(d0 <= c.length_m() + 100.0);
        }
    }

    #[test]
    fn all_kinds_appear() {
        let mut g = WazeGenerator::new(4);
        let reports = g.stream(&corridor(), 400);
        for kind in ReportKind::ALL {
            assert!(reports.iter().any(|r| r.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn ids_unique() {
        let mut g = WazeGenerator::new(5);
        let reports = g.stream(&corridor(), 100);
        let mut ids: Vec<u64> = reports.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }
}
