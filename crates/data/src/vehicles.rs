//! The vehicle-class catalog (paper §IV-A1).
//!
//! The paper's vehicle classifier distinguishes "make, model, year, color",
//! trained on "32,000 images for 400 classes" (Stanford cars + crawled
//! images). [`VehicleCatalog`] produces a deterministic catalog of visually
//! distinguishable classes; the video generator renders each class with a
//! class-specific appearance so a classifier genuinely has signal to learn.

use simclock::SeededRng;

/// Identifier of a vehicle class within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VehicleClassId(pub u16);

/// One fine-grained vehicle class: make, model, year band, color.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleClass {
    /// Class id (index into the catalog).
    pub id: VehicleClassId,
    /// Manufacturer.
    pub make: String,
    /// Model name.
    pub model: String,
    /// Model year.
    pub year: u16,
    /// Color name.
    pub color: String,
    /// Rendering appearance: base intensity in `[0.2, 1.0]`.
    pub intensity: f32,
    /// Rendering appearance: aspect ratio (width/height) of the body.
    pub aspect: f32,
    /// Rendering appearance: texture stripe period in pixels (1..=4).
    pub stripe_period: u8,
}

const MAKES: &[&str] = &[
    "Ford",
    "Chevrolet",
    "Toyota",
    "Honda",
    "Nissan",
    "Dodge",
    "GMC",
    "Hyundai",
    "Kia",
    "Jeep",
];
const MODELS: &[&str] = &[
    "Sedan",
    "Coupe",
    "Pickup",
    "SUV",
    "Hatchback",
    "Van",
    "Crossover",
    "Wagon",
];
const COLORS: &[&str] = &[
    "black", "white", "silver", "red", "blue", "gray", "green", "gold",
];

/// A catalog of vehicle classes with deterministic, distinguishable
/// appearances.
///
/// # Examples
///
/// ```
/// use scdata::vehicles::VehicleCatalog;
///
/// let catalog = VehicleCatalog::generate(400, 7);
/// assert_eq!(catalog.len(), 400); // the paper's class count
/// let c = catalog.class(scdata::vehicles::VehicleClassId(0)).unwrap();
/// assert!(!c.make.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct VehicleCatalog {
    classes: Vec<VehicleClass>,
}

impl VehicleCatalog {
    /// Generates `n` classes (the paper's full catalog is 400).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `u16::MAX`.
    pub fn generate(n: usize, seed: u64) -> Self {
        assert!(n > 0 && n <= u16::MAX as usize, "class count out of range");
        let mut rng = SeededRng::new(seed);
        let classes = (0..n)
            .map(|i| {
                let make = MAKES[i % MAKES.len()];
                let model = MODELS[(i / MAKES.len()) % MODELS.len()];
                let color = COLORS[(i / (MAKES.len() * MODELS.len())) % COLORS.len()];
                let year = 2000 + (i % 20) as u16;
                VehicleClass {
                    id: VehicleClassId(i as u16),
                    make: make.to_string(),
                    model: model.to_string(),
                    year,
                    color: color.to_string(),
                    // Appearance varies systematically with the class index so
                    // every class is separable, with a dash of seeded jitter.
                    intensity: 0.25
                        + 0.7 * (i as f32 / n as f32)
                        + rng.range_f64(-0.02, 0.02) as f32,
                    aspect: 1.2 + (i % 5) as f32 * 0.3,
                    stripe_period: 1 + (i % 4) as u8,
                }
            })
            .collect();
        VehicleCatalog { classes }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the catalog is empty (never true for a generated catalog).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Looks up a class by id.
    pub fn class(&self, id: VehicleClassId) -> Option<&VehicleClass> {
        self.classes.get(id.0 as usize)
    }

    /// All classes in id order.
    pub fn classes(&self) -> &[VehicleClass] {
        &self.classes
    }

    /// A human-readable label, e.g. `"2007 Toyota Pickup (red)"`.
    pub fn label(&self, id: VehicleClassId) -> Option<String> {
        self.class(id)
            .map(|c| format!("{} {} {} ({})", c.year, c.make, c.model, c.color))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        assert_eq!(VehicleCatalog::generate(400, 1).len(), 400);
        assert_eq!(VehicleCatalog::generate(40, 1).len(), 40);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = VehicleCatalog::generate(50, 2);
        let b = VehicleCatalog::generate(50, 2);
        assert_eq!(a.classes(), b.classes());
    }

    #[test]
    fn classes_have_distinct_identities() {
        let c = VehicleCatalog::generate(400, 3);
        let mut labels: Vec<String> = (0..400)
            .map(|i| c.label(VehicleClassId(i)).unwrap())
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 400, "all labels unique");
    }

    #[test]
    fn appearance_varies_with_class() {
        let c = VehicleCatalog::generate(100, 4);
        let first = c.class(VehicleClassId(0)).unwrap();
        let last = c.class(VehicleClassId(99)).unwrap();
        assert!(last.intensity > first.intensity + 0.3);
    }

    #[test]
    fn out_of_range_lookup_is_none() {
        let c = VehicleCatalog::generate(10, 5);
        assert!(c.class(VehicleClassId(10)).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_classes_panics() {
        let _ = VehicleCatalog::generate(0, 0);
    }
}
