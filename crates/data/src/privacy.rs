//! De-identification of sensitive records (paper §V).
//!
//! The paper's future work integrates medical and individual-level crime
//! data and calls out "legal and ethical challenges such as HIPAA ...
//! -compliant data storage and processing". This module implements the
//! de-identification step such a pipeline needs before analytics:
//!
//! - names → keyed pseudonyms (stable under one key, unlinkable across
//!   keys),
//! - locations → coarse grid cells (~1.1 km),
//! - ages → 10-year bands,
//! - timestamps → truncated to the hour.
//!
//! Pseudonymization is deliberately *consistent*: the same person under the
//! same key maps to the same pseudonym, preserving the co-offense linkage
//! that §IV-B's network construction requires — while a rotated key breaks
//! linkability for releases to different parties.

use scgeo::GeoPoint;
use simclock::SimTime;

use crate::city::{CrimeRecord, PersonRole};

/// A de-identified person reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pseudonym(pub String);

/// A de-identified crime record safe for analytics.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymizedRecord {
    /// Original report number (operational ids are not direct identifiers).
    pub report_number: String,
    /// Offense statute string.
    pub statute: String,
    /// District (already coarse).
    pub district: u8,
    /// Offense time truncated to the hour.
    pub time_hour: SimTime,
    /// Location generalized to a grid-cell centroid.
    pub coarse_location: GeoPoint,
    /// Pseudonymized people with role and age band only.
    pub persons: Vec<(Pseudonym, PersonRole, &'static str)>,
}

/// A keyed anonymizer.
#[derive(Debug, Clone)]
pub struct Anonymizer {
    key: u64,
    grid_m: f64,
}

/// The age bands used for generalization.
pub const AGE_BANDS: [&str; 7] = ["0-17", "18-24", "25-34", "35-44", "45-54", "55-64", "65+"];

/// Maps an age to its band.
pub fn age_band(age: u8) -> &'static str {
    match age {
        0..=17 => AGE_BANDS[0],
        18..=24 => AGE_BANDS[1],
        25..=34 => AGE_BANDS[2],
        35..=44 => AGE_BANDS[3],
        45..=54 => AGE_BANDS[4],
        55..=64 => AGE_BANDS[5],
        _ => AGE_BANDS[6],
    }
}

impl Anonymizer {
    /// Creates an anonymizer with a secret `key` and spatial generalization
    /// to cells of roughly `grid_m` meters.
    ///
    /// # Panics
    ///
    /// Panics if `grid_m` is not positive.
    pub fn new(key: u64, grid_m: f64) -> Self {
        assert!(grid_m > 0.0, "grid size must be positive");
        Anonymizer { key, grid_m }
    }

    /// Keyed pseudonym for a person id: stable under this key, different
    /// under another.
    pub fn pseudonym(&self, person_id: u32) -> Pseudonym {
        // Keyed FNV-1a over (key || id).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.key;
        for b in person_id.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // One more mixing round with the key.
        h ^= self.key.rotate_left(17);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        Pseudonym(format!("subj-{h:016x}"))
    }

    /// Generalizes a location to its grid-cell centroid.
    pub fn coarsen_location(&self, p: GeoPoint) -> GeoPoint {
        let cell_deg = self.grid_m / 111_320.0;
        let lat = (p.lat() / cell_deg).floor() * cell_deg + cell_deg / 2.0;
        let lon = (p.lon() / cell_deg).floor() * cell_deg + cell_deg / 2.0;
        GeoPoint::new(lat.clamp(-90.0, 90.0), lon.clamp(-180.0, 180.0))
    }

    /// Truncates a timestamp to the hour.
    pub fn coarsen_time(&self, t: SimTime) -> SimTime {
        SimTime::from_secs(t.as_micros() / 1_000_000 / 3600 * 3600)
    }

    /// De-identifies a full crime record.
    pub fn anonymize(&self, record: &CrimeRecord) -> AnonymizedRecord {
        AnonymizedRecord {
            report_number: record.report_number.clone(),
            statute: record.offense.statute().to_string(),
            district: record.district,
            time_hour: self.coarsen_time(record.time),
            coarse_location: self.coarsen_location(record.location),
            persons: record
                .persons
                .iter()
                .map(|p| (self.pseudonym(p.person_id), p.role, age_band(p.age)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CrimeBatchGenerator;

    fn record(seed: u64) -> CrimeRecord {
        CrimeBatchGenerator::new(50, seed).record(SimTime::from_secs(3_723))
    }

    #[test]
    fn pseudonyms_stable_under_one_key() {
        let a = Anonymizer::new(42, 1000.0);
        assert_eq!(a.pseudonym(7), a.pseudonym(7));
        assert_ne!(a.pseudonym(7), a.pseudonym(8));
    }

    #[test]
    fn pseudonyms_unlinkable_across_keys() {
        let a = Anonymizer::new(1, 1000.0);
        let b = Anonymizer::new(2, 1000.0);
        assert_ne!(a.pseudonym(7), b.pseudonym(7));
    }

    #[test]
    fn no_raw_identifiers_survive() {
        let a = Anonymizer::new(9, 1000.0);
        let raw = record(1);
        let anon = a.anonymize(&raw);
        let serialized = format!("{anon:?}");
        for p in &raw.persons {
            assert!(
                !serialized.contains(&p.name),
                "raw name {} leaked into {serialized}",
                p.name
            );
        }
        assert!(!serialized.contains(&raw.address), "address leaked");
    }

    #[test]
    fn linkage_preserved_within_a_release() {
        // Two records sharing a suspect must share a pseudonym — the
        // co-offense signal survives de-identification.
        let a = Anonymizer::new(3, 1000.0);
        let mut gen = CrimeBatchGenerator::new(5, 2); // tiny population → collisions
        let r1 = gen.record(SimTime::ZERO);
        let r2 = gen.record(SimTime::ZERO);
        let ids1: Vec<u32> = r1.persons.iter().map(|p| p.person_id).collect();
        let shared: Vec<u32> = r2
            .persons
            .iter()
            .map(|p| p.person_id)
            .filter(|id| ids1.contains(id))
            .collect();
        for id in shared {
            assert_eq!(a.pseudonym(id), a.pseudonym(id));
        }
    }

    #[test]
    fn location_coarsening_quantizes() {
        let a = Anonymizer::new(4, 1000.0);
        let p1 = GeoPoint::new(30.45001, -91.18001);
        let p2 = GeoPoint::new(30.45002, -91.18002);
        assert_eq!(a.coarsen_location(p1), a.coarsen_location(p2), "same cell");
        let far = GeoPoint::new(30.47, -91.18001);
        assert_ne!(
            a.coarsen_location(p1),
            a.coarsen_location(far),
            "different cell"
        );
        // Coarsened point is within half a cell diagonal of the original.
        let d = p1.haversine_m(a.coarsen_location(p1));
        assert!(d < 1000.0, "displacement {d}");
    }

    #[test]
    fn time_truncated_to_hour() {
        let a = Anonymizer::new(5, 1000.0);
        assert_eq!(
            a.coarsen_time(SimTime::from_secs(3_723)),
            SimTime::from_secs(3_600)
        );
        assert_eq!(a.coarsen_time(SimTime::from_secs(3_599)), SimTime::ZERO);
    }

    #[test]
    fn age_bands_cover_all_ages() {
        assert_eq!(age_band(15), "0-17");
        assert_eq!(age_band(18), "18-24");
        assert_eq!(age_band(34), "25-34");
        assert_eq!(age_band(70), "65+");
        for age in 0..=120u8 {
            assert!(AGE_BANDS.contains(&age_band(age)));
        }
    }

    #[test]
    fn anonymized_record_keeps_analytics_fields() {
        let a = Anonymizer::new(6, 1000.0);
        let raw = record(3);
        let anon = a.anonymize(&raw);
        assert_eq!(anon.district, raw.district);
        assert_eq!(anon.persons.len(), raw.persons.len());
        assert!(anon.statute.starts_with("La. R.S."));
    }
}
