//! # scdata — synthetic data layer
//!
//! The paper's data layer (§II-A) ingests four families of data. None of the
//! originals are publicly available (live DOTD camera feeds, Twitter/Waze
//! firehoses, and sensitive monthly law-enforcement transfers), so this crate
//! generates seeded synthetic equivalents with the same schemas and the
//! statistical structure the paper's applications rely on:
//!
//! - [`video`]: raster frames with rendered vehicles/actors and exact ground
//!   truth (for §IV-A detection/recognition), plus multi-frame action clips.
//! - [`vehicles`]: a catalog of vehicle classes — scalable to the paper's
//!   "32,000 images for 400 classes".
//! - [`tweets`]: template-based tweets with authors, geo, time, and optional
//!   gang affiliation (for §IV-B).
//! - [`waze`]: crowd-sourced jam/incident reports (§II-A2).
//! - [`city`]: open-city records and the monthly individual-level violent
//!   crime transfer with offense codes (§II-A3/4).
//!
//! All generators take explicit seeds; identical seeds give identical data.

pub mod actions;
pub mod city;
pub mod privacy;
pub mod tweets;
pub mod vehicles;
pub mod video;
pub mod waze;
