//! Property tests: the LSM table must behave exactly like a model BTreeMap
//! under any operation sequence, and document queries must agree with a
//! brute-force scan.

use std::collections::BTreeMap;

use proptest::prelude::*;
use scnosql::document::{Collection, Doc, Filter};
use scnosql::wide_column::Table;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Flush,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..8))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u8>().prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LSM table ≡ BTreeMap model under arbitrary put/delete/flush/compact
    /// sequences: every get and every scan agrees.
    #[test]
    fn lsm_matches_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut table = Table::new("t", 5); // tiny budget → frequent flushes
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let key = format!("k{k:03}");
                    table.put(&key, "f", "q", v.clone()).unwrap();
                    model.insert(key, v);
                }
                Op::Delete(k) => {
                    let key = format!("k{k:03}");
                    table.delete(&key, "f", "q").unwrap();
                    model.remove(&key);
                }
                Op::Flush => table.flush(),
                Op::Compact => table.compact(),
            }
        }
        // Point reads agree.
        for k in 0u16..=255 {
            let key = format!("k{k:03}");
            prop_assert_eq!(table.get(&key, "f", "q"), model.get(&key).cloned());
        }
        // Full scan agrees (ordered).
        let scanned: Vec<(String, Vec<u8>)> =
            table.scan_rows("", "\u{10FFFF}").map(|(k, v)| (k.row, v)).collect();
        let expected: Vec<(String, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    /// Indexed and unindexed queries return identical results for any data.
    #[test]
    fn document_index_matches_scan(
        values in proptest::collection::vec((0i64..20, 0i64..5), 1..40),
        query_val in 0i64..20,
        range in (0i64..10, 10i64..20),
    ) {
        let mut indexed = Collection::new("a");
        indexed.create_index("x");
        let mut plain = Collection::new("b");
        for (x, y) in &values {
            let doc = Doc::object([("x", Doc::I64(*x)), ("y", Doc::I64(*y))]);
            indexed.insert(doc.clone()).unwrap();
            plain.insert(doc).unwrap();
        }
        let eq = Filter::Eq("x".into(), Doc::I64(query_val));
        prop_assert_eq!(indexed.count(&eq).unwrap(), plain.count(&eq).unwrap());

        let rf = Filter::Range("x".into(), range.0 as f64, range.1 as f64);
        prop_assert_eq!(indexed.count(&rf).unwrap(), plain.count(&rf).unwrap());
    }

    /// WAL recovery loses nothing: state after crash+replay equals state
    /// before the crash.
    #[test]
    fn wal_recovery_is_lossless(
        kvs in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..30),
    ) {
        let mut table = Table::new("t", 1000); // never auto-flush
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for (k, v) in kvs {
            let key = format!("k{k}");
            table.put(&key, "f", "q", vec![v]).unwrap();
            model.insert(key, vec![v]);
        }
        let recovered = table.recover_from();
        for (k, v) in &model {
            let got = recovered.get(k, "f", "q");
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }
}
