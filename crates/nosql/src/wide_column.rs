//! An LSM-tree wide-column store in the spirit of HBase.
//!
//! Writes land in a write-ahead log and a sorted in-memory memtable; when the
//! memtable exceeds its budget it flushes to an immutable sorted run
//! (SSTable). Reads consult the memtable first, then runs newest-to-oldest.
//! A size-tiered compaction merges runs. Deletes are tombstones, dropped at
//! full compaction.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::NosqlError;

/// A fully qualified cell coordinate: row, column family, qualifier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// Row key (the primary dimension; rows sort lexicographically).
    pub row: String,
    /// Column family.
    pub family: String,
    /// Column qualifier within the family.
    pub qualifier: String,
}

impl CellKey {
    /// Creates a cell key.
    pub fn new(
        row: impl Into<String>,
        family: impl Into<String>,
        qualifier: impl Into<String>,
    ) -> Self {
        CellKey {
            row: row.into(),
            family: family.into(),
            qualifier: qualifier.into(),
        }
    }
}

/// A versioned value: `None` is a tombstone.
type Versioned = (u64, Option<Vec<u8>>);

/// One entry of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Cell written.
    pub key: CellKey,
    /// Value, or `None` for a delete.
    pub value: Option<Vec<u8>>,
}

/// An immutable sorted run of cells (the on-disk SSTable analogue).
#[derive(Debug, Clone)]
struct SortedRun {
    /// Sorted by key; each key appears once with its newest (seq, value).
    entries: Vec<(CellKey, Versioned)>,
}

impl SortedRun {
    fn get(&self, key: &CellKey) -> Option<&Versioned> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Statistics describing a table's LSM state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    /// Cells resident in the memtable.
    pub memtable_cells: usize,
    /// Number of immutable sorted runs.
    pub runs: usize,
    /// Total cells across all runs (including shadowed versions/tombstones).
    pub run_cells: usize,
    /// Total write-ahead-log entries since the last flush.
    pub wal_entries: usize,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

/// A wide-column table: the HBase analogue.
///
/// # Examples
///
/// ```
/// use scnosql::wide_column::Table;
///
/// let mut crimes = Table::new("crimes", 4096);
/// crimes.put("2026-06-01#0042", "info", "offense", b"ROBBERY".to_vec()).unwrap();
/// crimes.put("2026-06-01#0042", "info", "district", b"4".to_vec()).unwrap();
/// crimes.put("2026-06-02#0001", "info", "offense", b"ASSAULT".to_vec()).unwrap();
///
/// // Efficient random read:
/// assert!(crimes.get("2026-06-01#0042", "info", "offense").is_some());
/// // Ordered range scan over a day:
/// let day: Vec<_> = crimes.scan_rows("2026-06-01", "2026-06-02").collect();
/// assert_eq!(day.len(), 2);
/// ```
#[derive(Debug)]
pub struct Table {
    name: String,
    memtable: BTreeMap<CellKey, Versioned>,
    memtable_budget: usize,
    runs: Vec<SortedRun>, // newest last
    wal: Vec<WalEntry>,
    seq: u64,
    flushes: u64,
    compactions: u64,
}

impl Table {
    /// Creates a table that flushes its memtable after `memtable_budget`
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if `memtable_budget` is zero.
    pub fn new(name: impl Into<String>, memtable_budget: usize) -> Self {
        assert!(memtable_budget > 0, "memtable budget must be positive");
        Table {
            name: name.into(),
            memtable: BTreeMap::new(),
            memtable_budget,
            runs: Vec::new(),
            wal: Vec::new(),
            seq: 0,
            flushes: 0,
            compactions: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn log_and_apply(&mut self, key: CellKey, value: Option<Vec<u8>>) {
        self.seq += 1;
        self.wal.push(WalEntry {
            seq: self.seq,
            key: key.clone(),
            value: value.clone(),
        });
        self.memtable.insert(key, (self.seq, value));
        if self.memtable.len() >= self.memtable_budget {
            self.flush();
        }
    }

    /// Writes a cell.
    ///
    /// # Errors
    ///
    /// Rejects empty row keys ([`NosqlError::EmptyRowKey`]): rows sort
    /// lexicographically and the empty key is reserved as the scan origin.
    pub fn put(
        &mut self,
        row: &str,
        family: &str,
        qualifier: &str,
        value: Vec<u8>,
    ) -> Result<(), NosqlError> {
        if row.is_empty() {
            return Err(NosqlError::EmptyRowKey);
        }
        self.log_and_apply(CellKey::new(row, family, qualifier), Some(value));
        Ok(())
    }

    /// Deletes a cell (writes a tombstone).
    ///
    /// # Errors
    ///
    /// Rejects empty row keys, like [`Table::put`].
    pub fn delete(&mut self, row: &str, family: &str, qualifier: &str) -> Result<(), NosqlError> {
        if row.is_empty() {
            return Err(NosqlError::EmptyRowKey);
        }
        self.log_and_apply(CellKey::new(row, family, qualifier), None);
        Ok(())
    }

    /// Random point read of the newest version of a cell.
    pub fn get(&self, row: &str, family: &str, qualifier: &str) -> Option<Vec<u8>> {
        let key = CellKey::new(row, family, qualifier);
        if let Some((_, v)) = self.memtable.get(&key) {
            return v.clone();
        }
        for run in self.runs.iter().rev() {
            if let Some((_, v)) = run.get(&key) {
                return v.clone();
            }
        }
        None
    }

    /// All live cells of one row, sorted by (family, qualifier).
    pub fn get_row(&self, row: &str) -> Vec<(CellKey, Vec<u8>)> {
        self.scan_rows(row, &format!("{row}\u{0}")).collect()
    }

    /// Ordered scan of live cells with row keys in `[start, end)`.
    ///
    /// Merges the memtable and all runs, newest version winning, skipping
    /// tombstones.
    pub fn scan_rows(&self, start: &str, end: &str) -> impl Iterator<Item = (CellKey, Vec<u8>)> {
        // Gather newest version per key across all sources.
        let mut newest: BTreeMap<CellKey, Versioned> = BTreeMap::new();
        let lo = CellKey::new(start, "", "");
        let in_range = |k: &CellKey| k.row.as_str() >= start && k.row.as_str() < end;

        for run in &self.runs {
            let from = run.entries.partition_point(|(k, _)| k < &lo);
            for (k, v) in &run.entries[from..] {
                if k.row.as_str() >= end {
                    break;
                }
                match newest.get(k) {
                    Some((seq, _)) if *seq >= v.0 => {}
                    _ => {
                        newest.insert(k.clone(), v.clone());
                    }
                }
            }
        }
        for (k, v) in self.memtable.range((Bound::Included(lo), Bound::Unbounded)) {
            if k.row.as_str() >= end {
                break;
            }
            if in_range(k) {
                match newest.get(k) {
                    Some((seq, _)) if *seq >= v.0 => {}
                    _ => {
                        newest.insert(k.clone(), v.clone());
                    }
                }
            }
        }
        newest
            .into_iter()
            .filter_map(|(k, (_, v))| v.map(|val| (k, val)))
    }

    /// Forces the memtable into a new immutable run and truncates the WAL.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<(CellKey, Versioned)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        self.runs.push(SortedRun { entries });
        self.wal.clear();
        self.flushes += 1;
        // Size-tiered trigger: too many runs → compact.
        if self.runs.len() > 4 {
            self.compact();
        }
    }

    /// Merges all runs into one, keeping only the newest version per key and
    /// dropping tombstones (full major compaction).
    pub fn compact(&mut self) {
        if self.runs.len() <= 1 {
            return;
        }
        let mut newest: BTreeMap<CellKey, Versioned> = BTreeMap::new();
        for run in &self.runs {
            for (k, v) in &run.entries {
                match newest.get(k) {
                    Some((seq, _)) if *seq >= v.0 => {}
                    _ => {
                        newest.insert(k.clone(), v.clone());
                    }
                }
            }
        }
        let entries: Vec<(CellKey, Versioned)> = newest
            .into_iter()
            .filter(|(_, (_, v))| v.is_some())
            .collect();
        self.runs = vec![SortedRun { entries }];
        self.compactions += 1;
    }

    /// The unflushed write-ahead log (what crash recovery would replay).
    pub fn wal(&self) -> &[WalEntry] {
        &self.wal
    }

    /// Rebuilds a table from flushed runs plus a WAL replay — simulating
    /// recovery after a crash that lost the memtable.
    pub fn recover_from(mut self) -> Table {
        let wal = std::mem::take(&mut self.wal);
        self.memtable.clear();
        for e in wal {
            // Bypass logging: replay directly at the original sequence.
            self.memtable.insert(e.key, (e.seq, e.value));
        }
        self
    }

    /// Current LSM statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            memtable_cells: self.memtable.len(),
            runs: self.runs.len(),
            run_cells: self.runs.iter().map(SortedRun::len).sum(),
            wal_entries: self.wal.len(),
            flushes: self.flushes,
            compactions: self.compactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut t = Table::new("t", 100);
        t.put("r1", "f", "q", v("hello")).unwrap();
        assert_eq!(t.get("r1", "f", "q"), Some(v("hello")));
        assert_eq!(t.get("r1", "f", "other"), None);
    }

    #[test]
    fn overwrite_returns_newest() {
        let mut t = Table::new("t", 100);
        t.put("r", "f", "q", v("old")).unwrap();
        t.put("r", "f", "q", v("new")).unwrap();
        assert_eq!(t.get("r", "f", "q"), Some(v("new")));
    }

    #[test]
    fn delete_hides_value() {
        let mut t = Table::new("t", 100);
        t.put("r", "f", "q", v("x")).unwrap();
        t.delete("r", "f", "q").unwrap();
        assert_eq!(t.get("r", "f", "q"), None);
    }

    #[test]
    fn newest_wins_across_flush_boundary() {
        let mut t = Table::new("t", 100);
        t.put("r", "f", "q", v("old")).unwrap();
        t.flush();
        t.put("r", "f", "q", v("new")).unwrap();
        assert_eq!(t.get("r", "f", "q"), Some(v("new")));
        t.flush();
        assert_eq!(t.get("r", "f", "q"), Some(v("new")));
    }

    #[test]
    fn delete_works_across_flush() {
        let mut t = Table::new("t", 100);
        t.put("r", "f", "q", v("x")).unwrap();
        t.flush();
        t.delete("r", "f", "q").unwrap();
        assert_eq!(t.get("r", "f", "q"), None);
        t.flush();
        assert_eq!(t.get("r", "f", "q"), None);
    }

    #[test]
    fn auto_flush_on_budget() {
        let mut t = Table::new("t", 3);
        for i in 0..7 {
            t.put(&format!("r{i}"), "f", "q", v("x")).unwrap();
        }
        let s = t.stats();
        assert!(s.flushes >= 2, "{s:?}");
        assert!(s.memtable_cells < 3);
        // All values still readable.
        for i in 0..7 {
            assert!(t.get(&format!("r{i}"), "f", "q").is_some());
        }
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut t = Table::new("t", 4);
        for key in ["c", "a", "e", "b", "d"] {
            t.put(key, "f", "q", v(key)).unwrap();
        }
        let hits: Vec<String> = t.scan_rows("b", "e").map(|(k, _)| k.row).collect();
        assert_eq!(hits, vec!["b", "c", "d"]);
    }

    #[test]
    fn scan_sees_newest_across_runs() {
        let mut t = Table::new("t", 2); // force frequent flushes
        t.put("a", "f", "q", v("1")).unwrap();
        t.put("b", "f", "q", v("1")).unwrap();
        t.put("a", "f", "q", v("2")).unwrap();
        t.put("c", "f", "q", v("1")).unwrap();
        t.delete("b", "f", "q").unwrap();
        t.flush();
        let rows: Vec<(String, Vec<u8>)> = t.scan_rows("a", "z").map(|(k, v)| (k.row, v)).collect();
        assert_eq!(rows, vec![("a".into(), v("2")), ("c".into(), v("1"))]);
    }

    #[test]
    fn get_row_collects_columns() {
        let mut t = Table::new("t", 100);
        t.put("r1", "info", "offense", v("ROBBERY")).unwrap();
        t.put("r1", "info", "district", v("4")).unwrap();
        t.put("r1", "geo", "lat", v("30.45")).unwrap();
        t.put("r2", "info", "offense", v("OTHER")).unwrap();
        let row = t.get_row("r1");
        assert_eq!(row.len(), 3);
        assert!(row.iter().all(|(k, _)| k.row == "r1"));
    }

    #[test]
    fn compaction_preserves_view_and_drops_garbage() {
        let mut t = Table::new("t", 2);
        for i in 0..10 {
            t.put(&format!("r{}", i % 3), "f", "q", v(&format!("v{i}")))
                .unwrap();
        }
        t.delete("r0", "f", "q").unwrap();
        t.flush();
        let before: Vec<_> = t.scan_rows("", "\u{10FFFF}").collect();
        t.compact();
        let after: Vec<_> = t.scan_rows("", "\u{10FFFF}").collect();
        assert_eq!(before, after);
        let s = t.stats();
        assert_eq!(s.runs, 1);
        assert_eq!(s.run_cells, 2, "only live cells survive major compaction");
    }

    #[test]
    fn wal_replay_recovers_memtable() {
        let mut t = Table::new("t", 100);
        t.put("a", "f", "q", v("1")).unwrap();
        t.flush(); // "a" durable, wal cleared
        t.put("b", "f", "q", v("2")).unwrap();
        t.put("a", "f", "q", v("3")).unwrap();
        assert_eq!(t.wal().len(), 2);
        // Crash: memtable lost, recover from runs + wal.
        let recovered = t.recover_from();
        assert_eq!(recovered.get("a", "f", "q"), Some(v("3")));
        assert_eq!(recovered.get("b", "f", "q"), Some(v("2")));
    }

    #[test]
    fn stats_track_counts() {
        let mut t = Table::new("t", 10);
        t.put("a", "f", "q", v("1")).unwrap();
        let s = t.stats();
        assert_eq!(s.memtable_cells, 1);
        assert_eq!(s.wal_entries, 1);
        assert_eq!(s.runs, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        let _ = Table::new("t", 0);
    }

    #[test]
    fn empty_row_key_is_rejected() {
        let mut t = Table::new("t", 100);
        assert_eq!(t.put("", "f", "q", v("x")), Err(NosqlError::EmptyRowKey));
        assert_eq!(t.delete("", "f", "q"), Err(NosqlError::EmptyRowKey));
        assert_eq!(t.stats().wal_entries, 0, "rejected writes are not logged");
    }
}
