//! # scnosql — NoSQL storage substrates
//!
//! The paper's software layer (§II-C2) uses two NoSQL systems side by side:
//!
//! - **HBase**, "a distributed NoSQL database system running on top of HDFS
//!   ... a wide-column store or two-dimensional key/value store. Unlike HDFS
//!   that is optimized only for batch-style data access, HBase supports
//!   efficient random read/write operations." → [`wide_column::Table`], an
//!   LSM-tree store with a memtable, write-ahead log, sorted runs, and
//!   compaction.
//! - **MongoDB**, "a document-based NoSQL database system optimized for
//!   storing unstructured or semi-structured documents such as JSON data ...
//!   equipped with various indexing techniques". → [`document::Collection`],
//!   a BSON-ish document store with hash and ordered secondary indexes and a
//!   small query engine.
//!
//! Experiment E9 benchmarks the random-vs-batch access contrast the paper
//! draws between HBase and HDFS.
//!
//! Mutating and querying APIs return `Result<_, `[`NosqlError`]`>`: invalid
//! requests (inverted ranges, non-finite numbers, empty row keys) are
//! rejected as values instead of panicking inside the engine.
//!
//! # Examples
//!
//! ```
//! use scnosql::wide_column::Table;
//!
//! let mut t = Table::new("incidents", 1024);
//! t.put("row-1", "info", "type", b"robbery".to_vec()).unwrap();
//! assert_eq!(t.get("row-1", "info", "type").as_deref(), Some(&b"robbery"[..]));
//! ```

pub mod document;
mod error;
pub mod wide_column;

pub use error::NosqlError;
