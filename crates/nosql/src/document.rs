//! An indexed document store in the spirit of MongoDB.
//!
//! Documents are JSON-like trees ([`Doc`]); a [`Collection`] assigns ids,
//! maintains secondary indexes (hash for equality, ordered for ranges), and
//! answers [`Filter`] queries — using an index when one covers the filter,
//! falling back to a scan otherwise.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::NosqlError;

/// A JSON-like document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Doc {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered array.
    Array(Vec<Doc>),
    /// String-keyed object.
    Object(BTreeMap<String, Doc>),
}

impl Doc {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<I, K>(fields: I) -> Doc
    where
        I: IntoIterator<Item = (K, Doc)>,
        K: Into<String>,
    {
        Doc::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Navigates a dotted path (`"geo.lat"`), returning the sub-document.
    pub fn path(&self, path: &str) -> Option<&Doc> {
        let mut cur = self;
        for part in path.split('.') {
            match cur {
                Doc::Object(map) => cur = map.get(part)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Numeric view (`I64` and `F64` unify for comparisons).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Doc::I64(v) => Some(*v as f64),
            Doc::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Doc::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Checks that every number in the tree is finite (orderable), returning
    /// the dotted path of the first offender.
    fn check_finite(&self, path: &mut Vec<String>) -> Result<(), NosqlError> {
        match self {
            Doc::F64(v) if !v.is_finite() => Err(NosqlError::NonFiniteNumber {
                path: path.join("."),
            }),
            Doc::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    path.push(i.to_string());
                    item.check_finite(path)?;
                    path.pop();
                }
                Ok(())
            }
            Doc::Object(map) => {
                for (k, v) in map {
                    path.push(k.clone());
                    v.check_finite(path)?;
                    path.pop();
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// A total-order comparison key so values can live in ordered indexes.
    /// Cross-type comparisons order by type tag; numbers unify.
    fn order_key(&self) -> OrderKey {
        match self {
            Doc::Null => OrderKey::Null,
            Doc::Bool(b) => OrderKey::Bool(*b),
            Doc::I64(v) => OrderKey::Num(ordered_f64(*v as f64)),
            Doc::F64(v) => OrderKey::Num(ordered_f64(*v)),
            Doc::Str(s) => OrderKey::Str(s.clone()),
            Doc::Array(_) | Doc::Object(_) => OrderKey::Composite(format!("{self:?}")),
        }
    }
}

fn ordered_f64(v: f64) -> u64 {
    // Total-order bijection for non-NaN floats.
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum OrderKey {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Composite(String),
}

/// Document identifier assigned by the collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u64);

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc-{}", self.0)
    }
}

/// A query filter over document fields (dotted paths).
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Field equals value.
    Eq(String, Doc),
    /// Numeric field within `[min, max]` (inclusive).
    Range(String, f64, f64),
    /// Field exists.
    Exists(String),
    /// All sub-filters hold.
    And(Vec<Filter>),
    /// Any sub-filter holds.
    Or(Vec<Filter>),
    /// Geo proximity: object field with `lat`/`lon` within `radius_m` meters
    /// of the given point (equirectangular approximation — city scale).
    Near {
        /// Path to an object holding `lat` and `lon` fields.
        path: String,
        /// Center latitude.
        lat: f64,
        /// Center longitude.
        lon: f64,
        /// Radius in meters.
        radius_m: f64,
    },
}

impl Filter {
    /// Checks the filter is answerable: range bounds must be finite and
    /// ordered, geo centers finite with a non-negative radius. Composite
    /// filters validate every arm.
    pub fn validate(&self) -> Result<(), NosqlError> {
        match self {
            Filter::Range(path, lo, hi) => {
                if !lo.is_finite() || !hi.is_finite() || lo > hi {
                    return Err(NosqlError::InvalidRange {
                        path: path.clone(),
                        lo: *lo,
                        hi: *hi,
                    });
                }
                Ok(())
            }
            Filter::Near {
                path,
                lat,
                lon,
                radius_m,
            } => {
                if !lat.is_finite() || !lon.is_finite() || !radius_m.is_finite() || *radius_m < 0.0
                {
                    return Err(NosqlError::InvalidGeo { path: path.clone() });
                }
                Ok(())
            }
            Filter::And(fs) | Filter::Or(fs) => fs.iter().try_for_each(Filter::validate),
            Filter::Eq(..) | Filter::Exists(..) => Ok(()),
        }
    }

    /// Whether `doc` satisfies this filter.
    pub fn matches(&self, doc: &Doc) -> bool {
        match self {
            Filter::Eq(path, v) => doc.path(path) == Some(v),
            Filter::Range(path, lo, hi) => doc
                .path(path)
                .and_then(Doc::as_f64)
                .is_some_and(|x| x >= *lo && x <= *hi),
            Filter::Exists(path) => doc.path(path).is_some(),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Near {
                path,
                lat,
                lon,
                radius_m,
            } => {
                let Some(obj) = doc.path(path) else {
                    return false;
                };
                let (Some(dlat), Some(dlon)) = (
                    obj.path("lat").and_then(Doc::as_f64),
                    obj.path("lon").and_then(Doc::as_f64),
                ) else {
                    return false;
                };
                let m_per_deg = 111_320.0;
                let dy = (dlat - lat) * m_per_deg;
                let dx = (dlon - lon) * m_per_deg * lat.to_radians().cos();
                (dx * dx + dy * dy).sqrt() <= *radius_m
            }
        }
    }
}

#[derive(Debug, Default)]
struct FieldIndex {
    // Ordered index doubles as the equality index.
    by_value: BTreeMap<OrderKey, Vec<DocId>>,
}

/// A collection of documents with optional secondary indexes.
///
/// # Examples
///
/// ```
/// use scnosql::document::{Collection, Doc, Filter};
///
/// let mut tweets = Collection::new("tweets");
/// tweets.create_index("user");
/// tweets.insert(Doc::object([
///     ("user", Doc::Str("amber_watch".into())),
///     ("text", Doc::Str("silver sedan heading east".into())),
/// ])).unwrap();
/// let hits = tweets.find(&Filter::Eq("user".into(), Doc::Str("amber_watch".into()))).unwrap();
/// assert_eq!(hits.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Collection {
    name: String,
    docs: BTreeMap<DocId, Doc>,
    indexes: HashMap<String, FieldIndex>,
    next_id: u64,
    // Atomics (not `Cell`) so `&Collection` queries can run from the
    // `scpar` worker pool.
    scans: AtomicU64,
    index_hits: AtomicU64,
}

impl Collection {
    /// Creates an empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Collection {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Builds a secondary index on a dotted field path (covers existing
    /// documents immediately).
    pub fn create_index(&mut self, path: &str) {
        let mut index = FieldIndex::default();
        for (&id, doc) in &self.docs {
            if let Some(v) = doc.path(path) {
                index.by_value.entry(v.order_key()).or_default().push(id);
            }
        }
        self.indexes.insert(path.to_string(), index);
    }

    /// Whether a field is indexed.
    pub fn has_index(&self, path: &str) -> bool {
        self.indexes.contains_key(path)
    }

    /// Inserts a document, returning its id.
    ///
    /// # Errors
    ///
    /// Rejects documents carrying non-finite numbers
    /// ([`NosqlError::NonFiniteNumber`]) — they have no total order, so they
    /// can never be indexed or range-queried.
    pub fn insert(&mut self, doc: Doc) -> Result<DocId, NosqlError> {
        doc.check_finite(&mut Vec::new())?;
        let id = DocId(self.next_id);
        self.next_id += 1;
        for (path, index) in &mut self.indexes {
            if let Some(v) = doc.path(path) {
                index.by_value.entry(v.order_key()).or_default().push(id);
            }
        }
        self.docs.insert(id, doc);
        Ok(id)
    }

    /// Fetches a document by id.
    pub fn get(&self, id: DocId) -> Option<&Doc> {
        self.docs.get(&id)
    }

    /// Replaces a document in place, keeping its id and updating indexes.
    /// Returns the previous document, or `None` (no insert) if the id is
    /// unknown.
    ///
    /// # Errors
    ///
    /// Rejects documents carrying non-finite numbers, like
    /// [`Collection::insert`]; the stored document is untouched.
    pub fn update(&mut self, id: DocId, doc: Doc) -> Result<Option<Doc>, NosqlError> {
        doc.check_finite(&mut Vec::new())?;
        if !self.docs.contains_key(&id) {
            return Ok(None);
        }
        let old = self.remove(id).expect("checked above");
        for (path, index) in &mut self.indexes {
            if let Some(v) = doc.path(path) {
                index.by_value.entry(v.order_key()).or_default().push(id);
            }
        }
        self.docs.insert(id, doc);
        Ok(Some(old))
    }

    /// Removes every document matching `filter`, returning how many were
    /// deleted (a retention sweep's primitive).
    ///
    /// # Errors
    ///
    /// Propagates filter validation failures from [`Collection::find`]; no
    /// document is removed on error.
    pub fn remove_where(&mut self, filter: &Filter) -> Result<usize, NosqlError> {
        let ids: Vec<DocId> = self.find(filter)?.into_iter().map(|(id, _)| id).collect();
        for id in &ids {
            self.remove(*id);
        }
        Ok(ids.len())
    }

    /// Removes a document by id, returning it.
    pub fn remove(&mut self, id: DocId) -> Option<Doc> {
        let doc = self.docs.remove(&id)?;
        for (path, index) in &mut self.indexes {
            if let Some(v) = doc.path(path) {
                if let Some(ids) = index.by_value.get_mut(&v.order_key()) {
                    ids.retain(|&d| d != id);
                }
            }
        }
        Some(doc)
    }

    /// Runs a query, returning matching `(id, document)` pairs in id order.
    ///
    /// Uses an index when the filter (or the first arm of an `And`) is an
    /// indexed `Eq`/`Range`; otherwise scans.
    ///
    /// # Errors
    ///
    /// Rejects malformed filters ([`Filter::validate`]) — an inverted range
    /// on an indexed field previously aborted inside the B-tree.
    pub fn find(&self, filter: &Filter) -> Result<Vec<(DocId, &Doc)>, NosqlError> {
        filter.validate()?;
        let candidates = self.candidates(filter);
        Ok(match candidates {
            Some(ids) => {
                self.index_hits.fetch_add(1, Ordering::Relaxed);
                let mut hits: Vec<(DocId, &Doc)> = ids
                    .into_iter()
                    .filter_map(|id| self.docs.get(&id).map(|d| (id, d)))
                    .filter(|(_, d)| filter.matches(d))
                    .collect();
                hits.sort_by_key(|(id, _)| *id);
                hits.dedup_by_key(|(id, _)| *id);
                hits
            }
            None => {
                self.scans.fetch_add(1, Ordering::Relaxed);
                self.docs
                    .iter()
                    .filter(|(_, d)| filter.matches(d))
                    .map(|(&id, d)| (id, d))
                    .collect()
            }
        })
    }

    /// Count of matching documents.
    ///
    /// # Errors
    ///
    /// Propagates filter validation failures from [`Collection::find`].
    pub fn count(&self, filter: &Filter) -> Result<usize, NosqlError> {
        Ok(self.find(filter)?.len())
    }

    /// `(full_scans, index_assisted)` query counters — used by E9-style
    /// experiments to verify indexes are actually exercised.
    pub fn query_stats(&self) -> (u64, u64) {
        (
            self.scans.load(Ordering::Relaxed),
            self.index_hits.load(Ordering::Relaxed),
        )
    }

    /// Candidate ids from an index, or `None` if no index applies.
    fn candidates(&self, filter: &Filter) -> Option<Vec<DocId>> {
        match filter {
            Filter::Eq(path, v) => {
                let index = self.indexes.get(path)?;
                Some(
                    index
                        .by_value
                        .get(&v.order_key())
                        .cloned()
                        .unwrap_or_default(),
                )
            }
            Filter::Range(path, lo, hi) => {
                let index = self.indexes.get(path)?;
                let lo_k = OrderKey::Num(ordered_f64(*lo));
                let hi_k = OrderKey::Num(ordered_f64(*hi));
                Some(
                    index
                        .by_value
                        .range(lo_k..=hi_k)
                        .flat_map(|(_, ids)| ids.iter().copied())
                        .collect(),
                )
            }
            Filter::And(fs) => fs.iter().find_map(|f| self.candidates(f)),
            _ => None,
        }
    }

    /// Iterates all documents in id order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Doc)> {
        self.docs.iter().map(|(&id, d)| (id, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incident(kind: &str, district: i64, lat: f64, lon: f64) -> Doc {
        Doc::object([
            ("kind", Doc::Str(kind.into())),
            ("district", Doc::I64(district)),
            (
                "geo",
                Doc::object([("lat", Doc::F64(lat)), ("lon", Doc::F64(lon))]),
            ),
        ])
    }

    fn seeded() -> Collection {
        let mut c = Collection::new("incidents");
        c.insert(incident("robbery", 1, 30.45, -91.18)).unwrap();
        c.insert(incident("assault", 2, 30.46, -91.17)).unwrap();
        c.insert(incident("robbery", 2, 30.50, -91.10)).unwrap();
        c.insert(incident("homicide", 3, 29.95, -90.07)).unwrap();
        c
    }

    #[test]
    fn insert_get_remove() {
        let mut c = Collection::new("t");
        let id = c.insert(Doc::object([("a", Doc::I64(1))])).unwrap();
        assert!(c.get(id).is_some());
        assert_eq!(c.len(), 1);
        let doc = c.remove(id).unwrap();
        assert_eq!(doc.path("a"), Some(&Doc::I64(1)));
        assert!(c.is_empty());
    }

    #[test]
    fn path_navigation() {
        let d = incident("robbery", 1, 30.0, -91.0);
        assert_eq!(d.path("geo.lat").and_then(Doc::as_f64), Some(30.0));
        assert_eq!(d.path("geo.alt"), None);
        assert_eq!(d.path("kind").and_then(Doc::as_str), Some("robbery"));
    }

    #[test]
    fn eq_filter_scan() {
        let c = seeded();
        let hits = c
            .find(&Filter::Eq("kind".into(), Doc::Str("robbery".into())))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn eq_filter_uses_index() {
        let mut c = seeded();
        c.create_index("kind");
        let hits = c
            .find(&Filter::Eq("kind".into(), Doc::Str("robbery".into())))
            .unwrap();
        assert_eq!(hits.len(), 2);
        let (scans, indexed) = c.query_stats();
        assert_eq!(scans, 0);
        assert_eq!(indexed, 1);
    }

    #[test]
    fn index_covers_preexisting_docs() {
        let mut c = seeded();
        c.create_index("district");
        let hits = c.find(&Filter::Eq("district".into(), Doc::I64(2))).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn range_filter_with_index() {
        let mut c = seeded();
        c.create_index("district");
        let hits = c.find(&Filter::Range("district".into(), 2.0, 3.0)).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(c.query_stats().1, 1);
    }

    #[test]
    fn range_mixes_int_and_float() {
        let mut c = Collection::new("t");
        c.insert(Doc::object([("x", Doc::I64(5))])).unwrap();
        c.insert(Doc::object([("x", Doc::F64(5.5))])).unwrap();
        c.insert(Doc::object([("x", Doc::F64(-1.0))])).unwrap();
        c.create_index("x");
        assert_eq!(c.count(&Filter::Range("x".into(), 0.0, 10.0)).unwrap(), 2);
        assert_eq!(c.count(&Filter::Range("x".into(), -2.0, 0.0)).unwrap(), 1);
    }

    #[test]
    fn and_or_compose() {
        let c = seeded();
        let f = Filter::And(vec![
            Filter::Eq("kind".into(), Doc::Str("robbery".into())),
            Filter::Eq("district".into(), Doc::I64(2)),
        ]);
        assert_eq!(c.count(&f).unwrap(), 1);
        let f = Filter::Or(vec![
            Filter::Eq("district".into(), Doc::I64(1)),
            Filter::Eq("district".into(), Doc::I64(3)),
        ]);
        assert_eq!(c.count(&f).unwrap(), 2);
    }

    #[test]
    fn and_with_indexed_arm_prefilters() {
        let mut c = seeded();
        c.create_index("kind");
        let f = Filter::And(vec![
            Filter::Eq("kind".into(), Doc::Str("robbery".into())),
            Filter::Range("geo.lat".into(), 30.48, 31.0),
        ]);
        let hits = c.find(&f).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(c.query_stats(), (0, 1));
    }

    #[test]
    fn near_filter() {
        let c = seeded();
        // Within 2km of downtown Baton Rouge: the two close incidents.
        let f = Filter::Near {
            path: "geo".into(),
            lat: 30.455,
            lon: -91.175,
            radius_m: 2000.0,
        };
        assert_eq!(c.count(&f).unwrap(), 2);
        // New Orleans incident is ~120 km away.
        let f = Filter::Near {
            path: "geo".into(),
            lat: 29.95,
            lon: -90.07,
            radius_m: 1000.0,
        };
        assert_eq!(c.count(&f).unwrap(), 1);
    }

    #[test]
    fn exists_filter() {
        let mut c = seeded();
        c.insert(Doc::object([("kind", Doc::Str("pothole".into()))]))
            .unwrap(); // no geo
        assert_eq!(c.count(&Filter::Exists("geo".into())).unwrap(), 4);
        assert_eq!(c.count(&Filter::Exists("nope".into())).unwrap(), 0);
    }

    #[test]
    fn remove_updates_index() {
        let mut c = seeded();
        c.create_index("kind");
        let id = c
            .find(&Filter::Eq("kind".into(), Doc::Str("homicide".into())))
            .unwrap()[0]
            .0;
        c.remove(id);
        assert_eq!(
            c.count(&Filter::Eq("kind".into(), Doc::Str("homicide".into())))
                .unwrap(),
            0
        );
    }

    #[test]
    fn insert_rejects_non_finite_numbers() {
        let mut c = Collection::new("t");
        let err = c
            .insert(Doc::object([(
                "geo",
                Doc::object([("lat", Doc::F64(f64::NAN))]),
            )]))
            .unwrap_err();
        assert_eq!(
            err,
            NosqlError::NonFiniteNumber {
                path: "geo.lat".into()
            }
        );
        assert!(c.is_empty(), "rejected insert must not store anything");
    }

    #[test]
    fn find_rejects_inverted_range_instead_of_panicking() {
        let mut c = seeded();
        c.create_index("district");
        let err = c
            .find(&Filter::Range("district".into(), 3.0, 1.0))
            .unwrap_err();
        assert!(matches!(err, NosqlError::InvalidRange { .. }));
        // Composite filters validate every arm.
        let nested = Filter::And(vec![
            Filter::Exists("kind".into()),
            Filter::Range("district".into(), f64::NAN, 1.0),
        ]);
        assert!(c.find(&nested).is_err());
    }

    #[test]
    fn find_rejects_bad_geo() {
        let c = seeded();
        let err = c
            .find(&Filter::Near {
                path: "geo".into(),
                lat: 30.0,
                lon: -91.0,
                radius_m: -5.0,
            })
            .unwrap_err();
        assert_eq!(err, NosqlError::InvalidGeo { path: "geo".into() });
    }

    #[test]
    fn index_and_scan_agree() {
        let mut with_idx = seeded();
        with_idx.create_index("district");
        let without_idx = seeded();
        let f = Filter::Range("district".into(), 1.0, 2.0);
        let a: Vec<DocId> = with_idx
            .find(&f)
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let b: Vec<DocId> = without_idx
            .find(&f)
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod update_tests {
    use super::*;

    fn doc(kind: &str, v: i64) -> Doc {
        Doc::object([("kind", Doc::Str(kind.into())), ("v", Doc::I64(v))])
    }

    #[test]
    fn update_replaces_and_reindexes() {
        let mut c = Collection::new("t");
        c.create_index("kind");
        let id = c.insert(doc("a", 1)).unwrap();
        let old = c.update(id, doc("b", 2)).unwrap().unwrap();
        assert_eq!(old.path("kind").and_then(Doc::as_str), Some("a"));
        assert_eq!(
            c.count(&Filter::Eq("kind".into(), Doc::Str("a".into())))
                .unwrap(),
            0
        );
        assert_eq!(
            c.count(&Filter::Eq("kind".into(), Doc::Str("b".into())))
                .unwrap(),
            1
        );
        assert_eq!(c.len(), 1, "same id, no growth");
    }

    #[test]
    fn update_unknown_id_is_noop() {
        let mut c = Collection::new("t");
        assert!(c.update(DocId(99), doc("a", 1)).unwrap().is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn remove_where_deletes_matching() {
        let mut c = Collection::new("t");
        c.create_index("kind");
        for i in 0..10 {
            c.insert(doc(if i % 2 == 0 { "keep" } else { "purge" }, i))
                .unwrap();
        }
        let removed = c
            .remove_where(&Filter::Eq("kind".into(), Doc::Str("purge".into())))
            .unwrap();
        assert_eq!(removed, 5);
        assert_eq!(c.len(), 5);
        assert_eq!(
            c.count(&Filter::Eq("kind".into(), Doc::Str("purge".into())))
                .unwrap(),
            0
        );
        assert_eq!(
            c.count(&Filter::Eq("kind".into(), Doc::Str("keep".into())))
                .unwrap(),
            5
        );
    }

    #[test]
    fn remove_where_range() {
        let mut c = Collection::new("t");
        for i in 0..10 {
            c.insert(doc("x", i)).unwrap();
        }
        let removed = c
            .remove_where(&Filter::Range("v".into(), 0.0, 4.0))
            .unwrap();
        assert_eq!(removed, 5);
        assert_eq!(c.len(), 5);
    }
}
