//! Error type shared by the document and wide-column stores.

/// An invalid request rejected by a NoSQL store.
///
/// The stores are in-memory and never fail on I/O; every error is a request
/// the engine cannot represent — previously these either panicked (an
/// inverted range on an indexed field aborted inside the B-tree) or silently
/// corrupted index order (non-finite floats have no total order).
#[derive(Debug, Clone, PartialEq)]
pub enum NosqlError {
    /// A document carries a non-finite number (`NaN`/`±inf`) at `path`;
    /// such values cannot live in ordered indexes.
    NonFiniteNumber {
        /// Dotted path of the offending field.
        path: String,
    },
    /// A range filter whose bounds are inverted or non-finite.
    InvalidRange {
        /// Dotted path the filter targets.
        path: String,
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// A geo filter with a non-finite center or negative/non-finite radius.
    InvalidGeo {
        /// Dotted path the filter targets.
        path: String,
    },
    /// A wide-column write with an empty row key (rows sort
    /// lexicographically; the empty key is reserved as the scan origin).
    EmptyRowKey,
}

impl std::fmt::Display for NosqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NosqlError::NonFiniteNumber { path } => {
                write!(f, "non-finite number at {path:?} cannot be indexed")
            }
            NosqlError::InvalidRange { path, lo, hi } => {
                write!(f, "invalid range [{lo}, {hi}] on field {path:?}")
            }
            NosqlError::InvalidGeo { path } => {
                write!(f, "invalid geo query on field {path:?}")
            }
            NosqlError::EmptyRowKey => write!(f, "row key must be non-empty"),
        }
    }
}

impl std::error::Error for NosqlError {}
