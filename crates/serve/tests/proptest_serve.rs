//! Property tests for the serving-layer invariants.
//!
//! Three families, matching the scserve design claims:
//!
//! - **Routing** — every key routes to exactly one live shard, replicas
//!   are distinct, and routing is a pure function of the node set.
//! - **Minimal movement** — removing one of `N` nodes remaps about
//!   `keys / N` keys; survivors' keys never move.
//! - **Cache freshness** — under arbitrary insert / read / invalidate /
//!   advance interleavings, a cache read never returns a value that is
//!   wrong for its key or older than the TTL.
//! - **Scale-event coherence** — cache generation stamps survive shard
//!   add/remove cycles: across arbitrary autoscale interleavings a
//!   served answer never reflects a state older than the latest
//!   acknowledged write and is never served beyond its TTL.

use proptest::prelude::*;
use scnosql::document::Doc;
use scserve::{CacheConfig, LruTtlCache, Outcome, ServeConfig, Server, ShardMap};
use simclock::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every key routes to exactly one node, and that node is a live ring
    /// member. Replica lists lead with the home node and never repeat.
    #[test]
    fn every_key_routes_to_exactly_one_live_shard(
        nodes in 1u32..12,
        vnodes in 1u32..96,
        replicas in 1usize..5,
        keys in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let map = ShardMap::with_nodes(nodes, vnodes);
        for key in &keys {
            let bytes = key.to_le_bytes();
            let home = map.route(&bytes).expect("non-empty ring always routes");
            prop_assert!(map.contains(home), "routed to a dead node");
            // Routing is a function: ask twice, same answer.
            prop_assert_eq!(map.route(&bytes), Some(home));
            let reps = map.route_replicas(&bytes, replicas);
            prop_assert_eq!(reps.len(), replicas.min(nodes as usize));
            prop_assert_eq!(reps[0], home, "replica list must lead with home");
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), reps.len(), "replicas must be distinct");
        }
    }

    /// Removing one of `N` nodes only moves the keys the node owned —
    /// about `keys / N` — and never touches a survivor's keys. The bound
    /// allows consistent hashing's placement variance on top of ⌈keys/N⌉.
    #[test]
    fn removal_remaps_at_most_its_share_plus_slack(
        nodes in 2u32..10,
        victim_ix in 0u32..10,
        nkeys in 100usize..600,
    ) {
        let mut map = ShardMap::with_nodes(nodes, 128);
        let victim = victim_ix % nodes;
        let keys: Vec<Vec<u8>> = (0..nkeys)
            .map(|i| format!("key-{i}").into_bytes())
            .collect();
        let before: Vec<u32> = keys.iter().map(|k| map.route(k).unwrap()).collect();
        map.remove_node(victim);
        let mut moved = 0usize;
        for (key, &was) in keys.iter().zip(&before) {
            let now = map.route(key).unwrap();
            if was == victim {
                prop_assert_ne!(now, victim, "keys must leave the removed node");
                moved += 1;
            } else {
                prop_assert_eq!(now, was, "a survivor's key moved");
            }
        }
        let fair_share = nkeys.div_ceil(nodes as usize);
        let slack = fair_share + 16; // ring-variance allowance (128 vnodes)
        prop_assert!(
            moved <= fair_share + slack,
            "removing 1 of {} nodes moved {} of {} keys (fair share {})",
            nodes, moved, nkeys, fair_share
        );
    }

    /// Adding a node then removing it restores the exact prior routing.
    #[test]
    fn add_remove_is_a_routing_no_op(
        nodes in 1u32..8,
        newcomer in 100u32..200,
        keys in proptest::collection::vec(any::<u64>(), 1..150),
    ) {
        let mut map = ShardMap::with_nodes(nodes, 64);
        let before: Vec<_> = keys.iter().map(|k| map.route(&k.to_le_bytes())).collect();
        map.add_node(newcomer);
        map.remove_node(newcomer);
        let after: Vec<_> = keys.iter().map(|k| map.route(&k.to_le_bytes())).collect();
        prop_assert_eq!(before, after);
    }
}

/// One step of the cache interleaving driver.
#[derive(Debug, Clone)]
enum CacheOp {
    /// Insert key → versioned value.
    Insert(u8),
    /// Read a key and check freshness.
    Read(u8),
    /// Explicitly invalidate a key.
    Invalidate(u8),
    /// Advance sim-time by this many milliseconds.
    Advance(u16),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        any::<u8>().prop_map(CacheOp::Insert),
        any::<u8>().prop_map(CacheOp::Read),
        any::<u8>().prop_map(CacheOp::Invalidate),
        (0u16..500).prop_map(CacheOp::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary insert/read/invalidate/advance interleavings a
    /// read never observes (a) a value other than the key's latest
    /// insert, (b) a value older than the TTL, or (c) an invalidated
    /// value. Eviction may cause misses, never wrong hits.
    #[test]
    fn no_stale_read_under_arbitrary_interleavings(
        capacity in 1usize..64,
        ttl_ms in 1u64..2_000,
        seed in any::<u64>(),
        ops in proptest::collection::vec(cache_op(), 1..200),
    ) {
        let ttl = SimDuration::from_millis(ttl_ms);
        let mut cache: LruTtlCache<u8, u64> = LruTtlCache::new(CacheConfig {
            capacity,
            ttl,
            seed,
            ..CacheConfig::default()
        });
        // Ground truth: key → (latest version, insert time).
        let mut model: std::collections::BTreeMap<u8, (u64, SimTime)> = Default::default();
        let mut now = SimTime::ZERO;
        let mut version = 0u64;

        for op in ops {
            match op {
                CacheOp::Insert(k) => {
                    version += 1;
                    cache.insert(k, version, now);
                    model.insert(k, (version, now));
                }
                CacheOp::Read(k) => {
                    if let Some(v) = cache.get(&k, now) {
                        let (want, at) = model
                            .get(&k)
                            .copied()
                            .expect("hit for a never-inserted key");
                        prop_assert_eq!(v, want, "hit returned a superseded value");
                        prop_assert!(
                            now.saturating_since(at) < ttl,
                            "hit at {:?} for a value inserted at {:?} breaches ttl {:?}",
                            now, at, ttl
                        );
                    }
                }
                CacheOp::Invalidate(k) => {
                    cache.invalidate(&k);
                    model.remove(&k);
                    prop_assert_eq!(cache.get(&k, now), None, "read-after-invalidate");
                }
                CacheOp::Advance(ms) => {
                    now += SimDuration::from_millis(ms as u64);
                }
            }
        }
    }

    /// With capacity for every key, a read immediately after an insert
    /// always hits (eviction can only be the reason for a miss).
    #[test]
    fn uncontended_cache_never_misses(
        keys in proptest::collection::vec(any::<u8>(), 1..100),
    ) {
        let mut cache: LruTtlCache<u8, u64> = LruTtlCache::new(CacheConfig {
            capacity: 256,
            ttl: SimDuration::from_secs(60),
            ..CacheConfig::default()
        });
        let now = SimTime::ZERO;
        for (i, k) in keys.into_iter().enumerate() {
            cache.insert(k, i as u64, now);
            prop_assert_eq!(cache.get(&k, now), Some(i as u64));
        }
    }
}

/// One step of the autoscale-cycle coherence driver.
#[derive(Debug, Clone)]
enum FleetOp {
    /// Write a new version under this key (bumps the generation).
    Put(u8),
    /// Read a key and check the answer against the ground truth.
    Get(u8),
    /// Autoscale up: add the next shard node and rebalance.
    AddShard,
    /// Autoscale down: remove the most recently added node (never a
    /// seed node, so the fleet never shrinks below its base size).
    RemoveShard,
    /// Turn the runtime knobs mid-run (service rate / rate limit), as
    /// the scmetro autoscaler does, with values that keep admission
    /// open so every answer stays checkable.
    Retune(bool),
    /// Advance sim-time by this many milliseconds (can cross the TTL).
    Advance(u16),
}

fn fleet_op() -> impl Strategy<Value = FleetOp> {
    prop_oneof![
        (0u8..24).prop_map(FleetOp::Put),
        (0u8..24).prop_map(FleetOp::Get),
        (0u8..24).prop_map(FleetOp::Get),
        Just(FleetOp::AddShard),
        Just(FleetOp::RemoveShard),
        any::<bool>().prop_map(FleetOp::Retune),
        (1u16..5_000).prop_map(FleetOp::Advance),
    ]
}

fn versioned(v: i64) -> Doc {
    Doc::object([("v", Doc::I64(v))])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cache generation stamps survive autoscale add/remove cycles:
    /// under arbitrary put/get/add-shard/remove-shard/retune/advance
    /// interleavings of a healthy fleet, every served answer
    ///
    /// 1. equals the latest acknowledged write for its key (a cached
    ///    entry whose generation a rebalance failed to invalidate or a
    ///    write failed to supersede would violate this),
    /// 2. is never served from the cache beyond its TTL (a `Cached`
    ///    outcome at `now` implies a fill within `ttl`), and
    /// 3. is never `Stale` or `Degraded` — with every shard live those
    ///    ladder rungs are unreachable, scale events included.
    #[test]
    fn cache_generations_survive_autoscale_cycles(
        ttl_ms in 50u64..10_000,
        ops in proptest::collection::vec(fleet_op(), 1..120),
    ) {
        let ttl = SimDuration::from_millis(ttl_ms);
        let base = ServeConfig::default();
        let mut server = Server::new(ServeConfig {
            query_cache: CacheConfig { ttl, ..CacheConfig::default() },
            ..base.clone()
        });
        // Ground truth: key → latest acknowledged version, plus the
        // fill time of the freshest backend answer per key (a `Cached`
        // outcome must trace back to a fill within TTL).
        let mut model: std::collections::BTreeMap<u8, i64> = Default::default();
        let mut filled: std::collections::BTreeMap<u8, SimTime> = Default::default();
        let mut now = SimTime::ZERO;
        let mut version = 0i64;
        let mut next_node = base.shards;
        let mut added: Vec<u32> = Vec::new();

        for op in ops {
            match op {
                FleetOp::Put(k) => {
                    version += 1;
                    server
                        .put(&format!("key-{k:02}"), versioned(version), now)
                        .unwrap();
                    model.insert(k, version);
                }
                FleetOp::Get(k) => {
                    let served = server.get(&format!("key-{k:02}"), now).unwrap();
                    let want = model.get(&k).map(|v| versioned(*v));
                    match served.outcome {
                        Outcome::Fresh(doc) => {
                            prop_assert_eq!(doc, want, "fresh answer lost a write");
                            filled.insert(k, now);
                        }
                        Outcome::Cached(doc) => {
                            prop_assert_eq!(doc, want, "cached answer is stale");
                            let at = filled.get(&k).copied()
                                .expect("a cached answer implies a prior fill");
                            prop_assert!(
                                now.saturating_since(at) < ttl,
                                "cache hit at {:?} for an entry filled at {:?} breaches ttl {:?}",
                                now, at, ttl
                            );
                        }
                        other => prop_assert!(
                            false,
                            "healthy fleet must answer fresh or cached, got {:?}",
                            other
                        ),
                    }
                }
                FleetOp::AddShard => {
                    server.add_shard(next_node);
                    added.push(next_node);
                    next_node += 1;
                }
                FleetOp::RemoveShard => {
                    if let Some(node) = added.pop() {
                        server.remove_shard(node);
                    }
                }
                FleetOp::Retune(up) => {
                    let rate = if up { 2.0 * base.service_rate } else { base.service_rate };
                    server.set_service_rate(rate, now);
                    server.set_rate_limit(base.rate_per_s, base.burst, now);
                }
                FleetOp::Advance(ms) => {
                    now += SimDuration::from_millis(ms as u64);
                }
            }
        }
    }
}
