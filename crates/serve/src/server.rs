//! The serving front end: one object tying together shard routing,
//! caches, micro-batching, and admission control.
//!
//! A [`Server`] owns a set of replicated document shards (scnosql
//! [`Collection`]s placed by the consistent-hash [`ShardMap`]), an
//! optional inference model, and the serving machinery around them:
//!
//! ```text
//! request ──► token bucket ──► cache ──► bounded queue ──► shards/model
//!                 │ shed         │ hit        │ shed            │
//!                 ▼              ▼            ▼                 ▼
//!               Shed          Cached        Shed/stale     Fresh (cached
//!                                                           on the way out)
//! ```
//!
//! **Cache coherence rule.** Every write bumps the server's generation;
//! query-cache entries are stamped with the generation at fill time and a
//! hit is honoured only if the stamp is current *and* the entry is within
//! TTL. A cached answer therefore can never reflect a state older than
//! the latest acknowledged write — the equivalence suite drives
//! write/read interleavings to hold this to "bit-identical with the
//! direct call".
//!
//! **Degradation ladder.** When a shard is down (per an injected
//! [`scfault::FaultPlan`]), reads reroute to the next live replica; when
//! every replica of a key is down, the server serves the last cached
//! answer *ignoring TTL* (`Stale`) or, with nothing cached, an explicitly
//! `Degraded` partial answer. The [`scfault::CircuitBreaker`] sits in
//! front of the fan-out so a persistently dark backend stops being probed
//! on every request.

use std::collections::BTreeMap;

use scfault::{CircuitBreaker, FaultPlan, OutageWindows};
use scneural::exec::ExecCtx;
use scneural::net::Sequential;
use scnosql::document::{Collection, Doc, DocId, Filter};
use scnosql::NosqlError;
use scpar::ScparConfig;
use sctelemetry::{SpanContext, SpanGuard, TelemetryHandle, TraceId, WorkDelta, STREAM_SERVE};
use simclock::{SimDuration, SimTime};

use crate::admission::{Admission, ServiceQueue, TokenBucket};
use crate::batch::{row_fingerprint, BatchConfig, MicroBatcher, ReqId};
use crate::cache::{CacheConfig, InferenceCache, QueryCache};
use crate::shard::{hash_bytes, ShardMap};

/// Sim-time cost charged for an answer served straight from memory
/// (cache hit, stale serve): no queueing, no backend work.
pub const CACHE_HIT_COST: SimDuration = SimDuration::from_micros(50);

/// Work-accounting kernel of the micro-batcher (requests served per flush).
pub const KERNEL_BATCHER: &str = "serve/batcher";
/// Work-accounting kernel of admission control (rate gate decisions).
pub const KERNEL_ADMISSION: &str = "serve/admission";
/// Work-accounting kernel of the query cache (hits, misses, stale serves).
pub const KERNEL_CACHE: &str = "serve/cache";

/// Rows returned by a query: `(key, document)` pairs in key order.
pub type Rows = Vec<(String, Doc)>;

/// All serving knobs in one place.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard nodes at startup (ids `0..shards`).
    pub shards: u32,
    /// Replicas per key (clamped to the live shard count).
    pub replicas: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: u32,
    /// Query-result cache policy.
    pub query_cache: CacheConfig,
    /// Inference-output cache policy.
    pub infer_cache: CacheConfig,
    /// Micro-batching knobs.
    pub batch: BatchConfig,
    /// Token-bucket refill rate, requests per sim-second.
    pub rate_per_s: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// Backend service rate, requests per sim-second.
    pub service_rate: f64,
    /// Bounded-queue capacity; beyond it requests are shed.
    pub queue_capacity: usize,
    /// Consecutive backend failures before the circuit breaker opens.
    pub breaker_failures: u32,
    /// Sim-time an open breaker waits before a half-open probe.
    pub breaker_reset: SimDuration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            replicas: 2,
            vnodes: 64,
            query_cache: CacheConfig::default(),
            infer_cache: CacheConfig::default(),
            batch: BatchConfig::default(),
            rate_per_s: 100_000.0,
            burst: 1_000.0,
            service_rate: 10_000.0,
            queue_capacity: 1_000,
            breaker_failures: 5,
            breaker_reset: SimDuration::from_secs(1),
        }
    }
}

/// How an answer was produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<T> {
    /// Computed by the backend just now (and cached on the way out).
    Fresh(T),
    /// Served from a valid (unexpired, current-generation) cache entry.
    Cached(T),
    /// Served from an expired or superseded cache entry because the
    /// authoritative shards were unreachable.
    Stale(T),
    /// Computed, but with one or more keys unreachable — a partial,
    /// degraded answer.
    Degraded(T),
    /// Rejected by admission control; no answer.
    Shed,
}

impl<T> Outcome<T> {
    /// The carried answer, if any.
    pub fn value(&self) -> Option<&T> {
        match self {
            Outcome::Fresh(v) | Outcome::Cached(v) | Outcome::Stale(v) | Outcome::Degraded(v) => {
                Some(v)
            }
            Outcome::Shed => None,
        }
    }

    /// Whether the request was shed.
    pub fn is_shed(&self) -> bool {
        matches!(self, Outcome::Shed)
    }
}

/// A served query: the outcome plus the sim-time latency it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Served<T> {
    /// What was answered and how.
    pub outcome: Outcome<T>,
    /// End-to-end sim-time latency (0 for shed requests).
    pub latency: SimDuration,
}

/// Outcome of submitting one inference request.
#[derive(Debug, Clone, PartialEq)]
pub enum InferSubmit {
    /// Served immediately from the inference cache.
    Cached {
        /// Output row.
        output: Vec<f32>,
        /// Latency charged ([`CACHE_HIT_COST`]).
        latency: SimDuration,
    },
    /// Served from an expired cache entry (degraded answer under
    /// overload or outage).
    Stale {
        /// Output row (from the expired entry).
        output: Vec<f32>,
        /// Latency charged ([`CACHE_HIT_COST`]).
        latency: SimDuration,
    },
    /// Queued for the next micro-batch; redeem the ticket from
    /// [`Server::tick`] completions.
    Pending(ReqId),
    /// Rejected by admission control with nothing cached to fall back on.
    Shed,
}

/// One inference completion delivered by [`Server::tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferCompletion {
    /// Ticket returned at submit time.
    pub req: ReqId,
    /// Output row.
    pub output: Vec<f32>,
    /// End-to-end sim-time latency: queue wait + batch residency.
    pub latency: SimDuration,
}

/// Counter snapshot for one server.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Requests seen (queries + gets + inference submissions).
    pub requests: u64,
    /// Answers served from a valid cache entry.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Reads redirected from a down primary to a live replica.
    pub reroutes: u64,
    /// Answers served stale (TTL or generation ignored) during outages.
    pub stale_served: u64,
    /// Partial (degraded) answers.
    pub degraded: u64,
    /// Acknowledged writes.
    pub writes: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Distinct rows across all flushed micro-batches.
    pub batched_rows: u64,
    /// Inference requests coalesced onto an identical pending row.
    pub coalesced: u64,
    /// Documents moved by shard add/remove rebalancing.
    pub rebalance_moves: u64,
}

impl ServeStats {
    /// Cache hits over cache lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Shed requests over all requests (0 when none).
    pub fn shed_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    /// Mean distinct rows per flushed micro-batch (0 when none flushed).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_rows as f64 / self.batches as f64
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    collection: Collection,
    /// Per-shard `DocId` → serving key, for mapping fan-out hits back.
    keys: BTreeMap<DocId, String>,
}

/// The sharded, cached, batched serving front end. See the module docs.
///
/// # Examples
///
/// ```
/// use scserve::{Outcome, ServeConfig, Server};
/// use scnosql::document::{Doc, Filter};
/// use simclock::SimTime;
///
/// let mut s = Server::new(ServeConfig::default());
/// s.put("cam-1", Doc::object([("kind", Doc::Str("camera".into()))]), SimTime::ZERO).unwrap();
/// let q = Filter::Eq("kind".into(), Doc::Str("camera".into()));
/// let first = s.query(&q, SimTime::from_millis(1)).unwrap();
/// assert!(matches!(first.outcome, Outcome::Fresh(_)));
/// let second = s.query(&q, SimTime::from_millis(2)).unwrap();
/// assert!(matches!(second.outcome, Outcome::Cached(_)));
/// ```
#[derive(Debug)]
pub struct Server {
    cfg: ServeConfig,
    map: ShardMap,
    shards: BTreeMap<u32, Shard>,
    /// key → `(shard, doc id)` replica placements, ring order.
    directory: BTreeMap<String, Vec<(u32, DocId)>>,
    model: Option<Sequential>,
    ctx: ExecCtx,
    query_cache: QueryCache<Rows>,
    infer_cache: InferenceCache,
    batcher: MicroBatcher,
    bucket: TokenBucket,
    queue: ServiceQueue,
    breaker: CircuitBreaker,
    telemetry: TelemetryHandle,
    outages: Option<OutageWindows>,
    generation: u64,
    /// Pending inference bookkeeping: request → (submitted, queue wait,
    /// causal context).
    waiting: BTreeMap<u64, (SimTime, SimDuration, SpanContext)>,
    /// Seed for deterministic trace-id derivation.
    trace_seed: u64,
    /// Monotone request sequence number feeding trace-id derivation.
    req_seq: u64,
    stats: ServeStats,
}

impl Server {
    /// A server with `cfg.shards` empty shards and no model.
    pub fn new(cfg: ServeConfig) -> Self {
        let map = ShardMap::with_nodes(cfg.shards, cfg.vnodes);
        let shards = (0..cfg.shards).map(|n| (n, Shard::default())).collect();
        Server {
            map,
            shards,
            directory: BTreeMap::new(),
            model: None,
            ctx: ExecCtx::serial(),
            query_cache: QueryCache::new(cfg.query_cache),
            infer_cache: InferenceCache::new(cfg.infer_cache),
            batcher: MicroBatcher::new(cfg.batch),
            bucket: TokenBucket::new(cfg.rate_per_s, cfg.burst),
            queue: ServiceQueue::new(cfg.service_rate, cfg.queue_capacity),
            breaker: CircuitBreaker::new(cfg.breaker_failures, cfg.breaker_reset),
            telemetry: TelemetryHandle::disabled(),
            outages: None,
            generation: 0,
            waiting: BTreeMap::new(),
            trace_seed: 0,
            req_seq: 0,
            stats: ServeStats::default(),
            cfg,
        }
    }

    /// Attaches the inference model served by [`Server::infer`]. Swapping
    /// models clears the inference cache — outputs of the old model must
    /// not answer for the new one — and retunes the micro-batcher for the
    /// new model's size.
    pub fn with_model(mut self, model: Sequential) -> Self {
        self.infer_cache.clear();
        self.model = Some(model);
        self.retune_batcher();
        self
    }

    /// Sets the execution context used for batched inference (worker
    /// pool, telemetry, SIMD ISA selection, and tuning). When the context
    /// carries an enabled [`sctune::Tuner`], the micro-batcher's
    /// `max_batch` is retuned for the attached model.
    pub fn with_ctx(mut self, ctx: ExecCtx) -> Self {
        self.ctx = ctx;
        self.retune_batcher();
        self
    }

    /// Re-applies the tuned `micro_batch` decision (keyed on the model's
    /// parameter count) to the batcher, falling back to the configured
    /// `max_batch`. No-op unless the context's tuner is enabled and a
    /// model is attached.
    fn retune_batcher(&mut self) {
        if !self.ctx.tuner().is_enabled() {
            return;
        }
        let Some(model) = self.model.as_ref() else {
            return;
        };
        let tuned = self
            .ctx
            .tuner()
            .micro_batch_max_batch(model.param_count(), self.cfg.batch.max_batch);
        self.batcher.set_max_batch(tuned);
    }

    /// Sets the worker-pool configuration used for batched inference.
    #[deprecated(since = "0.2.0", note = "use `with_ctx(ExecCtx)` instead")]
    pub fn with_par(mut self, par: ScparConfig) -> Self {
        self.ctx = self.ctx.with_par(par);
        self
    }

    // ------------------------------------------------------------------
    // Runtime reconfiguration (the autoscaler's knobs)
    // ------------------------------------------------------------------

    /// Replaces the execution context in place (mid-run pool resize).
    /// Because scpar results are bit-identical at any worker count, this
    /// only changes *how fast wall-clock work happens*, never an answer;
    /// the micro-batcher is retuned exactly as in [`Server::with_ctx`].
    pub fn set_ctx(&mut self, ctx: ExecCtx) {
        self.ctx = ctx;
        self.retune_batcher();
    }

    /// Reconfigures the token bucket in place — admission-control
    /// shedding, tightened by an autoscaler that has run out of capacity
    /// to add and restored once the burn subsides. Tokens accrued so far
    /// refill at the old rate up to `now`.
    pub fn set_rate_limit(&mut self, rate_per_s: f64, burst: f64, now: SimTime) {
        self.bucket.set_rate(rate_per_s, burst, now);
    }

    /// Reconfigures the backend drain rate in place — the capacity knob
    /// that follows shard adds/removes and pool resizes. Queued work
    /// drains at the old rate up to `now`; the backlog carries over.
    pub fn set_service_rate(&mut self, service_rate: f64, now: SimTime) {
        self.queue.set_rate(service_rate, now);
    }

    /// The configured backend drain rate, requests per sim-second.
    pub fn service_rate(&self) -> f64 {
        self.queue.rate()
    }

    /// Shard node ids currently on the ring, ascending.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.map.nodes().collect()
    }

    /// Attaches a telemetry handle; all `scserve_*` metrics flow to it.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the seed from which request trace ids are derived
    /// (`TraceId::derive(seed, STREAM_SERVE, request_index)`); the same
    /// seed names the same traces at any thread count.
    pub fn with_trace_seed(mut self, seed: u64) -> Self {
        self.trace_seed = seed;
        self
    }

    /// Subjects the shard fleet to `plan`'s node-crash windows: shard `n`
    /// is considered down while fault node `n` is crashed.
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Self {
        self.outages = Some(OutageWindows::node_crashes(plan));
        self
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// The routing map (read-only view).
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Whether an inference model is attached.
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// Keys currently stored.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    fn shard_down(&self, shard: u32, now: SimTime) -> bool {
        self.outages.as_ref().is_some_and(|w| w.is_down(shard, now))
    }

    fn effective_replicas(&self) -> usize {
        self.cfg.replicas.clamp(1, self.map.len().max(1))
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Inserts or replaces the document stored under `key` on every
    /// replica shard, then invalidates the query cache (generation bump)
    /// before acknowledging.
    ///
    /// # Errors
    ///
    /// Propagates [`NosqlError`] for invalid documents; nothing is stored
    /// and no invalidation happens on error.
    pub fn put(&mut self, key: &str, doc: Doc, now: SimTime) -> Result<(), NosqlError> {
        // Replica writes apply the same doc, so a validation failure hits
        // the first replica before anything is stored — no partial writes.
        if let Some(existing) = self.directory.get(key).cloned() {
            // Replace: update in place on each replica.
            for (node, id) in &existing {
                let shard = self.shards.get_mut(node).expect("directory is consistent");
                shard.collection.update(*id, doc.clone())?;
            }
        } else {
            let nodes = self
                .map
                .route_replicas(key.as_bytes(), self.effective_replicas());
            let mut placements = Vec::with_capacity(nodes.len());
            for node in nodes {
                let shard = self.shards.get_mut(&node).expect("ring nodes have shards");
                let id = shard.collection.insert(doc.clone())?;
                shard.keys.insert(id, key.to_string());
                placements.push((node, id));
            }
            self.directory.insert(key.to_string(), placements);
        }
        self.generation += 1;
        self.stats.writes += 1;
        self.telemetry
            .counter_inc("scserve_writes_total", "acknowledged serving-tier writes");
        let ctx = self.next_ctx();
        self.trace_request("request/put", now, now + CACHE_HIT_COST, ctx, |_| {});
        Ok(())
    }

    /// Removes `key` from every replica; returns whether it existed.
    /// Like [`Server::put`], this invalidates the query cache.
    pub fn remove_key(&mut self, key: &str, now: SimTime) -> bool {
        let Some(placements) = self.directory.remove(key) else {
            return false;
        };
        for (node, id) in placements {
            if let Some(shard) = self.shards.get_mut(&node) {
                shard.collection.remove(id);
                shard.keys.remove(&id);
            }
        }
        self.generation += 1;
        self.stats.writes += 1;
        self.telemetry
            .counter_inc("scserve_writes_total", "acknowledged serving-tier writes");
        let ctx = self.next_ctx();
        self.trace_request("request/put", now, now + CACHE_HIT_COST, ctx, |_| {});
        true
    }

    // ------------------------------------------------------------------
    // Admission
    // ------------------------------------------------------------------

    fn shed(&mut self) {
        self.stats.shed += 1;
        self.telemetry.counter_inc(
            "scserve_shed_total",
            "requests rejected by admission control",
        );
    }

    /// Rate-limit gate shared by every read path.
    fn rate_gate(&mut self, now: SimTime) -> bool {
        self.stats.requests += 1;
        self.telemetry
            .counter_inc("scserve_requests_total", "serving requests received");
        self.telemetry.work(KERNEL_ADMISSION, WorkDelta::items(1));
        self.bucket.try_acquire(now)
    }

    /// Queue gate for cache misses; records the wait histogram.
    fn queue_gate(&mut self, now: SimTime) -> Option<SimDuration> {
        match self.queue.offer(now) {
            Admission::Admitted { wait } => {
                self.telemetry.observe(
                    "scserve_queue_wait_seconds",
                    "queue wait ahead of admitted backend requests",
                    wait.as_secs_f64(),
                );
                Some(wait)
            }
            Admission::Shed => None,
        }
    }

    fn note_hit(&mut self) {
        self.stats.cache_hits += 1;
        self.telemetry
            .counter_inc("scserve_cache_hit_total", "answers served from cache");
        self.telemetry
            .work(KERNEL_CACHE, WorkDelta::items(1).with_cache(1, 0));
    }

    fn note_miss(&mut self) {
        self.stats.cache_misses += 1;
        self.telemetry
            .counter_inc("scserve_cache_miss_total", "cache lookups that missed");
        self.telemetry
            .work(KERNEL_CACHE, WorkDelta::items(1).with_cache(0, 1));
    }

    fn note_stale(&mut self) {
        self.stats.stale_served += 1;
        self.telemetry.counter_inc(
            "scserve_stale_served_total",
            "degraded answers served from expired cache entries",
        );
        self.telemetry
            .work(KERNEL_CACHE, WorkDelta::items(1).with_cache(1, 0));
    }

    // ------------------------------------------------------------------
    // Causal tracing
    // ------------------------------------------------------------------

    /// Derives the root context of the next request trace. Pure
    /// arithmetic on the `(seed, sequence)` pair, so it costs the same
    /// (a few ns, no allocation) whether or not telemetry is attached.
    fn next_ctx(&mut self) -> SpanContext {
        let ctx = SpanContext::root(TraceId::derive(self.trace_seed, STREAM_SERVE, self.req_seq));
        self.req_seq += 1;
        ctx
    }

    /// Records a complete request span tree rooted at `ctx`. The
    /// `children` closure runs only when telemetry is enabled, so child
    /// names (which may format shard ids) are never materialized on the
    /// disabled path.
    fn trace_request<F>(
        &self,
        name: &str,
        start: SimTime,
        end: SimTime,
        ctx: SpanContext,
        children: F,
    ) where
        F: FnOnce(&mut SpanGuard<'_>),
    {
        if !self.telemetry.is_enabled() {
            return;
        }
        let mut guard = self.telemetry.span_guard("scserve", name, start, ctx);
        children(&mut guard);
        guard.finish(end);
    }

    /// Marks `ctx`'s request as shed with no answer: a zero-length root
    /// span (the trace stays complete) plus a `request/shed` event whose
    /// detail carries the trace id for SLO availability accounting.
    fn trace_shed(&self, now: SimTime, ctx: SpanContext) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .span_in("scserve", "request/shed", now, now, ctx);
        self.telemetry.event(
            "scserve",
            "request/shed",
            now,
            &format!("trace={}", ctx.trace.as_hex()),
        );
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Point lookup by serving key.
    ///
    /// Walks the key's replicas in ring order, skipping shards that are
    /// down under the injected fault plan (counting a reroute when the
    /// primary is skipped). With every replica down, falls back to the
    /// stale cache, then to a degraded empty answer.
    ///
    /// # Errors
    ///
    /// This path performs no filter evaluation and cannot fail; the
    /// `Result` mirrors [`Server::query`] for a uniform calling shape.
    pub fn get(&mut self, key: &str, now: SimTime) -> Result<Served<Option<Doc>>, NosqlError> {
        let ctx = self.next_ctx();
        if !self.rate_gate(now) {
            self.shed();
            self.trace_shed(now, ctx);
            return Ok(Served {
                outcome: Outcome::Shed,
                latency: SimDuration::ZERO,
            });
        }
        let fp = hash_bytes(format!("get:{key}").as_bytes());
        if let Some((gen, rows)) = self.query_cache.get(&fp, now) {
            if gen == self.generation {
                self.note_hit();
                self.trace_request("request/get", now, now + CACHE_HIT_COST, ctx, |g| {
                    g.child_span("cache/hit", now, now + CACHE_HIT_COST);
                });
                return Ok(Served {
                    outcome: Outcome::Cached(rows.first().map(|(_, d)| d.clone())),
                    latency: CACHE_HIT_COST,
                });
            }
        }
        self.note_miss();
        let Some(wait) = self.queue_gate(now) else {
            self.shed();
            return Ok(self.stale_get(fp, now, ctx));
        };
        if !self.breaker.allow(now) {
            return Ok(self.stale_get(fp, now, ctx));
        }
        let placements = self.directory.get(key).cloned().unwrap_or_default();
        let mut chosen: Option<(u32, DocId)> = None;
        for (i, (node, id)) in placements.iter().enumerate() {
            if !self.shard_down(*node, now) {
                if i > 0 {
                    self.stats.reroutes += 1;
                    self.telemetry.counter_inc(
                        "scserve_reroute_total",
                        "reads redirected from a down primary to a live replica",
                    );
                }
                chosen = Some((*node, *id));
                break;
            }
        }
        match chosen {
            Some((node, id)) => {
                self.breaker.record_success();
                let doc = self.shards[&node].collection.get(id).cloned();
                let rows: Rows = doc.iter().map(|d| (key.to_string(), d.clone())).collect();
                self.query_cache.insert(fp, (self.generation, rows), now);
                let latency = wait + self.queue.service_time();
                self.trace_request("request/get", now, now + latency, ctx, |g| {
                    g.child_span("admission/queue", now, now + wait);
                    g.child_span(&format!("backend/shard-{node}"), now + wait, now + latency);
                });
                Ok(Served {
                    outcome: Outcome::Fresh(doc),
                    latency,
                })
            }
            None if placements.is_empty() => {
                // Key simply does not exist; an authoritative miss.
                self.breaker.record_success();
                self.query_cache
                    .insert(fp, (self.generation, Vec::new()), now);
                let latency = wait + self.queue.service_time();
                self.trace_request("request/get", now, now + latency, ctx, |g| {
                    g.child_span("admission/queue", now, now + wait);
                    g.child_span("backend/lookup", now + wait, now + latency);
                });
                Ok(Served {
                    outcome: Outcome::Fresh(None),
                    latency,
                })
            }
            None => {
                self.breaker.record_failure(now);
                Ok(self.stale_get(fp, now, ctx))
            }
        }
    }

    fn stale_get(&mut self, fp: u64, now: SimTime, ctx: SpanContext) -> Served<Option<Doc>> {
        match self.query_cache.peek_ignore_ttl(&fp) {
            Some((_, rows)) => {
                self.note_stale();
                self.trace_request("request/get", now, now + CACHE_HIT_COST, ctx, |g| {
                    g.child_span("cache/stale", now, now + CACHE_HIT_COST);
                });
                Served {
                    outcome: Outcome::Stale(rows.first().map(|(_, d)| d.clone())),
                    latency: CACHE_HIT_COST,
                }
            }
            None => {
                self.stats.degraded += 1;
                self.telemetry.counter_inc(
                    "scserve_degraded_total",
                    "partial or empty degraded answers",
                );
                self.trace_request("request/get", now, now + CACHE_HIT_COST, ctx, |g| {
                    g.child_span("degraded", now, now + CACHE_HIT_COST);
                });
                Served {
                    outcome: Outcome::Degraded(None),
                    latency: CACHE_HIT_COST,
                }
            }
        }
    }

    /// Filter query fanned out across the shard fleet.
    ///
    /// Results are `(key, document)` pairs in key order, each key
    /// answered by its first *live* replica (deduplicating the copies).
    /// Complete answers are cached under the current generation; answers
    /// with unreachable keys are `Degraded` (or `Stale` when a prior
    /// cached answer exists) and are never cached.
    ///
    /// # Errors
    ///
    /// Propagates filter validation failures ([`NosqlError`]) from the
    /// underlying collections.
    pub fn query(&mut self, filter: &Filter, now: SimTime) -> Result<Served<Rows>, NosqlError> {
        let ctx = self.next_ctx();
        if !self.rate_gate(now) {
            self.shed();
            self.trace_shed(now, ctx);
            return Ok(Served {
                outcome: Outcome::Shed,
                latency: SimDuration::ZERO,
            });
        }
        let fp = hash_bytes(format!("query:{filter:?}").as_bytes());
        if let Some((gen, rows)) = self.query_cache.get(&fp, now) {
            if gen == self.generation {
                self.note_hit();
                self.trace_request("request/query", now, now + CACHE_HIT_COST, ctx, |g| {
                    g.child_span("cache/hit", now, now + CACHE_HIT_COST);
                });
                return Ok(Served {
                    outcome: Outcome::Cached(rows),
                    latency: CACHE_HIT_COST,
                });
            }
        }
        self.note_miss();
        let Some(wait) = self.queue_gate(now) else {
            self.shed();
            return Ok(self.stale_query(fp, now, ctx));
        };
        if !self.breaker.allow(now) {
            return Ok(self.stale_query(fp, now, ctx));
        }

        // Canonical owner per key: its first live replica. Keys with no
        // live replica make the answer degraded.
        let mut owner: BTreeMap<&str, u32> = BTreeMap::new();
        let mut unreachable = 0usize;
        let mut rerouted = 0u64;
        for (key, placements) in &self.directory {
            match placements
                .iter()
                .enumerate()
                .find(|(_, (node, _))| !self.shard_down(*node, now))
            {
                Some((i, (node, _))) => {
                    if i > 0 {
                        rerouted += 1;
                    }
                    owner.insert(key.as_str(), *node);
                }
                None => unreachable += 1,
            }
        }
        if rerouted > 0 {
            self.stats.reroutes += rerouted;
            self.telemetry.counter_add(
                "scserve_reroute_total",
                "reads redirected from a down primary to a live replica",
                rerouted,
            );
        }

        let mut rows: Rows = Vec::new();
        for (&node, shard) in &self.shards {
            if self.shard_down(node, now) {
                continue;
            }
            for (id, doc) in shard.collection.find(filter)? {
                let key = shard.keys.get(&id).expect("every doc has a serving key");
                if owner.get(key.as_str()) == Some(&node) {
                    rows.push((key.clone(), doc.clone()));
                }
            }
        }
        rows.sort_by(|(a, _), (b, _)| a.cmp(b));

        if unreachable > 0 {
            self.breaker.record_failure(now);
            self.stats.degraded += 1;
            self.telemetry.counter_inc(
                "scserve_degraded_total",
                "partial or empty degraded answers",
            );
            // Prefer a complete-but-stale cached answer over a fresh
            // partial one.
            if let Some((_, cached)) = self.query_cache.peek_ignore_ttl(&fp) {
                self.note_stale();
                self.trace_request("request/query", now, now + CACHE_HIT_COST, ctx, |g| {
                    g.child_span("cache/stale", now, now + CACHE_HIT_COST);
                });
                return Ok(Served {
                    outcome: Outcome::Stale(cached),
                    latency: CACHE_HIT_COST,
                });
            }
            let latency = wait + self.queue.service_time();
            self.trace_request("request/query", now, now + latency, ctx, |g| {
                g.child_span("admission/queue", now, now + wait);
                g.child_span("backend/query", now + wait, now + latency);
            });
            return Ok(Served {
                outcome: Outcome::Degraded(rows),
                latency,
            });
        }
        self.breaker.record_success();
        self.query_cache
            .insert(fp, (self.generation, rows.clone()), now);
        let latency = wait + self.queue.service_time();
        self.trace_request("request/query", now, now + latency, ctx, |g| {
            g.child_span("admission/queue", now, now + wait);
            g.child_span("backend/query", now + wait, now + latency);
        });
        Ok(Served {
            outcome: Outcome::Fresh(rows),
            latency,
        })
    }

    fn stale_query(&mut self, fp: u64, now: SimTime, ctx: SpanContext) -> Served<Rows> {
        match self.query_cache.peek_ignore_ttl(&fp) {
            Some((_, rows)) => {
                self.note_stale();
                self.trace_request("request/query", now, now + CACHE_HIT_COST, ctx, |g| {
                    g.child_span("cache/stale", now, now + CACHE_HIT_COST);
                });
                Served {
                    outcome: Outcome::Stale(rows),
                    latency: CACHE_HIT_COST,
                }
            }
            None => {
                self.trace_shed(now, ctx);
                Served {
                    outcome: Outcome::Shed,
                    latency: SimDuration::ZERO,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Inference path
    // ------------------------------------------------------------------

    /// Submits one feature row for inference.
    ///
    /// Cache hit → answered immediately; miss → coalesced into the
    /// pending micro-batch (redeem the ticket from [`Server::tick`]).
    /// Admission failures fall back to an expired cache entry when one
    /// exists (the degraded answer), else shed.
    ///
    /// # Panics
    ///
    /// Panics if no model was attached via [`Server::with_model`].
    pub fn infer(&mut self, row: Vec<f32>, now: SimTime) -> InferSubmit {
        assert!(self.model.is_some(), "Server::infer requires a model");
        let ctx = self.next_ctx();
        let fp = row_fingerprint(&row);
        if !self.rate_gate(now) {
            self.shed();
            return self.stale_infer(fp, now, ctx);
        }
        if let Some(output) = self.infer_cache.get(&fp, now) {
            self.note_hit();
            self.trace_request("request/infer", now, now + CACHE_HIT_COST, ctx, |g| {
                g.child_span("cache/hit", now, now + CACHE_HIT_COST);
            });
            return InferSubmit::Cached {
                output,
                latency: CACHE_HIT_COST,
            };
        }
        self.note_miss();
        let Some(wait) = self.queue_gate(now) else {
            self.shed();
            return self.stale_infer(fp, now, ctx);
        };
        let req = self.batcher.submit(row, now);
        self.waiting.insert(req.0, (now, wait, ctx));
        InferSubmit::Pending(req)
    }

    fn stale_infer(&mut self, fp: u64, now: SimTime, ctx: SpanContext) -> InferSubmit {
        match self.infer_cache.peek_ignore_ttl(&fp) {
            Some(output) => {
                self.note_stale();
                self.trace_request("request/infer", now, now + CACHE_HIT_COST, ctx, |g| {
                    g.child_span("cache/stale", now, now + CACHE_HIT_COST);
                });
                InferSubmit::Stale {
                    output,
                    latency: CACHE_HIT_COST,
                }
            }
            None => {
                self.trace_shed(now, ctx);
                InferSubmit::Shed
            }
        }
    }

    /// Advances the batcher to `now`: flushes if either batching knob
    /// fired and returns the completions. Call this whenever sim-time
    /// advances past [`Server::next_deadline`].
    pub fn tick(&mut self, now: SimTime) -> Vec<InferCompletion> {
        if !self.batcher.due(now) {
            return Vec::new();
        }
        self.flush(now)
    }

    /// Force-flushes any pending micro-batch (end-of-run drain).
    pub fn drain(&mut self, now: SimTime) -> Vec<InferCompletion> {
        self.flush(now)
    }

    /// The sim-time at which the pending batch's delay knob fires.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.batcher.next_deadline()
    }

    fn flush(&mut self, now: SimTime) -> Vec<InferCompletion> {
        let Some(model) = self.model.as_ref() else {
            return Vec::new(); // nothing can be pending without a model
        };
        let Some(batch) = self.batcher.flush_now(model, &self.ctx, now) else {
            return Vec::new();
        };
        self.stats.batches += 1;
        self.stats.batched_rows += batch.batch_size as u64;
        let (_, coalesced) = self.batcher.stats();
        self.stats.coalesced = coalesced;
        self.telemetry
            .counter_inc("scserve_batches_total", "micro-batches flushed");
        self.telemetry.observe_exact(
            "scserve_batch_size",
            "distinct rows per flushed micro-batch",
            batch.batch_size as f64,
        );
        if self.telemetry.is_enabled() {
            // Batch composition is a function of the arrival sequence only,
            // so this delta is deterministic. Model flops are attributed by
            // the model's own handle, not double-counted here.
            let out_bytes: u64 = batch.distinct.iter().map(|(_, o)| o.len() as u64 * 4).sum();
            self.telemetry.work(
                KERNEL_BATCHER,
                WorkDelta::items(batch.requests as u64).with_bytes(out_bytes),
            );
        }
        for (fp, out) in &batch.distinct {
            self.infer_cache.insert(*fp, out.clone(), now);
        }
        let layer_names = self
            .model
            .as_ref()
            .map(|m| m.layer_names())
            .unwrap_or_default();
        let mut completions = Vec::with_capacity(batch.outputs.len());
        for (req, output) in batch.outputs {
            let (submitted, wait, ctx) = self
                .waiting
                .remove(&req.0)
                .expect("every batched request was registered");
            let service = self.queue.service_time();
            let latency = now.saturating_since(submitted) + wait + service;
            if self.telemetry.is_enabled() {
                // request/infer = batch wait + queue wait + per-layer
                // forward; children partition [submitted, submitted+latency].
                let mut g = self
                    .telemetry
                    .span_guard("scserve", "request/infer", submitted, ctx);
                g.child_span("batch/wait", submitted, now);
                g.child_span("admission/queue", now, now + wait);
                let fwd_ctx = g.child_ctx();
                let fwd_start = now + wait;
                let fwd_end = fwd_start + service;
                let mut fg =
                    self.telemetry
                        .span_guard("scserve", "model/forward", fwd_start, fwd_ctx);
                let layers = layer_names.len() as u64;
                // Equal per-layer slices; the last absorbs rounding.
                if let Some(micros) = service.as_micros().checked_div(layers) {
                    let slice = SimDuration::from_micros(micros);
                    for (i, name) in layer_names.iter().enumerate() {
                        let s = fwd_start + SimDuration::from_micros(slice.as_micros() * i as u64);
                        let e = if i as u64 == layers - 1 {
                            fwd_end
                        } else {
                            s + slice
                        };
                        fg.child_span(&format!("layer/{i}-{name}"), s, e);
                    }
                }
                fg.finish(fwd_end);
                g.finish(fwd_end);
            }
            completions.push(InferCompletion {
                req,
                output,
                latency,
            });
        }
        completions
    }

    // ------------------------------------------------------------------
    // Rebalancing
    // ------------------------------------------------------------------

    /// Adds a shard node and rebalances: only keys whose replica set
    /// changed move, per the consistent-hash minimal-movement property.
    /// Returns the number of document copies moved.
    pub fn add_shard(&mut self, node: u32) -> usize {
        if self.map.contains(node) {
            return 0;
        }
        self.map.add_node(node);
        self.shards.entry(node).or_default();
        self.rebalance()
    }

    /// Removes a shard node, migrating its document copies to the new
    /// replica owners first. Returns the number of copies moved.
    pub fn remove_shard(&mut self, node: u32) -> usize {
        if !self.map.contains(node) {
            return 0;
        }
        self.map.remove_node(node);
        let moves = self.rebalance();
        let drained = self.shards.remove(&node);
        debug_assert!(
            drained.is_none_or(|s| s.collection.is_empty()),
            "rebalance must empty a removed shard"
        );
        moves
    }

    fn rebalance(&mut self) -> usize {
        let replicas = self.effective_replicas();
        let keys: Vec<String> = self.directory.keys().cloned().collect();
        let mut moves = 0usize;
        for key in keys {
            let old = self.directory.get(&key).cloned().expect("key listed");
            let new_nodes = self.map.route_replicas(key.as_bytes(), replicas);
            let old_nodes: Vec<u32> = old.iter().map(|(n, _)| *n).collect();
            if old_nodes == new_nodes {
                continue;
            }
            let doc = old
                .iter()
                .find_map(|(n, id)| self.shards.get(n).and_then(|s| s.collection.get(*id)))
                .cloned()
                .expect("at least one replica still holds the doc");
            let mut placements = Vec::with_capacity(new_nodes.len());
            for node in &new_nodes {
                match old.iter().find(|(n, _)| n == node) {
                    Some(&(n, id)) => placements.push((n, id)),
                    None => {
                        let shard = self.shards.get_mut(node).expect("ring nodes have shards");
                        let id = shard
                            .collection
                            .insert(doc.clone())
                            .expect("stored docs are always valid");
                        shard.keys.insert(id, key.clone());
                        placements.push((*node, id));
                        moves += 1;
                    }
                }
            }
            for (node, id) in &old {
                if !new_nodes.contains(node) {
                    if let Some(shard) = self.shards.get_mut(node) {
                        shard.collection.remove(*id);
                        shard.keys.remove(id);
                        moves += 1;
                    }
                }
            }
            self.directory.insert(key, placements);
        }
        self.stats.rebalance_moves += moves as u64;
        self.telemetry.counter_add(
            "scserve_rebalance_moves_total",
            "document copies moved by shard add/remove rebalancing",
            moves as u64,
        );
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfault::{FaultKind, FaultPlan};
    use scneural::layers::{Dense, Relu};

    fn doc(kind: &str, v: i64) -> Doc {
        Doc::object([("kind", Doc::Str(kind.into())), ("v", Doc::I64(v))])
    }

    fn seeded_server(cfg: ServeConfig) -> Server {
        let mut s = Server::new(cfg);
        for i in 0..20 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            s.put(&format!("k-{i:03}"), doc(kind, i), SimTime::ZERO)
                .unwrap();
        }
        s
    }

    #[test]
    fn put_get_round_trips() {
        let mut s = seeded_server(ServeConfig::default());
        let got = s.get("k-003", SimTime::from_millis(1)).unwrap();
        assert!(matches!(&got.outcome, Outcome::Fresh(Some(d)) if d == &doc("odd", 3)));
        let missing = s.get("nope", SimTime::from_millis(2)).unwrap();
        assert!(matches!(missing.outcome, Outcome::Fresh(None)));
    }

    #[test]
    fn query_caches_and_write_invalidates() {
        let mut s = seeded_server(ServeConfig::default());
        let f = Filter::Eq("kind".into(), Doc::Str("even".into()));
        let first = s.query(&f, SimTime::from_millis(1)).unwrap();
        let Outcome::Fresh(rows) = &first.outcome else {
            panic!("cold query must be fresh")
        };
        assert_eq!(rows.len(), 10);
        let second = s.query(&f, SimTime::from_millis(2)).unwrap();
        assert!(matches!(second.outcome, Outcome::Cached(_)));
        assert!(second.latency < first.latency);

        s.put("k-100", doc("even", 100), SimTime::from_millis(3))
            .unwrap();
        let third = s.query(&f, SimTime::from_millis(4)).unwrap();
        let Outcome::Fresh(rows) = &third.outcome else {
            panic!("a write must invalidate the cached answer")
        };
        assert_eq!(rows.len(), 11);
    }

    #[test]
    fn replicas_land_on_distinct_shards() {
        let s = seeded_server(ServeConfig::default());
        for placements in s.directory.values() {
            assert_eq!(placements.len(), 2);
            assert_ne!(placements[0].0, placements[1].0);
        }
    }

    #[test]
    fn outage_reroutes_then_serves_stale() {
        let cfg = ServeConfig {
            replicas: 1, // single replica so a crash makes keys unreachable
            ..ServeConfig::default()
        };
        let mut s = seeded_server(cfg);
        let f = Filter::Eq("kind".into(), Doc::Str("odd".into()));
        // Warm the cache while everything is healthy.
        let warm = s.query(&f, SimTime::from_millis(1)).unwrap();
        assert!(matches!(warm.outcome, Outcome::Fresh(_)));

        // Crash shard 0 from t=1s to t=5s.
        let plan = FaultPlan::empty()
            .with_event(SimTime::from_secs(1), FaultKind::NodeCrash { node: 0 })
            .with_event(SimTime::from_secs(5), FaultKind::NodeRestart { node: 0 });
        s = s.with_fault_plan(&plan);

        // Cached answer still serves (generation unchanged).
        let hit = s.query(&f, SimTime::from_secs(2)).unwrap();
        assert!(matches!(hit.outcome, Outcome::Cached(_)));

        // A write invalidates; the re-query must now degrade to the stale
        // answer because shard 0's keys are unreachable.
        s.put("k-999", doc("odd", 999), SimTime::from_secs(2))
            .unwrap();
        let stale = s.query(&f, SimTime::from_secs(3)).unwrap();
        assert!(
            matches!(stale.outcome, Outcome::Stale(_)),
            "expected stale fallback, got {:?}",
            stale.outcome
        );
        assert!(s.stats().stale_served >= 1);

        // After restart the fresh (complete) answer returns.
        let fresh = s.query(&f, SimTime::from_secs(6)).unwrap();
        let Outcome::Fresh(rows) = &fresh.outcome else {
            panic!("restored shard must serve fresh")
        };
        assert_eq!(rows.len(), 11);
    }

    #[test]
    fn outage_with_replicas_reroutes_without_degrading() {
        let mut s = seeded_server(ServeConfig::default()); // 2 replicas
        let plan = FaultPlan::empty()
            .with_event(SimTime::from_secs(1), FaultKind::NodeCrash { node: 0 })
            .with_event(SimTime::from_secs(9), FaultKind::NodeRestart { node: 0 });
        s = s.with_fault_plan(&plan);
        let f = Filter::Eq("kind".into(), Doc::Str("even".into()));
        let served = s.query(&f, SimTime::from_secs(2)).unwrap();
        let Outcome::Fresh(rows) = &served.outcome else {
            panic!(
                "replicated keys survive a single crash: {:?}",
                served.outcome
            )
        };
        assert_eq!(rows.len(), 10);
        assert!(s.stats().reroutes > 0, "shard-0 primaries must reroute");
    }

    #[test]
    fn rate_limit_sheds() {
        let cfg = ServeConfig {
            rate_per_s: 10.0,
            burst: 2.0,
            ..ServeConfig::default()
        };
        let mut s = seeded_server(cfg);
        let mut sheds = 0;
        for _ in 0..10 {
            let served = s.get("k-001", SimTime::from_millis(1)).unwrap();
            if served.outcome.is_shed() || matches!(served.outcome, Outcome::Stale(_)) {
                sheds += 1;
            }
        }
        assert!(sheds >= 7, "burst of 2 admits few of 10 simultaneous gets");
        assert!(s.stats().shed >= 7);
        assert!(s.stats().shed_fraction() > 0.5);
    }

    #[test]
    fn inference_caches_and_batches() {
        let model = Sequential::new()
            .with(Dense::new(4, 8, 5))
            .with(Relu::new())
            .with(Dense::new(8, 2, 6));
        let mut s = Server::new(ServeConfig {
            batch: BatchConfig {
                max_batch: 2,
                max_delay: SimDuration::from_millis(5),
            },
            ..ServeConfig::default()
        })
        .with_model(model);

        let row = vec![0.1f32, 0.2, 0.3, 0.4];
        let sub = s.infer(row.clone(), SimTime::ZERO);
        let InferSubmit::Pending(req) = sub else {
            panic!("cold inference must queue")
        };
        assert!(s.tick(SimTime::from_millis(1)).is_empty(), "not due yet");
        let done = s.tick(SimTime::from_millis(5));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].req, req);
        assert!(done[0].latency >= SimDuration::from_millis(5));

        // Identical row now hits the inference cache.
        let hit = s.infer(row, SimTime::from_millis(6));
        assert!(matches!(hit, InferSubmit::Cached { .. }));
        assert_eq!(s.stats().batches, 1);
    }

    #[test]
    fn tuned_ctx_retunes_micro_batch() {
        let model = || {
            Sequential::new()
                .with(Dense::new(4, 8, 5))
                .with(Relu::new())
                .with(Dense::new(8, 2, 6))
        };
        let params = model().param_count();
        let mut table = sctune::TuningTable::empty();
        table.insert(sctune::TuneKey::micro_batch(params), 8);
        let tuner = sctune::Tuner::from_table(table);

        // Retunes whether the ctx or the model arrives last.
        let s = Server::new(ServeConfig::default())
            .with_ctx(ExecCtx::serial().with_tuner(tuner.clone()))
            .with_model(model());
        assert_eq!(s.batcher.config().max_batch, 8);
        let s = Server::new(ServeConfig::default())
            .with_model(model())
            .with_ctx(ExecCtx::serial().with_tuner(tuner));
        assert_eq!(s.batcher.config().max_batch, 8);

        // Disabled tuner leaves the configured knob alone.
        let s = Server::new(ServeConfig::default());
        assert_eq!(
            s.batcher.config().max_batch,
            BatchConfig::default().max_batch
        );
    }

    #[test]
    fn request_paths_record_complete_span_trees() {
        use sctelemetry::{Telemetry, TraceRecord};

        let telemetry = Telemetry::shared();
        let model = Sequential::new()
            .with(Dense::new(4, 8, 5))
            .with(Relu::new())
            .with(Dense::new(8, 2, 6));
        let mut s = Server::new(ServeConfig::default())
            .with_model(model)
            .with_telemetry(telemetry.handle())
            .with_trace_seed(42);
        s.put("k-1", doc("even", 1), SimTime::ZERO).unwrap();
        s.get("k-1", SimTime::from_millis(1)).unwrap(); // fresh
        s.get("k-1", SimTime::from_millis(2)).unwrap(); // cached
        let sub = s.infer(vec![0.1, 0.2, 0.3, 0.4], SimTime::from_millis(3));
        assert!(matches!(sub, InferSubmit::Pending(_)));
        s.drain(SimTime::from_millis(4));

        let records = telemetry.trace();
        let spans: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Span(sp) => Some(sp),
                _ => None,
            })
            .collect();
        assert!(
            spans.iter().all(|sp| sp.ctx.is_some()),
            "no context-less spans"
        );
        let roots: Vec<_> = spans
            .iter()
            .filter(|sp| sp.ctx.unwrap().parent.is_none())
            .collect();
        assert_eq!(roots.len(), 4, "put + 2 gets + infer, got {roots:#?}");
        // Distinct, deterministic trace ids.
        let ids: std::collections::BTreeSet<u64> =
            roots.iter().map(|sp| sp.ctx.unwrap().trace.0).collect();
        assert_eq!(ids.len(), 4);
        assert!(ids.contains(&TraceId::derive(42, STREAM_SERVE, 0).0));
        // The infer root carries per-layer forward grandchildren.
        let layer_spans = spans
            .iter()
            .filter(|sp| sp.name.starts_with("layer/"))
            .count();
        assert_eq!(layer_spans, 3, "Dense, Relu, Dense");
        // Fresh-get children partition the recorded latency exactly.
        let fresh_root = roots
            .iter()
            .find(|sp| sp.name == "request/get" && sp.start == SimTime::from_millis(1))
            .unwrap();
        let child_total: u64 = spans
            .iter()
            .filter(|sp| sp.ctx.unwrap().parent == Some(fresh_root.ctx.unwrap().span))
            .map(|sp| sp.end.saturating_since(sp.start).as_micros())
            .sum();
        assert_eq!(
            child_total,
            fresh_root
                .end
                .saturating_since(fresh_root.start)
                .as_micros()
        );
    }

    #[test]
    fn rate_limit_shed_marks_trace() {
        use sctelemetry::{Telemetry, TraceRecord};

        let telemetry = Telemetry::shared();
        let cfg = ServeConfig {
            rate_per_s: 10.0,
            burst: 1.0,
            ..ServeConfig::default()
        };
        let mut s = Server::new(cfg)
            .with_telemetry(telemetry.handle())
            .with_trace_seed(7);
        s.put("k", doc("even", 0), SimTime::ZERO).unwrap();
        for _ in 0..5 {
            s.get("k", SimTime::from_millis(1)).unwrap();
        }
        let records = telemetry.trace();
        let shed_events = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Event(e) if e.name == "request/shed"))
            .count();
        assert!(shed_events >= 3, "tight bucket must shed most requests");
        // Every shed event's detail names a recorded zero-length root.
        for r in &records {
            let TraceRecord::Event(e) = r else { continue };
            assert!(e.detail.starts_with("trace="), "detail: {}", e.detail);
        }
    }

    #[test]
    fn add_remove_shard_preserves_data_and_moves_little() {
        let mut s = seeded_server(ServeConfig::default());
        let f = Filter::Exists("kind".into());
        let before = s.query(&f, SimTime::from_millis(1)).unwrap();
        let before_rows = before.outcome.value().unwrap().clone();
        assert_eq!(before_rows.len(), 20);

        let moved_in = s.add_shard(10);
        // 20 keys × 2 replicas = 40 copies; a 1-of-5 node picks up ~1/5.
        assert!(
            moved_in < 40,
            "adding one node must not reshuffle everything"
        );
        let after_add = s.query(&f, SimTime::from_millis(2)).unwrap();
        assert_eq!(after_add.outcome.value().unwrap(), &before_rows);

        let moved_out = s.remove_shard(10);
        assert_eq!(moved_in, moved_out, "the node drains exactly what it took");
        let after_remove = s.query(&f, SimTime::from_millis(3)).unwrap();
        assert_eq!(after_remove.outcome.value().unwrap(), &before_rows);
        assert!(!s.shards.contains_key(&10));
    }
}
