//! Admission control: token-bucket rate limiting and a bounded service
//! queue with deterministic fluid drain.
//!
//! The ROADMAP's "millions of users" target means the serving tier must
//! fail *predictably* under overload: beyond saturation, extra demand is
//! shed at the door with a cheap degraded answer, while admitted requests
//! keep a bounded queue wait. Two gates implement that:
//!
//! 1. [`TokenBucket`] — a classic leaky/token bucket over sim-time.
//!    Refill is a pure function of elapsed sim-time, so identical request
//!    traces admit identical request subsets on every run.
//! 2. [`ServiceQueue`] — a fluid-model bounded queue: depth drains at
//!    `service_rate` requests per sim-second, an arrival that would push
//!    the depth past `capacity` is shed, and an admitted arrival's queue
//!    wait is `depth / service_rate`. The model is deliberately simple —
//!    deterministic M/D/1-style waits without an event scheduler — and
//!    yields the textbook overload knee: waits grow toward
//!    `capacity / service_rate` and then the *shed fraction*, not the
//!    latency, absorbs the excess (experiment E17).

use simclock::{SimDuration, SimTime};

/// A sim-time token bucket.
///
/// # Examples
///
/// ```
/// use scserve::TokenBucket;
/// use simclock::SimTime;
///
/// let mut tb = TokenBucket::new(10.0, 2.0); // 10 tokens/s, burst of 2
/// assert!(tb.try_acquire(SimTime::ZERO));
/// assert!(tb.try_acquire(SimTime::ZERO));
/// assert!(!tb.try_acquire(SimTime::ZERO), "burst exhausted");
/// assert!(tb.try_acquire(SimTime::from_millis(100)), "refilled 1 token");
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_s: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket refilling at `rate_per_s` with capacity `burst`
    /// (both clamped to be positive and finite).
    pub fn new(rate_per_s: f64, burst: f64) -> Self {
        let rate_per_s = if rate_per_s.is_finite() && rate_per_s > 0.0 {
            rate_per_s
        } else {
            1.0
        };
        let burst = if burst.is_finite() && burst >= 1.0 {
            burst
        } else {
            1.0
        };
        TokenBucket {
            rate_per_s,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_s).min(self.burst);
        self.last = now;
    }

    /// Takes one token if available. Calls must be non-decreasing in
    /// `now`; an out-of-order call refills nothing (never panics).
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Reconfigures the bucket in place — the admission-control knob an
    /// autoscaler turns to shed at the door. Tokens accrued so far refill
    /// at the *old* rate up to `now`, then clamp to the new burst, so a
    /// mid-run change never mints retroactive capacity.
    pub fn set_rate(&mut self, rate_per_s: f64, burst: f64, now: SimTime) {
        self.refill(now);
        self.rate_per_s = if rate_per_s.is_finite() && rate_per_s > 0.0 {
            rate_per_s
        } else {
            1.0
        };
        self.burst = if burst.is_finite() && burst >= 1.0 {
            burst
        } else {
            1.0
        };
        self.tokens = self.tokens.min(self.burst);
    }

    /// The configured refill rate, tokens per sim-second.
    pub fn rate_per_s(&self) -> f64 {
        self.rate_per_s
    }
}

/// Outcome of offering one request to a [`ServiceQueue`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Admitted; the request waits this long before service starts.
    Admitted {
        /// Queue wait ahead of this request.
        wait: SimDuration,
    },
    /// Rejected: the queue was full.
    Shed,
}

/// A bounded queue drained as a fluid at a fixed service rate.
#[derive(Debug, Clone)]
pub struct ServiceQueue {
    service_rate: f64,
    capacity: usize,
    depth: f64,
    last: SimTime,
    admitted: u64,
    shed: u64,
}

impl ServiceQueue {
    /// An empty queue serving `service_rate` requests per sim-second,
    /// holding at most `capacity` queued requests.
    pub fn new(service_rate: f64, capacity: usize) -> Self {
        let service_rate = if service_rate.is_finite() && service_rate > 0.0 {
            service_rate
        } else {
            1.0
        };
        ServiceQueue {
            service_rate,
            capacity: capacity.max(1),
            depth: 0.0,
            last: SimTime::ZERO,
            admitted: 0,
            shed: 0,
        }
    }

    fn drain(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.depth = (self.depth - dt * self.service_rate).max(0.0);
        self.last = now;
    }

    /// Offers one request at `now`: drains elapsed work, then either
    /// admits (returning the queue wait ahead of the request) or sheds.
    pub fn offer(&mut self, now: SimTime) -> Admission {
        self.drain(now);
        if self.depth + 1.0 > self.capacity as f64 {
            self.shed += 1;
            return Admission::Shed;
        }
        let wait = SimDuration::from_secs_f64(self.depth / self.service_rate);
        self.depth += 1.0;
        self.admitted += 1;
        Admission::Admitted { wait }
    }

    /// Current queued depth (after draining to `now`).
    pub fn depth(&mut self, now: SimTime) -> f64 {
        self.drain(now);
        self.depth
    }

    /// One request's service time, `1 / service_rate`.
    pub fn service_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.service_rate)
    }

    /// The longest possible queue wait, `capacity / service_rate` — the
    /// bound that keeps admitted p99 finite under any overload.
    pub fn max_wait(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.capacity as f64 / self.service_rate)
    }

    /// `(admitted, shed)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.admitted, self.shed)
    }

    /// The configured drain rate, requests per sim-second.
    pub fn rate(&self) -> f64 {
        self.service_rate
    }

    /// The configured queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reconfigures the drain rate in place — the capacity knob an
    /// autoscaler turns when shards or pool workers are added or removed.
    /// Work queued so far drains at the *old* rate up to `now`; the depth
    /// carries over, so a scale-up speeds the backlog from `now` on
    /// without rewriting history.
    pub fn set_rate(&mut self, service_rate: f64, now: SimTime) {
        self.drain(now);
        self.service_rate = if service_rate.is_finite() && service_rate > 0.0 {
            service_rate
        } else {
            1.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_rate() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        let mut admitted = 0;
        // 1000 arrivals over one second at 1 ms spacing: burst 10 + 100
        // refilled ⇒ about 110 admitted.
        for i in 0..1000u64 {
            if tb.try_acquire(SimTime::from_millis(i)) {
                admitted += 1;
            }
        }
        assert!((100..=120).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut tb = TokenBucket::new(1000.0, 5.0);
        assert!(tb.available(SimTime::from_secs(100)) <= 5.0);
    }

    #[test]
    fn queue_sheds_beyond_capacity() {
        let mut q = ServiceQueue::new(10.0, 5);
        let mut sheds = 0;
        // 20 simultaneous arrivals into a 5-deep queue: 5 admitted.
        for _ in 0..20 {
            if q.offer(SimTime::ZERO) == Admission::Shed {
                sheds += 1;
            }
        }
        assert_eq!(sheds, 15);
        assert_eq!(q.stats(), (5, 15));
    }

    #[test]
    fn queue_wait_grows_with_depth_and_is_bounded() {
        let mut q = ServiceQueue::new(10.0, 50);
        let mut last_wait = SimDuration::ZERO;
        for _ in 0..50 {
            match q.offer(SimTime::ZERO) {
                Admission::Admitted { wait } => {
                    assert!(wait >= last_wait, "waits are monotone in depth");
                    assert!(wait <= q.max_wait());
                    last_wait = wait;
                }
                Admission::Shed => panic!("capacity not yet reached"),
            }
        }
        assert_eq!(q.offer(SimTime::ZERO), Admission::Shed);
    }

    #[test]
    fn bucket_set_rate_refills_at_old_rate_then_clamps() {
        let mut tb = TokenBucket::new(10.0, 10.0);
        for _ in 0..10 {
            assert!(tb.try_acquire(SimTime::ZERO));
        }
        // 500 ms at the old 10/s rate accrues 5 tokens; the new burst of
        // 2 clamps them — a mid-run tighten never mints capacity.
        tb.set_rate(1000.0, 2.0, SimTime::from_millis(500));
        assert!(tb.available(SimTime::from_millis(500)) <= 2.0);
        assert_eq!(tb.rate_per_s(), 1000.0);
        assert!(tb.try_acquire(SimTime::from_millis(500)));
        assert!(tb.try_acquire(SimTime::from_millis(500)));
        assert!(!tb.try_acquire(SimTime::from_millis(500)));
    }

    #[test]
    fn queue_set_rate_carries_backlog_and_changes_drain() {
        let mut q = ServiceQueue::new(10.0, 100);
        for _ in 0..40 {
            q.offer(SimTime::ZERO);
        }
        // 1 s at the old 10/s drains 10 of the 40; the backlog of 30
        // carries over and drains at the new 100/s from here on.
        q.set_rate(100.0, SimTime::from_secs(1));
        assert!((q.depth(SimTime::from_secs(1)) - 30.0).abs() < 1e-9);
        assert_eq!(q.rate(), 100.0);
        assert!(q.depth(SimTime::from_millis(1_300)) < 1e-9);
        assert_eq!(q.service_time(), SimDuration::from_millis(10));
    }

    #[test]
    fn queue_drains_over_time() {
        let mut q = ServiceQueue::new(10.0, 5);
        for _ in 0..5 {
            q.offer(SimTime::ZERO);
        }
        assert_eq!(q.offer(SimTime::ZERO), Admission::Shed);
        // 300 ms drains 3 requests at 10/s.
        assert!(matches!(
            q.offer(SimTime::from_millis(300)),
            Admission::Admitted { .. }
        ));
        assert!((q.depth(SimTime::from_millis(300)) - 3.0).abs() < 1e-9);
    }
}
