//! Consistent-hash shard routing.
//!
//! The serving tier stands between many concurrent consumers and the
//! storage/inference backends; [`ShardMap`] decides *which* backend node a
//! key belongs to. It is a classic consistent-hash ring with virtual nodes:
//!
//! - every physical node contributes `vnodes` points on a 64-bit ring,
//! - a key routes to the first ring point clockwise from its hash,
//! - adding or removing a node only remaps the keys that fell between the
//!   changed points — roughly `keys / n` of them — which is the
//!   minimal-movement property the proptests pin down.
//!
//! Routing is a pure function of the node set and the key bytes: no
//! interior mutability, no ambient randomness, so the same map gives the
//! same answer on every platform and thread count.

use std::collections::{BTreeMap, BTreeSet};

/// FNV-1a 64-bit hash over raw bytes, finished with a splitmix64 scramble.
///
/// FNV alone clusters nearby keys (`"k-1"`, `"k-2"`, ...) on the ring; the
/// splitmix finalizer spreads them uniformly. Deterministic across
/// platforms, unlike `std::hash::DefaultHasher` which is seeded per
/// process.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn vnode_point(node: u32, replica: u32) -> u64 {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&node.to_le_bytes());
    bytes[4..].copy_from_slice(&replica.to_le_bytes());
    hash_bytes(&bytes)
}

/// A consistent-hash ring mapping keys to shard nodes.
///
/// # Examples
///
/// ```
/// use scserve::ShardMap;
///
/// let mut map = ShardMap::with_nodes(4, 64);
/// let home = map.route(b"cam-1742").unwrap();
/// map.remove_node(home);
/// let next = map.route(b"cam-1742").unwrap();
/// assert_ne!(home, next, "keys of a removed node move to a survivor");
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap {
    vnodes: u32,
    ring: BTreeMap<u64, u32>,
    nodes: BTreeSet<u32>,
}

impl ShardMap {
    /// An empty ring whose future nodes each contribute `vnodes` points
    /// (clamped to at least 1).
    pub fn new(vnodes: u32) -> Self {
        ShardMap {
            vnodes: vnodes.max(1),
            ring: BTreeMap::new(),
            nodes: BTreeSet::new(),
        }
    }

    /// A ring pre-populated with nodes `0..n`.
    pub fn with_nodes(n: u32, vnodes: u32) -> Self {
        let mut map = ShardMap::new(vnodes);
        for node in 0..n {
            map.add_node(node);
        }
        map
    }

    /// Adds a node (idempotent). Only keys hashing between the new node's
    /// ring points and their predecessors move to it.
    pub fn add_node(&mut self, node: u32) {
        if !self.nodes.insert(node) {
            return;
        }
        for replica in 0..self.vnodes {
            // First-inserted node wins hash collisions; `or_insert` keeps
            // that stable when nodes are later removed and re-added.
            self.ring.entry(vnode_point(node, replica)).or_insert(node);
        }
    }

    /// Removes a node (idempotent); its keys redistribute to ring
    /// successors.
    pub fn remove_node(&mut self, node: u32) {
        if !self.nodes.remove(&node) {
            return;
        }
        self.ring.retain(|_, n| *n != node);
        // Re-insert points of surviving nodes that had lost a collision to
        // the removed node (vanishingly rare, but keeps the invariant that
        // every live node owns all of its non-colliding points).
        for &n in &self.nodes {
            for replica in 0..self.vnodes {
                self.ring.entry(vnode_point(n, replica)).or_insert(n);
            }
        }
    }

    /// The live node set, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` is in the ring.
    pub fn contains(&self, node: u32) -> bool {
        self.nodes.contains(&node)
    }

    /// Routes a key to its home node: the first ring point at or clockwise
    /// from the key hash. `None` on an empty ring.
    pub fn route(&self, key: &[u8]) -> Option<u32> {
        let h = hash_bytes(key);
        self.ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &n)| n)
    }

    /// Routes a key to up to `replicas` **distinct** nodes: the home node
    /// followed by the next distinct nodes clockwise. Fewer are returned
    /// when the ring holds fewer nodes.
    pub fn route_replicas(&self, key: &[u8], replicas: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(replicas.min(self.nodes.len()));
        if self.ring.is_empty() || replicas == 0 {
            return out;
        }
        let h = hash_bytes(key);
        for (_, &n) in self.ring.range(h..).chain(self.ring.range(..h)) {
            if !out.contains(&n) {
                out.push(n);
                if out.len() == replicas.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }

    /// Routes a key to the first replica for which `live` returns true,
    /// walking the whole ring if necessary. `None` when every node is down.
    pub fn route_live(&self, key: &[u8], live: impl Fn(u32) -> bool) -> Option<u32> {
        self.route_replicas(key, self.nodes.len())
            .into_iter()
            .find(|&n| live(n))
    }
}

/// Rendezvous (highest-random-weight) choice among an explicit candidate
/// set: picks the live candidate maximizing `hash(key, candidate)`.
///
/// Used to pin a DFS block read to one of its replica datanodes — the
/// candidate set is the block's location list, which a ring cannot model —
/// while keeping the choice deterministic and stable under replica loss
/// (only keys whose winner disappeared move).
pub fn rendezvous_pick(key: &[u8], candidates: &[u32], live: impl Fn(u32) -> bool) -> Option<u32> {
    candidates
        .iter()
        .copied()
        .filter(|&c| live(c))
        .max_by_key(|&c| {
            let mut bytes = Vec::with_capacity(key.len() + 4);
            bytes.extend_from_slice(key);
            bytes.extend_from_slice(&c.to_le_bytes());
            (hash_bytes(&bytes), c)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_to_live_node() {
        let map = ShardMap::with_nodes(8, 32);
        for i in 0..1000 {
            let key = format!("key-{i}");
            let node = map.route(key.as_bytes()).unwrap();
            assert!(map.contains(node));
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let map = ShardMap::new(16);
        assert_eq!(map.route(b"x"), None);
        assert!(map.route_replicas(b"x", 3).is_empty());
    }

    #[test]
    fn routing_is_stable() {
        let a = ShardMap::with_nodes(5, 64);
        let b = ShardMap::with_nodes(5, 64);
        for i in 0..500 {
            let key = format!("k{i}");
            assert_eq!(a.route(key.as_bytes()), b.route(key.as_bytes()));
        }
    }

    #[test]
    fn replicas_are_distinct_and_lead_with_home() {
        let map = ShardMap::with_nodes(6, 48);
        for i in 0..200 {
            let key = format!("k{i}");
            let reps = map.route_replicas(key.as_bytes(), 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], map.route(key.as_bytes()).unwrap());
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn replicas_clamped_to_ring_size() {
        let map = ShardMap::with_nodes(2, 16);
        assert_eq!(map.route_replicas(b"k", 5).len(), 2);
    }

    #[test]
    fn removal_only_moves_keys_of_the_removed_node() {
        let mut map = ShardMap::with_nodes(8, 64);
        let keys: Vec<String> = (0..2000).map(|i| format!("key-{i}")).collect();
        let before: Vec<u32> = keys
            .iter()
            .map(|k| map.route(k.as_bytes()).unwrap())
            .collect();
        map.remove_node(3);
        for (key, &was) in keys.iter().zip(&before) {
            let now = map.route(key.as_bytes()).unwrap();
            if was != 3 {
                assert_eq!(now, was, "key {key} moved although its node survived");
            } else {
                assert_ne!(now, 3);
            }
        }
    }

    #[test]
    fn add_then_remove_round_trips() {
        let mut map = ShardMap::with_nodes(4, 64);
        let keys: Vec<String> = (0..500).map(|i| format!("k{i}")).collect();
        let before: Vec<u32> = keys
            .iter()
            .map(|k| map.route(k.as_bytes()).unwrap())
            .collect();
        map.add_node(99);
        map.remove_node(99);
        let after: Vec<u32> = keys
            .iter()
            .map(|k| map.route(k.as_bytes()).unwrap())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn route_live_skips_down_nodes() {
        let map = ShardMap::with_nodes(4, 32);
        let home = map.route(b"hot-key").unwrap();
        let rerouted = map.route_live(b"hot-key", |n| n != home).unwrap();
        assert_ne!(rerouted, home);
        assert_eq!(map.route_live(b"hot-key", |_| false), None);
    }

    #[test]
    fn rendezvous_is_stable_under_loss() {
        let candidates = [2u32, 5, 9];
        let winner = rendezvous_pick(b"blk_42", &candidates, |_| true).unwrap();
        assert!(candidates.contains(&winner));
        // Losing a non-winner never moves the choice.
        for &gone in candidates.iter().filter(|&&c| c != winner) {
            let w = rendezvous_pick(b"blk_42", &candidates, |c| c != gone).unwrap();
            assert_eq!(w, winner);
        }
        // Losing the winner falls to another live candidate.
        let w = rendezvous_pick(b"blk_42", &candidates, |c| c != winner).unwrap();
        assert_ne!(w, winner);
        assert_eq!(rendezvous_pick(b"blk_42", &candidates, |_| false), None);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let map = ShardMap::with_nodes(8, 128);
        let mut counts = [0usize; 8];
        for i in 0..8000 {
            let key = format!("key-{i}");
            counts[map.route(key.as_bytes()).unwrap() as usize] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            assert!(
                c > 300 && c < 2500,
                "node {n} owns {c}/8000 keys — ring badly skewed"
            );
        }
    }
}
