//! Seeded-eviction LRU+TTL caches for query results and inference outputs.
//!
//! The serving tier memoizes two kinds of work: document-store query
//! results ([`QueryCache`]) and per-row inference outputs
//! ([`InferenceCache`]). Both are instances of [`LruTtlCache`]:
//!
//! - **TTL**: an entry older than `ttl` (in *sim-time*) is never returned
//!   by [`LruTtlCache::get`]; it is removed on the touch that finds it
//!   expired.
//! - **Seeded sampled-LRU eviction**: at capacity, eviction samples
//!   `evict_sample` entries with a [`SeededRng`] and drops the
//!   least-recently-used of the sample (Redis-style approximate LRU).
//!   The sample positions come from the seed and the operation history
//!   only, so for a given seed the cache contents — and therefore every
//!   hit/miss — are bit-reproducible across runs and thread counts.
//! - **Explicit invalidation**: writers call [`LruTtlCache::invalidate`]
//!   (or the owner bumps a generation stamped into the values) so a cached
//!   answer can never survive the write that obsoleted it. The server
//!   layer enforces that rule; see `Server` in this crate.
//!
//! [`LruTtlCache::peek_ignore_ttl`] deliberately bypasses the TTL check:
//! it is the *stale-serve* path used only when every replica of a shard is
//! down and a degraded answer beats no answer.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use simclock::{SeededRng, SimDuration, SimTime};

/// Sizing and policy knobs for one [`LruTtlCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of entries held (at least 1).
    pub capacity: usize,
    /// Entries older than this (sim-time) are treated as absent.
    pub ttl: SimDuration,
    /// Seed for the eviction sampler.
    pub seed: u64,
    /// How many entries the evictor samples; the least-recently-used of
    /// the sample is dropped. Larger samples approximate exact LRU.
    pub evict_sample: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 1024,
            ttl: SimDuration::from_secs(60),
            seed: 0,
            evict_sample: 5,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    inserted_at: SimTime,
    /// Logical use tick; doubles as the key into the LRU order map.
    tick: u64,
}

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Valid (fresh, unexpired) lookups served.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
    /// Entries dropped because their TTL had lapsed.
    pub expired: u64,
    /// Stale reads served through [`LruTtlCache::peek_ignore_ttl`].
    pub stale_reads: u64,
}

impl CacheStats {
    /// Hits over total lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A deterministic LRU+TTL cache — see the module docs for the policy.
///
/// # Examples
///
/// ```
/// use scserve::{CacheConfig, LruTtlCache};
/// use simclock::{SimDuration, SimTime};
///
/// let mut cache: LruTtlCache<&str, u32> = LruTtlCache::new(CacheConfig {
///     capacity: 2,
///     ttl: SimDuration::from_secs(10),
///     ..CacheConfig::default()
/// });
/// cache.insert("a", 1, SimTime::ZERO);
/// assert_eq!(cache.get(&"a", SimTime::from_secs(5)), Some(1));
/// assert_eq!(cache.get(&"a", SimTime::from_secs(11)), None, "expired");
/// ```
#[derive(Debug, Clone)]
pub struct LruTtlCache<K, V> {
    cfg: CacheConfig,
    map: HashMap<K, Entry<V>>,
    /// use-tick → key, ascending tick = least recently used first.
    /// Iterated (never the `HashMap`) so eviction order is deterministic.
    lru: BTreeMap<u64, K>,
    rng: SeededRng,
    next_tick: u64,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V: Clone> LruTtlCache<K, V> {
    /// An empty cache with the given policy.
    pub fn new(cfg: CacheConfig) -> Self {
        LruTtlCache {
            rng: SeededRng::new(cfg.seed),
            cfg: CacheConfig {
                capacity: cfg.capacity.max(1),
                evict_sample: cfg.evict_sample.max(1),
                ..cfg
            },
            map: HashMap::new(),
            lru: BTreeMap::new(),
            next_tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of entries currently held (including not-yet-collected
    /// expired ones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn touch(lru: &mut BTreeMap<u64, K>, next_tick: &mut u64, entry: &mut Entry<V>, key: &K) {
        lru.remove(&entry.tick);
        entry.tick = *next_tick;
        *next_tick += 1;
        lru.insert(entry.tick, key.clone());
    }

    /// Fresh lookup: returns the value only if it was inserted within
    /// `ttl` of `now`. An expired entry is removed and counted; a valid
    /// hit refreshes the entry's LRU position.
    pub fn get(&mut self, key: &K, now: SimTime) -> Option<V> {
        match self.map.get_mut(key) {
            Some(entry) if now.saturating_since(entry.inserted_at) < self.cfg.ttl => {
                Self::touch(&mut self.lru, &mut self.next_tick, entry, key);
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            Some(_) => {
                let entry = self.map.remove(key).expect("matched above");
                self.lru.remove(&entry.tick);
                self.stats.expired += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stale lookup: returns whatever is stored, however old — the
    /// degraded-answer path when the authoritative backend is unreachable.
    /// Does not refresh the LRU position and is not counted as a hit.
    pub fn peek_ignore_ttl(&mut self, key: &K) -> Option<V> {
        let entry = self.map.get(key)?;
        self.stats.stale_reads += 1;
        Some(entry.value.clone())
    }

    /// Inserts or replaces an entry, evicting (sampled-LRU) if full.
    pub fn insert(&mut self, key: K, value: V, now: SimTime) {
        if let Some(entry) = self.map.get_mut(&key) {
            entry.value = value;
            entry.inserted_at = now;
            Self::touch(&mut self.lru, &mut self.next_tick, entry, &key);
            return;
        }
        while self.map.len() >= self.cfg.capacity {
            self.evict_one();
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.lru.insert(tick, key.clone());
        self.map.insert(
            key,
            Entry {
                value,
                inserted_at: now,
                tick,
            },
        );
    }

    /// Removes one entry, if present. This is the write-path invalidation
    /// hook: callers that mutate the backing store drop the affected keys
    /// here before acknowledging the write.
    pub fn invalidate(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(entry) => {
                self.lru.remove(&entry.tick);
                true
            }
            None => false,
        }
    }

    /// Drops every entry (bulk invalidation).
    pub fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
    }

    /// Sampled-LRU eviction: draw `evict_sample` positions from the LRU
    /// order map with the seeded RNG and drop the oldest of the sample.
    fn evict_one(&mut self) {
        let len = self.lru.len();
        if len == 0 {
            return;
        }
        let tick = if self.cfg.evict_sample >= len {
            // Sample covers everything: exact LRU, no draws burned.
            *self.lru.keys().next().expect("len > 0")
        } else {
            let mut oldest: Option<u64> = None;
            for _ in 0..self.cfg.evict_sample {
                let idx = self.rng.next_bounded(len as u64) as usize;
                let (&tick, _) = self.lru.iter().nth(idx).expect("idx < len");
                oldest = Some(oldest.map_or(tick, |t| t.min(tick)));
            }
            oldest.expect("sample is non-empty")
        };
        let key = self.lru.remove(&tick).expect("tick sampled from map");
        self.map.remove(&key);
        self.stats.evictions += 1;
    }
}

/// Cache key for a query: a stable fingerprint of the filter (and any
/// point-lookup key) computed by the server layer.
pub type QueryKey = u64;

/// Cache over query results: fingerprint → (write-generation, rows).
///
/// The generation is stamped by the server at fill time; a lookup whose
/// stored generation predates the collection's current one is treated as
/// invalidated-by-write even if its TTL has not lapsed.
pub type QueryCache<R> = LruTtlCache<QueryKey, (u64, R)>;

/// Cache over inference outputs: input-row fingerprint → output row.
/// Models are immutable while serving, so entries only age out by TTL or
/// eviction; swapping the model must go through `Server`, which clears it.
pub type InferenceCache = LruTtlCache<u64, Vec<f32>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, ttl_s: u64) -> CacheConfig {
        CacheConfig {
            capacity,
            ttl: SimDuration::from_secs(ttl_s),
            seed: 7,
            evict_sample: 3,
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let mut c: LruTtlCache<u32, u32> = LruTtlCache::new(cfg(8, 10));
        assert_eq!(c.get(&1, SimTime::ZERO), None);
        c.insert(1, 10, SimTime::ZERO);
        assert_eq!(c.get(&1, SimTime::from_secs(1)), Some(10));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c: LruTtlCache<u32, u32> = LruTtlCache::new(cfg(8, 10));
        c.insert(1, 10, SimTime::ZERO);
        assert_eq!(c.get(&1, SimTime::from_secs(9)), Some(10));
        assert_eq!(c.get(&1, SimTime::from_secs(10)), None, "ttl is exclusive");
        assert_eq!(c.stats().expired, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_serves_expired_entries() {
        let mut c: LruTtlCache<u32, u32> = LruTtlCache::new(cfg(8, 10));
        c.insert(1, 10, SimTime::ZERO);
        assert_eq!(c.peek_ignore_ttl(&1), Some(10));
        assert_eq!(c.stats().stale_reads, 1);
        assert_eq!(c.stats().hits, 0, "stale reads are not hits");
    }

    #[test]
    fn capacity_evicts_lru_side() {
        let mut c: LruTtlCache<u32, u32> = LruTtlCache::new(CacheConfig {
            evict_sample: 100, // sample everything ⇒ exact LRU
            ..cfg(3, 1000)
        });
        for k in 0..3 {
            c.insert(k, k, SimTime::ZERO);
        }
        c.get(&0, SimTime::from_secs(1)); // refresh 0; LRU is now 1
        c.insert(3, 3, SimTime::from_secs(2));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&1, SimTime::from_secs(3)), None, "1 was the LRU");
        assert_eq!(c.get(&0, SimTime::from_secs(3)), Some(0));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c: LruTtlCache<u32, u32> = LruTtlCache::new(cfg(8, 10));
        c.insert(1, 10, SimTime::ZERO);
        assert!(c.invalidate(&1));
        assert!(!c.invalidate(&1));
        assert_eq!(c.get(&1, SimTime::ZERO), None);
    }

    #[test]
    fn reinsert_refreshes_ttl_and_position() {
        let mut c: LruTtlCache<u32, u32> = LruTtlCache::new(cfg(8, 10));
        c.insert(1, 10, SimTime::ZERO);
        c.insert(1, 11, SimTime::from_secs(8));
        assert_eq!(c.get(&1, SimTime::from_secs(15)), Some(11));
    }

    #[test]
    fn eviction_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut c: LruTtlCache<u32, u32> = LruTtlCache::new(CacheConfig {
                capacity: 16,
                ttl: SimDuration::from_secs(1000),
                seed,
                evict_sample: 2,
            });
            for k in 0..200u32 {
                c.insert(k, k, SimTime::from_millis(k as u64));
                c.get(&(k / 2), SimTime::from_millis(k as u64));
            }
            let mut kept: Vec<u32> = (0..200)
                .filter(|k| c.peek_ignore_ttl(k).is_some())
                .collect();
            kept.sort_unstable();
            kept
        };
        assert_eq!(run(42), run(42), "same seed, same survivors");
        assert_ne!(run(42), run(43), "different seed samples differently");
    }
}
