//! Micro-batching with request coalescing for inference serving.
//!
//! City dashboards and camera feeds issue many small inference requests;
//! running them one row at a time wastes the batched kernels `scneural`
//! already has. [`MicroBatcher`] coalesces pending requests and flushes
//! them as one `Sequential::predict_ctx` call when either knob fires:
//!
//! - **max batch**: `max_batch` *distinct* rows are pending, or
//! - **max delay**: the oldest pending request has waited `max_delay` of
//!   sim-time.
//!
//! Identical pending rows are *coalesced*: the row is computed once and
//! its output fanned out to every waiting request, so a thundering herd
//! on one hot camera frame costs one model evaluation.
//!
//! **Determinism argument.** Every layer in `scneural` computes inference
//! rows independently (`predict_ctx` is built on that), so the logits
//! for a row do not depend on which batch it rode in — batch sizes 1, 7,
//! and 32 give bit-identical outputs per row, as `tests/
//! serving_equivalence.rs` proves. Batch composition itself is a function
//! of the request arrival sequence only (never of thread count or wall
//! time), so telemetry is reproducible too.

use scneural::exec::ExecCtx;
use scneural::net::Sequential;
use scneural::tensor::Tensor;
use simclock::{SimDuration, SimTime};

use crate::shard::hash_bytes;

/// Batching knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Flush as soon as this many distinct rows are pending (at least 1).
    pub max_batch: usize,
    /// Flush once the oldest pending request has waited this long.
    pub max_delay: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_delay: SimDuration::from_millis(5),
        }
    }
}

/// Ticket for a submitted inference request, redeemed at flush time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// Stable fingerprint of an input row: the FNV/splitmix hash of its f32
/// bit patterns. Used both for coalescing and as the inference-cache key.
pub fn row_fingerprint(row: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(row.len() * 4 + 8);
    bytes.extend_from_slice(&(row.len() as u64).to_le_bytes());
    for v in row {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    hash_bytes(&bytes)
}

/// One flushed batch: per-request outputs plus what the batch looked like.
#[derive(Debug, Clone)]
pub struct FlushedBatch {
    /// `(request, output row)` pairs in submission order.
    pub outputs: Vec<(ReqId, Vec<f32>)>,
    /// `(row fingerprint, output row)` pairs for the distinct rows that
    /// were actually evaluated — what the inference cache should absorb.
    pub distinct: Vec<(u64, Vec<f32>)>,
    /// Number of distinct rows evaluated (the model-side batch size).
    pub batch_size: usize,
    /// Requests served by this flush (≥ `batch_size` when coalescing won).
    pub requests: usize,
    /// When the flush happened.
    pub at: SimTime,
}

/// Coalescing micro-batcher over a shared immutable model.
///
/// # Examples
///
/// ```
/// use scserve::{BatchConfig, MicroBatcher};
/// use scneural::exec::ExecCtx;
/// use scneural::layers::{Dense, Relu};
/// use scneural::net::Sequential;
/// use simclock::{SimDuration, SimTime};
///
/// let net = Sequential::new().with(Dense::new(4, 2, 1)).with(Relu::new());
/// let ctx = ExecCtx::serial();
/// let mut b = MicroBatcher::new(BatchConfig { max_batch: 2, max_delay: SimDuration::from_millis(5) });
/// b.submit(vec![0.1, 0.2, 0.3, 0.4], SimTime::ZERO);
/// assert!(b.flush_due(&net, &ctx, SimTime::ZERO).is_none(), "below both knobs");
/// b.submit(vec![0.4, 0.3, 0.2, 0.1], SimTime::ZERO);
/// let batch = b.flush_due(&net, &ctx, SimTime::ZERO).unwrap();
/// assert_eq!(batch.batch_size, 2);
/// ```
#[derive(Debug)]
pub struct MicroBatcher {
    cfg: BatchConfig,
    /// Distinct pending rows in first-submission order.
    rows: Vec<(u64, Vec<f32>)>,
    /// Waiters per distinct row, submission order preserved.
    waiters: Vec<(u64, Vec<(ReqId, SimTime)>)>,
    oldest: Option<SimTime>,
    next_req: u64,
    flushes: u64,
    coalesced: u64,
}

impl MicroBatcher {
    /// An empty batcher with the given knobs.
    pub fn new(cfg: BatchConfig) -> Self {
        MicroBatcher {
            cfg: BatchConfig {
                max_batch: cfg.max_batch.max(1),
                ..cfg
            },
            rows: Vec::new(),
            waiters: Vec::new(),
            oldest: None,
            next_req: 0,
            flushes: 0,
            coalesced: 0,
        }
    }

    /// The current batching knobs.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Replaces the max-batch knob (clamped to at least 1) without
    /// touching pending state. [`crate::Server`] calls this when a tuned
    /// [`ExecCtx`] or a new model arrives, so a
    /// `micro_batch` entry in the tuning table takes effect mid-flight;
    /// already-pending rows simply flush under the new threshold.
    pub fn set_max_batch(&mut self, max_batch: usize) {
        self.cfg.max_batch = max_batch.max(1);
    }

    /// Number of distinct rows pending.
    pub fn pending_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of requests waiting (≥ [`pending_rows`](Self::pending_rows)).
    pub fn pending_requests(&self) -> usize {
        self.waiters.iter().map(|(_, w)| w.len()).sum()
    }

    /// `(flushes, coalesced_requests)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.flushes, self.coalesced)
    }

    /// Queues a row for the next batch, coalescing onto an identical
    /// pending row if one exists. Returns the request's ticket.
    pub fn submit(&mut self, row: Vec<f32>, now: SimTime) -> ReqId {
        let id = ReqId(self.next_req);
        self.next_req += 1;
        let fp = row_fingerprint(&row);
        match self.waiters.iter_mut().find(|(f, _)| *f == fp) {
            Some((_, w)) => {
                w.push((id, now));
                self.coalesced += 1;
            }
            None => {
                self.rows.push((fp, row));
                self.waiters.push((fp, vec![(id, now)]));
            }
        }
        self.oldest.get_or_insert(now);
        id
    }

    /// Whether a flush is due at `now` (either knob fired).
    pub fn due(&self, now: SimTime) -> bool {
        if self.rows.len() >= self.cfg.max_batch {
            return true;
        }
        match self.oldest {
            Some(t) => now.saturating_since(t) >= self.cfg.max_delay,
            None => false,
        }
    }

    /// When the delay knob will fire for the current pending set, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.oldest.map(|t| t + self.cfg.max_delay)
    }

    /// Flushes if due; see [`flush_now`](Self::flush_now).
    pub fn flush_due(
        &mut self,
        model: &Sequential,
        ctx: &ExecCtx,
        now: SimTime,
    ) -> Option<FlushedBatch> {
        if self.due(now) {
            self.flush_now(model, ctx, now)
        } else {
            None
        }
    }

    /// Evaluates every pending distinct row as one batched
    /// `predict_ctx` call and fans outputs back out to all waiters.
    /// Returns `None` when nothing is pending.
    pub fn flush_now(
        &mut self,
        model: &Sequential,
        ctx: &ExecCtx,
        now: SimTime,
    ) -> Option<FlushedBatch> {
        if self.rows.is_empty() {
            return None;
        }
        let rows = std::mem::take(&mut self.rows);
        let waiters = std::mem::take(&mut self.waiters);
        self.oldest = None;
        self.flushes += 1;

        let dim = rows[0].1.len();
        debug_assert!(rows.iter().all(|(_, r)| r.len() == dim));
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (_, r) in &rows {
            data.extend_from_slice(r);
        }
        let input =
            Tensor::from_vec(vec![rows.len(), dim], data).expect("rows share one dimension");
        let out = model.predict_ctx(&input, ctx);
        let out_dim = out.len() / rows.len();

        let distinct: Vec<(u64, Vec<f32>)> = rows
            .iter()
            .enumerate()
            .map(|(i, (fp, _))| (*fp, out.data()[i * out_dim..(i + 1) * out_dim].to_vec()))
            .collect();
        let mut outputs: Vec<(ReqId, Vec<f32>)> = Vec::new();
        for (fp, list) in &waiters {
            let row = &distinct
                .iter()
                .find(|(f, _)| f == fp)
                .expect("every waiter has a pending row")
                .1;
            for (id, _) in list {
                outputs.push((*id, row.clone()));
            }
        }
        outputs.sort_by_key(|(id, _)| *id);
        Some(FlushedBatch {
            batch_size: rows.len(),
            requests: outputs.len(),
            outputs,
            distinct,
            at: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scneural::layers::{Dense, Relu};

    fn net() -> Sequential {
        Sequential::new()
            .with(Dense::new(3, 8, 11))
            .with(Relu::new())
            .with(Dense::new(8, 2, 12))
    }

    fn row(seed: u64) -> Vec<f32> {
        (0..3)
            .map(|i| ((seed * 31 + i) % 17) as f32 / 17.0)
            .collect()
    }

    #[test]
    fn max_batch_triggers_flush() {
        let net = net();
        let mut b = MicroBatcher::new(BatchConfig {
            max_batch: 3,
            max_delay: SimDuration::from_secs(1),
        });
        b.submit(row(1), SimTime::ZERO);
        b.submit(row(2), SimTime::ZERO);
        assert!(!b.due(SimTime::ZERO));
        b.submit(row(3), SimTime::ZERO);
        let batch = b
            .flush_due(&net, &ExecCtx::serial(), SimTime::ZERO)
            .unwrap();
        assert_eq!(batch.batch_size, 3);
        assert_eq!(batch.requests, 3);
        assert_eq!(b.pending_rows(), 0);
    }

    #[test]
    fn max_delay_triggers_flush() {
        let net = net();
        let mut b = MicroBatcher::new(BatchConfig {
            max_batch: 100,
            max_delay: SimDuration::from_millis(5),
        });
        b.submit(row(1), SimTime::from_millis(10));
        assert!(!b.due(SimTime::from_millis(14)));
        assert!(b.due(SimTime::from_millis(15)));
        assert_eq!(b.next_deadline(), Some(SimTime::from_millis(15)));
        let batch = b
            .flush_due(&net, &ExecCtx::serial(), SimTime::from_millis(15))
            .unwrap();
        assert_eq!(batch.batch_size, 1);
    }

    #[test]
    fn identical_rows_coalesce() {
        let net = net();
        let mut b = MicroBatcher::new(BatchConfig {
            max_batch: 2,
            max_delay: SimDuration::from_secs(1),
        });
        let a = b.submit(row(1), SimTime::ZERO);
        let dup = b.submit(row(1), SimTime::ZERO);
        assert_eq!(b.pending_rows(), 1, "identical row coalesces");
        b.submit(row(2), SimTime::ZERO);
        let batch = b
            .flush_due(&net, &ExecCtx::serial(), SimTime::ZERO)
            .unwrap();
        assert_eq!(batch.batch_size, 2, "two distinct rows evaluated");
        assert_eq!(batch.requests, 3, "three requests served");
        assert_eq!(b.stats().1, 1, "one request coalesced");
        let out_a = &batch.outputs.iter().find(|(id, _)| *id == a).unwrap().1;
        let out_dup = &batch.outputs.iter().find(|(id, _)| *id == dup).unwrap().1;
        assert_eq!(out_a, out_dup);
    }

    #[test]
    fn batched_equals_single_row() {
        let net = net();
        let ctx = ExecCtx::serial();
        let rows: Vec<Vec<f32>> = (0..7).map(row).collect();
        let mut b = MicroBatcher::new(BatchConfig {
            max_batch: 7,
            max_delay: SimDuration::from_secs(1),
        });
        let ids: Vec<ReqId> = rows
            .iter()
            .map(|r| b.submit(r.clone(), SimTime::ZERO))
            .collect();
        let batch = b.flush_now(&net, &ctx, SimTime::ZERO).unwrap();
        for (id, r) in ids.iter().zip(&rows) {
            let single = net.predict_ctx(
                &Tensor::from_vec(vec![1, r.len()], r.clone()).unwrap(),
                &ctx,
            );
            let batched = &batch.outputs.iter().find(|(i, _)| i == id).unwrap().1;
            let same = single
                .data()
                .iter()
                .zip(batched.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "batched row diverged from single-row inference");
        }
    }

    #[test]
    fn set_max_batch_clamps_and_preserves_pending() {
        let net = net();
        let mut b = MicroBatcher::new(BatchConfig {
            max_batch: 100,
            max_delay: SimDuration::from_secs(1),
        });
        b.submit(row(1), SimTime::ZERO);
        b.submit(row(2), SimTime::ZERO);
        b.set_max_batch(0);
        assert_eq!(b.config().max_batch, 1, "clamped to at least one");
        assert_eq!(b.pending_rows(), 2, "pending rows untouched");
        assert!(b.due(SimTime::ZERO), "new threshold applies immediately");
        let batch = b
            .flush_due(&net, &ExecCtx::serial(), SimTime::ZERO)
            .unwrap();
        assert_eq!(batch.batch_size, 2, "pending rows all flush together");
    }

    #[test]
    fn empty_flush_is_none() {
        let net = net();
        let mut b = MicroBatcher::new(BatchConfig::default());
        assert!(b
            .flush_now(&net, &ExecCtx::serial(), SimTime::ZERO)
            .is_none());
    }
}
