//! Seed-deterministic workload generation for the serving tier.
//!
//! [`WorkloadGen`] drives a [`Server`] with a mixed read/write/inference
//! request stream over sim-time and distils the run into a
//! [`ServingReport`] (experiment E17). Two arrival models:
//!
//! - **Open loop** — Poisson arrivals at a fixed rate, independent of how
//!   the server copes. This is the honest overload model: when the server
//!   saturates, demand does not politely slow down, so latency and shed
//!   fraction show the true knee.
//! - **Closed loop** — a fixed client pool; each client issues its next
//!   request only after the previous answer plus a think time. Throughput
//!   self-limits, which is the right model for interactive dashboards.
//!
//! Everything — inter-arrival gaps, key popularity, op mix — is drawn
//! from a [`SeededRng`], so a `(config, seed)` pair replays the same
//! request trace on every run and thread count.

use scnosql::document::{Doc, Filter};
use sctelemetry::{percentile_sorted, Report};
use simclock::{SeededRng, SimDuration, SimTime};
use std::collections::BTreeMap;

use crate::server::{InferSubmit, Server};

/// How requests arrive.
#[derive(Debug, Clone)]
pub enum ArrivalMode {
    /// Poisson arrivals at `rate_per_s`, regardless of server state.
    OpenLoop {
        /// Mean arrival rate, requests per sim-second.
        rate_per_s: f64,
    },
    /// `clients` issue one request at a time, `think` after each answer.
    ClosedLoop {
        /// Concurrent client count.
        clients: usize,
        /// Think time between a client's answer and its next request.
        think: SimDuration,
    },
}

/// Workload shape knobs.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed; same seed, same request trace.
    pub seed: u64,
    /// Requests to issue.
    pub requests: usize,
    /// Distinct serving keys (seeded with one document each).
    pub keyspace: usize,
    /// Popularity skew: key rank drawn as `keyspace · u^(1+skew)`.
    /// 0 is uniform; larger concentrates traffic on few keys.
    pub skew: f64,
    /// Fraction of requests that are writes (cache-invalidating puts).
    pub write_fraction: f64,
    /// Fraction of requests that are inference submissions.
    pub infer_fraction: f64,
    /// Feature-row width for inference requests.
    pub feature_dim: usize,
    /// Distinct feature rows in circulation (drives inference cache
    /// hits and micro-batch coalescing).
    pub row_pool: usize,
    /// Arrival model.
    pub mode: ArrivalMode,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0,
            requests: 2_000,
            keyspace: 200,
            skew: 1.0,
            write_fraction: 0.05,
            infer_fraction: 0.3,
            feature_dim: 8,
            row_pool: 32,
            mode: ArrivalMode::OpenLoop {
                rate_per_s: 1_000.0,
            },
        }
    }
}

/// Outcome summary of one workload run; implements
/// [`sctelemetry::Report`] so it can ride the dashboard JSON path.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests issued.
    pub requests: u64,
    /// Requests answered (fresh, cached, stale, or degraded).
    pub completed: u64,
    /// Requests rejected by admission control. A stale cache entry may
    /// still have produced a degraded answer for some of these;
    /// `requests - completed` of them got nothing at all.
    pub shed: u64,
    /// Serving-cache hit rate over the run.
    pub hit_rate: f64,
    /// Median answered-request latency, sim-milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile answered-request latency, sim-milliseconds.
    pub p99_ms: f64,
    /// Mean distinct rows per flushed micro-batch.
    pub mean_batch: f64,
    /// `shed / requests`.
    pub shed_fraction: f64,
    /// Reads rerouted off a down primary.
    pub reroutes: u64,
    /// Answers served stale during outages or overload.
    pub stale_served: u64,
    /// Partial degraded answers.
    pub degraded: u64,
}

impl Report for ServingReport {
    fn kv(&self) -> Vec<(String, f64)> {
        vec![
            ("requests".into(), self.requests as f64),
            ("completed".into(), self.completed as f64),
            ("shed".into(), self.shed as f64),
            ("hit_rate".into(), self.hit_rate),
            ("p50_ms".into(), self.p50_ms),
            ("p99_ms".into(), self.p99_ms),
            ("mean_batch".into(), self.mean_batch),
            ("shed_fraction".into(), self.shed_fraction),
            ("reroutes".into(), self.reroutes as f64),
            ("stale_served".into(), self.stale_served as f64),
            ("degraded".into(), self.degraded as f64),
        ]
    }
}

/// The four document kinds the workload writes and queries over.
const KINDS: [&str; 4] = ["traffic", "air", "camera", "event"];

/// Deterministic request generator; see the module docs.
///
/// # Examples
///
/// ```
/// use scserve::{Server, ServeConfig, WorkloadConfig, WorkloadGen};
///
/// let mut server = Server::new(ServeConfig::default());
/// let cfg = WorkloadConfig { requests: 200, infer_fraction: 0.0, ..WorkloadConfig::default() };
/// let report = WorkloadGen::new(cfg).run(&mut server);
/// assert_eq!(report.requests, 200);
/// assert!(report.hit_rate > 0.0, "skewed keys must produce cache hits");
/// ```
#[derive(Debug)]
pub struct WorkloadGen {
    cfg: WorkloadConfig,
    rng: SeededRng,
}

impl WorkloadGen {
    /// A generator for `cfg`, seeded from `cfg.seed`.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let rng = SeededRng::new(cfg.seed ^ 0x5c5e_42e1);
        WorkloadGen { cfg, rng }
    }

    /// Zipf-ish rank in `0..n`: `n · u^(1+skew)` concentrates low ranks.
    fn rank(&mut self, n: usize) -> usize {
        let u = self.rng.next_f64();
        ((n as f64 * u.powf(1.0 + self.cfg.skew)) as usize).min(n - 1)
    }

    fn key(&mut self) -> String {
        let r = self.rank(self.cfg.keyspace.max(1));
        format!("k-{r:05}")
    }

    fn filter(&mut self) -> Filter {
        let kind = KINDS[self.rank(KINDS.len())];
        Filter::Eq("kind".into(), Doc::Str(kind.into()))
    }

    fn doc(&mut self, serial: i64) -> Doc {
        let kind = KINDS[self.rng.next_bounded(KINDS.len() as u64) as usize];
        Doc::object([
            ("kind", Doc::Str(kind.into())),
            ("v", Doc::I64(serial)),
            ("reading", Doc::F64(self.rng.next_f64() * 100.0)),
        ])
    }

    /// Runs the workload against `server` and summarizes it.
    ///
    /// The server is first seeded with one document per key at `t = 0`.
    /// Inference requests are only issued when a model is attached
    /// (otherwise their share of the mix falls to point gets).
    ///
    /// # Panics
    ///
    /// Panics only on internal arithmetic bugs; the generated documents
    /// and filters are valid by construction.
    pub fn run(&mut self, server: &mut Server) -> ServingReport {
        // Seed the keyspace.
        for r in 0..self.cfg.keyspace {
            let doc = self.doc(r as i64);
            server
                .put(&format!("k-{r:05}"), doc, SimTime::ZERO)
                .expect("generated docs are valid");
        }
        // Pre-draw the circulating feature rows.
        let mut row_rng = self.rng.fork();
        let rows: Vec<Vec<f32>> = (0..self.cfg.row_pool.max(1))
            .map(|_| {
                (0..self.cfg.feature_dim.max(1))
                    .map(|_| row_rng.next_f64() as f32)
                    .collect()
            })
            .collect();
        let infer_enabled = server.has_model() && self.cfg.infer_fraction > 0.0;

        let base_stats = server.stats();
        let mut latencies_ms: Vec<f64> = Vec::with_capacity(self.cfg.requests);
        let mut completed = 0u64;
        let mut unanswered = 0u64;
        // Pending inference ticket → closed-loop client (or NO_CLIENT).
        let mut pending: BTreeMap<u64, usize> = BTreeMap::new();
        const NO_CLIENT: usize = usize::MAX;

        match self.cfg.mode.clone() {
            ArrivalMode::OpenLoop { rate_per_s } => {
                let rate = if rate_per_s.is_finite() && rate_per_s > 0.0 {
                    rate_per_s
                } else {
                    1.0
                };
                let mut now = SimTime::ZERO;
                let mut serial = self.cfg.keyspace as i64;
                for _ in 0..self.cfg.requests {
                    // Exponential inter-arrival gap.
                    let u = self.rng.next_f64();
                    let gap = -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate;
                    now += SimDuration::from_secs_f64(gap);
                    // Flush any batch whose delay knob fired before `now`.
                    while let Some(deadline) = server.next_deadline() {
                        if deadline > now {
                            break;
                        }
                        for c in server.tick(deadline) {
                            pending.remove(&c.req.0);
                            completed += 1;
                            latencies_ms.push(c.latency.as_secs_f64() * 1e3);
                        }
                    }
                    self.issue(
                        server,
                        now,
                        &rows,
                        infer_enabled,
                        &mut serial,
                        NO_CLIENT,
                        &mut pending,
                        &mut completed,
                        &mut unanswered,
                        &mut latencies_ms,
                    );
                }
                for c in server.drain(now) {
                    pending.remove(&c.req.0);
                    completed += 1;
                    latencies_ms.push(c.latency.as_secs_f64() * 1e3);
                }
            }
            ArrivalMode::ClosedLoop { clients, think } => {
                let clients = clients.max(1);
                // `Some(t)` = ready at t; `None` = blocked on inference.
                let mut ready: Vec<Option<SimTime>> = vec![Some(SimTime::ZERO); clients];
                let mut now = SimTime::ZERO;
                let mut serial = self.cfg.keyspace as i64;
                let mut issued = 0usize;
                while issued < self.cfg.requests {
                    let next = ready
                        .iter()
                        .enumerate()
                        .filter_map(|(c, r)| r.map(|t| (t, c)))
                        .min();
                    let deadline = server.next_deadline();
                    // Flush first when the batch deadline precedes the
                    // next client, or when every client is blocked on it.
                    let flush_at = match (deadline, next) {
                        (Some(d), Some((t, _))) if d <= t => Some(d),
                        (Some(d), None) => Some(d),
                        _ => None,
                    };
                    if let Some(d) = flush_at {
                        now = if d > now { d } else { now };
                        for c in server.tick(now) {
                            let client = pending.remove(&c.req.0).unwrap_or(NO_CLIENT);
                            if client != NO_CLIENT {
                                ready[client] = Some(now + think);
                            }
                            completed += 1;
                            latencies_ms.push(c.latency.as_secs_f64() * 1e3);
                        }
                        continue;
                    }
                    let (t, client) = next.expect("either a ready client or a pending batch");
                    now = if t > now { t } else { now };
                    let was_pending = pending.len();
                    self.issue(
                        server,
                        now,
                        &rows,
                        infer_enabled,
                        &mut serial,
                        client,
                        &mut pending,
                        &mut completed,
                        &mut unanswered,
                        &mut latencies_ms,
                    );
                    issued += 1;
                    if pending.len() > was_pending {
                        ready[client] = None; // blocked until the batch flushes
                    } else {
                        ready[client] = Some(now + think);
                    }
                }
                for c in server.drain(now) {
                    pending.remove(&c.req.0);
                    completed += 1;
                    latencies_ms.push(c.latency.as_secs_f64() * 1e3);
                }
            }
        }

        latencies_ms.sort_by(f64::total_cmp);
        let stats = server.stats();
        let requests = self.cfg.requests as u64;
        // Admission-control rejections, whether or not a stale fallback
        // still answered; `unanswered` (tracked above) is their subset
        // with no answer at all and equals `requests - completed`.
        let shed = stats.shed - base_stats.shed;
        debug_assert_eq!(completed + unanswered, requests);
        debug_assert!(unanswered <= shed);
        ServingReport {
            requests,
            completed,
            shed,
            hit_rate: stats.hit_rate(),
            p50_ms: percentile_sorted(&latencies_ms, 0.50).unwrap_or(0.0),
            p99_ms: percentile_sorted(&latencies_ms, 0.99).unwrap_or(0.0),
            mean_batch: stats.mean_batch(),
            shed_fraction: if requests == 0 {
                0.0
            } else {
                shed as f64 / requests as f64
            },
            reroutes: stats.reroutes - base_stats.reroutes,
            stale_served: stats.stale_served - base_stats.stale_served,
            degraded: stats.degraded - base_stats.degraded,
        }
    }

    /// Issues one request at `now`; writes/gets/queries resolve
    /// immediately, inference may leave a pending ticket.
    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        server: &mut Server,
        now: SimTime,
        rows: &[Vec<f32>],
        infer_enabled: bool,
        serial: &mut i64,
        client: usize,
        pending: &mut BTreeMap<u64, usize>,
        completed: &mut u64,
        unanswered: &mut u64,
        latencies_ms: &mut Vec<f64>,
    ) {
        let roll = self.rng.next_f64();
        if roll < self.cfg.write_fraction {
            let key = self.key();
            let doc = self.doc(*serial);
            *serial += 1;
            server
                .put(&key, doc, now)
                .expect("generated docs are valid");
            *completed += 1;
            // Writes are acknowledged synchronously; charge one cache-hit
            // cost so they participate in the latency sample.
            latencies_ms.push(crate::server::CACHE_HIT_COST.as_secs_f64() * 1e3);
            return;
        }
        if infer_enabled && roll < self.cfg.write_fraction + self.cfg.infer_fraction {
            let row = rows[self.rank(rows.len())].clone();
            match server.infer(row, now) {
                InferSubmit::Cached { latency, .. } | InferSubmit::Stale { latency, .. } => {
                    *completed += 1;
                    latencies_ms.push(latency.as_secs_f64() * 1e3);
                }
                InferSubmit::Pending(req) => {
                    pending.insert(req.0, client);
                }
                InferSubmit::Shed => *unanswered += 1,
            }
            return;
        }
        let (is_shed, latency) = if self.rng.next_f64() < 0.5 {
            let key = self.key();
            let served = server.get(&key, now).expect("gets cannot fail");
            (served.outcome.is_shed(), served.latency)
        } else {
            let filter = self.filter();
            let served = server
                .query(&filter, now)
                .expect("workload filters are valid");
            (served.outcome.is_shed(), served.latency)
        };
        if is_shed {
            *unanswered += 1;
        } else {
            *completed += 1;
            latencies_ms.push(latency.as_secs_f64() * 1e3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use scneural::exec::ExecCtx;
    use scneural::layers::{Dense, Relu};
    use scneural::net::Sequential;
    use scpar::ScparConfig;

    fn model(dim: usize) -> Sequential {
        Sequential::new()
            .with(Dense::new(dim, 16, 11))
            .with(Relu::new())
            .with(Dense::new(16, 4, 12))
    }

    #[test]
    fn open_loop_accounts_for_every_request() {
        let mut server = Server::new(ServeConfig::default()).with_model(model(8));
        let cfg = WorkloadConfig {
            requests: 500,
            ..WorkloadConfig::default()
        };
        let report = WorkloadGen::new(cfg).run(&mut server);
        assert_eq!(report.requests, 500);
        assert!(report.completed <= 500);
        assert!(
            500 - report.completed <= report.shed,
            "every unanswered request must stem from an admission shed"
        );
        assert!(report.hit_rate > 0.0);
        assert!(report.p99_ms >= report.p50_ms);
    }

    #[test]
    fn closed_loop_accounts_for_every_request() {
        let mut server = Server::new(ServeConfig::default()).with_model(model(8));
        let cfg = WorkloadConfig {
            requests: 400,
            mode: ArrivalMode::ClosedLoop {
                clients: 8,
                think: SimDuration::from_millis(2),
            },
            ..WorkloadConfig::default()
        };
        let report = WorkloadGen::new(cfg).run(&mut server);
        assert_eq!(report.requests, 400);
        assert!(report.completed <= 400);
        assert!(400 - report.completed <= report.shed);
    }

    #[test]
    fn same_seed_same_report_any_thread_count() {
        let mk = |threads: usize| {
            let par = if threads <= 1 {
                ScparConfig::serial()
            } else {
                ScparConfig::with_threads(threads)
            };
            let mut server = Server::new(ServeConfig::default())
                .with_model(model(8))
                .with_ctx(ExecCtx::serial().with_par(par));
            WorkloadGen::new(WorkloadConfig {
                requests: 600,
                seed: 7,
                ..WorkloadConfig::default()
            })
            .run(&mut server)
        };
        let serial = mk(1);
        assert_eq!(serial, mk(2));
        assert_eq!(serial, mk(8));
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed: u64| {
            let mut server = Server::new(ServeConfig::default());
            WorkloadGen::new(WorkloadConfig {
                seed,
                infer_fraction: 0.0,
                requests: 300,
                ..WorkloadConfig::default()
            })
            .run(&mut server)
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn overload_sheds_instead_of_blowing_latency() {
        let cfg = ServeConfig {
            rate_per_s: 100.0,
            burst: 10.0,
            service_rate: 100.0,
            queue_capacity: 20,
            ..ServeConfig::default()
        };
        let mut server = Server::new(cfg.clone());
        let report = WorkloadGen::new(WorkloadConfig {
            requests: 2_000,
            infer_fraction: 0.0,
            mode: ArrivalMode::OpenLoop {
                rate_per_s: 2_000.0,
            },
            ..WorkloadConfig::default()
        })
        .run(&mut server);
        assert!(report.shed_fraction > 0.3, "overload must shed");
        let bound_ms =
            (cfg.queue_capacity as f64 / cfg.service_rate) * 1e3 + (1.0 / cfg.service_rate) * 1e3;
        assert!(
            report.p99_ms <= bound_ms + 1e-6,
            "p99 {} must respect the queue bound {}",
            report.p99_ms,
            bound_ms
        );
    }
}
