//! scserve — the sharded, cached, batched serving tier.
//!
//! The paper's cyberinfrastructure ends at people: dashboards, alerts,
//! and inference answers served to many concurrent consumers. This crate
//! is that last hop. It composes four mechanisms, each independently
//! testable and all deterministic in sim-time:
//!
//! | module | mechanism |
//! |---|---|
//! | [`shard`] | consistent-hash key→shard routing with virtual nodes, plus rendezvous picks for DFS block replicas |
//! | [`cache`] | sampled-LRU + TTL caches for query results and inference outputs, invalidated on write |
//! | [`batch`] | micro-batching of inference requests with identical-row coalescing |
//! | [`admission`] | token-bucket rate limiting and a bounded queue that sheds — not queues — overload |
//! | [`server`] | the [`Server`] front end tying them together, with stale-serve degradation under injected faults |
//! | [`workload`] | seed-deterministic open/closed-loop load generation ([`WorkloadGen`], experiment E17) |
//!
//! The correctness story is the test suite's: a served answer is proven
//! *bit-identical* to the unsharded, uncached, unbatched computation
//! (`tests/serving_equivalence.rs`), and the routing/caching invariants
//! are property-tested (`crates/serve/tests/proptest_serve.rs`).
//!
//! # Example
//!
//! ```
//! use scserve::{Outcome, ServeConfig, Server};
//! use scnosql::document::{Doc, Filter};
//! use simclock::SimTime;
//!
//! let mut server = Server::new(ServeConfig::default());
//! server
//!     .put("sensor-17", Doc::object([("kind", Doc::Str("air".into()))]), SimTime::ZERO)
//!     .unwrap();
//! let q = Filter::Eq("kind".into(), Doc::Str("air".into()));
//! let cold = server.query(&q, SimTime::from_millis(1)).unwrap();
//! let warm = server.query(&q, SimTime::from_millis(2)).unwrap();
//! assert!(matches!(cold.outcome, Outcome::Fresh(_)));
//! assert!(matches!(warm.outcome, Outcome::Cached(_)));
//! assert_eq!(cold.outcome.value(), warm.outcome.value());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod cache;
pub mod server;
pub mod shard;
pub mod workload;

pub use admission::{Admission, ServiceQueue, TokenBucket};
pub use batch::{row_fingerprint, BatchConfig, FlushedBatch, MicroBatcher, ReqId};
pub use cache::{CacheConfig, CacheStats, InferenceCache, LruTtlCache, QueryCache, QueryKey};
pub use server::{
    InferCompletion, InferSubmit, Outcome, Rows, ServeConfig, ServeStats, Served, Server,
    CACHE_HIT_COST,
};
pub use shard::{hash_bytes, rendezvous_pick, ShardMap};
pub use workload::{ArrivalMode, ServingReport, WorkloadConfig, WorkloadGen};
