//! # smartcity-core — the integrated cyberinfrastructure
//!
//! This crate wires every substrate into the four-layer architecture of the
//! paper's Fig. 1 and implements the application layer (§IV):
//!
//! - [`infrastructure`]: the [`infrastructure::Cyberinfrastructure`] facade:
//!   data layer (camera network + generators), hardware layer (fog topology
//!   plus DFS cluster), software layer (stream topics, NoSQL stores,
//!   compute), application layer (the apps below).
//! - [`pipeline`]: Fig. 4's end-to-end flow — raw sources → streaming
//!   ingestion → NoSQL storage → analysis (model inference) → visualization
//!   export.
//! - [`apps::vehicle`]: Fig. 5/6 — early-exit vehicle detection and
//!   classification (tiny model on the device, full model on the server).
//! - [`apps::actions`]: Fig. 7 — ResNet-block CNN + LSTM suspicious-behaviour
//!   recognition with two exit paths and entropy gating.
//! - [`apps::social`]: §IV-B — the investigation service around the
//!   multi-modal narrowing engine.
//! - [`apps::opioid`]: §V — the planned opioid-factor analysis, built on the
//!   MLlib substrate.
//! - [`viz`]: GeoJSON / JSON / SVG exporters (the D3 feed).
//! - [`artifacts`]: the deterministic dashboard artifact builder shared by
//!   the `city_dashboard` example and the golden-master suite.

pub mod apps;
pub mod artifacts;
pub mod infrastructure;
pub mod pipeline;
pub mod retention;
pub mod viz;
