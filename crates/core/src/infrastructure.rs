//! The four-layer cyberinfrastructure facade (paper Fig. 1).

use scdfs::DfsCluster;
use scfog::Topology;
use scgeo::cameras::{CameraId, CameraNetwork};
use scnosql::document::Collection;
use scnosql::wide_column::Table;
use scstream::Topic;

/// Health summary across the four layers.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Architectural layers present (always 4: data, hardware, software,
    /// application).
    pub layers: usize,
    /// Cameras registered in the data layer.
    pub cameras: usize,
    /// Nodes in the fog topology.
    pub fog_nodes: usize,
    /// Alive DFS datanodes / total.
    pub datanodes_alive: usize,
    /// Total DFS datanodes.
    pub datanodes_total: usize,
    /// Files stored in the DFS.
    pub dfs_files: usize,
    /// Events in the raw ingestion topic.
    pub raw_events: usize,
    /// Documents in the incident store.
    pub incident_docs: usize,
}

/// The integrated cyberinfrastructure: one value owning a configured
/// instance of every layer.
///
/// - **Data layer**: the DOTD-style [`CameraNetwork`].
/// - **Hardware layer**: the four-tier fog [`Topology`] and the
///   [`DfsCluster`] backing long-term storage.
/// - **Software layer**: the raw-ingestion [`Topic`], the incident
///   [`Collection`] (document store), and the annotation [`Table`]
///   (wide-column store).
/// - **Application layer**: constructed on demand from
///   [`crate::apps`].
///
/// # Examples
///
/// ```
/// use smartcity_core::infrastructure::Cyberinfrastructure;
///
/// let infra = Cyberinfrastructure::builder().seed(7).build();
/// let health = infra.health_report();
/// assert_eq!(health.layers, 4);
/// assert!(health.cameras > 200);
/// ```
#[derive(Debug)]
pub struct Cyberinfrastructure {
    cameras: CameraNetwork,
    fog: Topology,
    dfs: DfsCluster,
    raw_topic: Topic,
    incidents: Collection,
    annotations: Table,
}

/// Builder for [`Cyberinfrastructure`].
#[derive(Debug, Clone)]
pub struct CyberinfrastructureBuilder {
    seed: u64,
    datanodes: usize,
    replication: usize,
    block_size: usize,
    edges_per_fog: usize,
    fogs_per_server: usize,
    servers: usize,
    topic_partitions: u32,
}

impl Default for CyberinfrastructureBuilder {
    fn default() -> Self {
        CyberinfrastructureBuilder {
            seed: 0,
            datanodes: 6,
            replication: 3,
            block_size: 64 * 1024,
            edges_per_fog: 8,
            fogs_per_server: 4,
            servers: 2,
            topic_partitions: 4,
        }
    }
}

impl CyberinfrastructureBuilder {
    /// Sets the master seed (drives every generator).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the DFS size: datanode count and replication factor.
    pub fn dfs(mut self, datanodes: usize, replication: usize) -> Self {
        self.datanodes = datanodes;
        self.replication = replication;
        self
    }

    /// Sets the fog fan-outs.
    pub fn fog(mut self, edges_per_fog: usize, fogs_per_server: usize, servers: usize) -> Self {
        self.edges_per_fog = edges_per_fog;
        self.fogs_per_server = fogs_per_server;
        self.servers = servers;
        self
    }

    /// Sets the raw-topic partition count.
    pub fn partitions(mut self, partitions: u32) -> Self {
        self.topic_partitions = partitions;
        self
    }

    /// Builds the infrastructure.
    ///
    /// # Panics
    ///
    /// Panics if the DFS configuration is invalid (e.g. replication
    /// exceeding datanodes).
    pub fn build(self) -> Cyberinfrastructure {
        let mut incidents = Collection::new("incidents");
        incidents.create_index("kind");
        Cyberinfrastructure {
            cameras: CameraNetwork::louisiana_default(self.seed),
            fog: Topology::four_tier(self.edges_per_fog, self.fogs_per_server, self.servers),
            dfs: DfsCluster::new(self.datanodes, self.replication, self.block_size, self.seed)
                .expect("builder-validated DFS configuration"),
            raw_topic: Topic::new("raw-events", self.topic_partitions),
            incidents,
            annotations: Table::new("annotations", 4_096),
        }
    }
}

impl Cyberinfrastructure {
    /// Starts a builder with defaults.
    pub fn builder() -> CyberinfrastructureBuilder {
        CyberinfrastructureBuilder::default()
    }

    /// The camera network (data layer).
    pub fn cameras(&self) -> &CameraNetwork {
        &self.cameras
    }

    /// The fog topology (hardware layer).
    pub fn fog(&self) -> &Topology {
        &self.fog
    }

    /// The DFS cluster (hardware layer, long-term storage).
    pub fn dfs(&self) -> &DfsCluster {
        &self.dfs
    }

    /// Mutable DFS access.
    pub fn dfs_mut(&mut self) -> &mut DfsCluster {
        &mut self.dfs
    }

    /// The raw ingestion topic (software layer).
    pub fn raw_topic(&self) -> &Topic {
        &self.raw_topic
    }

    /// Mutable topic access.
    pub fn raw_topic_mut(&mut self) -> &mut Topic {
        &mut self.raw_topic
    }

    /// The incident document store (software layer).
    pub fn incidents(&self) -> &Collection {
        &self.incidents
    }

    /// Mutable incident-store access.
    pub fn incidents_mut(&mut self) -> &mut Collection {
        &mut self.incidents
    }

    /// The annotation wide-column table (software layer).
    pub fn annotations(&self) -> &Table {
        &self.annotations
    }

    /// Mutable annotation-table access.
    pub fn annotations_mut(&mut self) -> &mut Table {
        &mut self.annotations
    }

    /// Disjoint mutable borrows of the three stores the Fig. 4 pipeline
    /// writes: `(raw topic, incident collection, annotation table)`.
    pub fn pipeline_stores(&mut self) -> (&mut Topic, &mut Collection, &mut Table) {
        (
            &mut self.raw_topic,
            &mut self.incidents,
            &mut self.annotations,
        )
    }

    /// Archives a camera's video segment into the DFS under
    /// `/videos/<camera>/<segment>`.
    ///
    /// # Errors
    ///
    /// Propagates DFS errors (duplicate paths, insufficient nodes).
    pub fn archive_video_segment(
        &mut self,
        camera: CameraId,
        segment: u64,
        data: &[u8],
    ) -> Result<String, scdfs::DfsError> {
        let path = format!("/videos/{camera}/seg-{segment:06}.bin");
        self.dfs.create(&path, data)?;
        Ok(path)
    }

    /// Produces the layer-by-layer health report.
    pub fn health_report(&self) -> HealthReport {
        let dfs_stats = self.dfs.stats();
        HealthReport {
            layers: 4,
            cameras: self.cameras.len(),
            fog_nodes: self.fog.len(),
            datanodes_alive: dfs_stats.alive_nodes,
            datanodes_total: dfs_stats.nodes,
            dfs_files: dfs_stats.files,
            raw_events: self.raw_topic.total_events(),
            incident_docs: self.incidents.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfog::Tier;

    #[test]
    fn builder_defaults() {
        let infra = Cyberinfrastructure::builder().seed(1).build();
        let h = infra.health_report();
        assert_eq!(h.layers, 4);
        assert!(h.cameras > 200);
        assert_eq!(h.datanodes_total, 6);
        assert_eq!(h.datanodes_alive, 6);
        assert_eq!(h.dfs_files, 0);
    }

    #[test]
    fn builder_overrides() {
        let infra = Cyberinfrastructure::builder()
            .seed(2)
            .dfs(4, 2)
            .fog(2, 2, 1)
            .partitions(2)
            .build();
        assert_eq!(infra.dfs().stats().nodes, 4);
        assert_eq!(infra.fog().nodes_in_tier(Tier::Edge).len(), 4);
        assert_eq!(infra.raw_topic().partition_count(), 2);
    }

    #[test]
    fn archive_video_roundtrip() {
        let mut infra = Cyberinfrastructure::builder().seed(3).build();
        let cam = infra.cameras().cameras()[0].id;
        let data = vec![7u8; 100_000];
        let path = infra.archive_video_segment(cam, 1, &data).unwrap();
        assert_eq!(infra.dfs().read(&path).unwrap(), data);
        assert_eq!(infra.health_report().dfs_files, 1);
    }

    #[test]
    fn archive_survives_node_failure() {
        let mut infra = Cyberinfrastructure::builder().seed(4).build();
        let cam = infra.cameras().cameras()[0].id;
        let path = infra.archive_video_segment(cam, 2, &[1, 2, 3]).unwrap();
        infra.dfs_mut().kill_node(0).unwrap();
        infra.dfs_mut().kill_node(1).unwrap();
        assert!(infra.dfs().read(&path).is_ok(), "3-way replication");
    }

    #[test]
    fn duplicate_segment_rejected() {
        let mut infra = Cyberinfrastructure::builder().seed(5).build();
        let cam = infra.cameras().cameras()[0].id;
        infra.archive_video_segment(cam, 1, &[1]).unwrap();
        assert!(infra.archive_video_segment(cam, 1, &[2]).is_err());
    }
}
