//! The Fig. 4 data pipeline: collection → NoSQL storage → analysis →
//! visualization.
//!
//! "The raw input data are collected from multiple sources and stored in
//! NoSQL databases for analysis in analysis servers. Analysis servers run
//! different deep learning model\[s\] for inference and the result of inference
//! will be sent to the web server to be visualized on our website."

use sccompute::mllib::kmeans_ctx;
use scdata::city::{OpenCityGenerator, OpenRecord, OpenRecordKind};
use scdata::waze::{WazeGenerator, WazeReport};
use scgeo::corridor::Corridor;
use scgeo::GeoPoint;
use scnosql::document::{Collection, Doc, Filter};
use scnosql::wide_column::Table;
use scnosql::NosqlError;
use scpar::ScparConfig;
use scstream::{ConsumerGroup, ConsumerId, Event, Topic};
use sctelemetry::{
    Report, SpanContext, Telemetry, TelemetryHandle, TraceId, WorkDelta, STREAM_PIPELINE,
};
use serde_json::Value;
use simclock::SimTime;

use crate::viz::{dashboard, geojson_points, telemetry_panel, MapFeature, Series};

/// Metric name of the events-ingested counter.
pub const METRIC_INGESTED: &str = "smartcity_pipeline_ingested_total";
/// Metric name of the documents-stored counter.
pub const METRIC_STORED: &str = "smartcity_pipeline_stored_total";
/// Metric name of the annotation-cells counter.
pub const METRIC_ANNOTATED: &str = "smartcity_pipeline_annotated_total";
/// Metric name of the hot-spots gauge.
pub const METRIC_HOTSPOTS: &str = "smartcity_pipeline_hotspots";

/// End-of-run accounting for one pipeline execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Events published into the raw topic.
    pub ingested: usize,
    /// Documents persisted in the document store.
    pub stored: usize,
    /// Annotation cells written to the wide-column table.
    pub annotated: usize,
    /// Crime hot-spot centroids found by the mining stage.
    pub hotspots: Vec<GeoPoint>,
    /// The dashboard JSON the web layer would serve.
    pub dashboard: Value,
    /// The incident GeoJSON layer.
    pub geojson: Value,
}

impl Report for PipelineReport {
    fn kv(&self) -> Vec<(String, f64)> {
        vec![
            ("ingested".to_string(), self.ingested as f64),
            ("stored".to_string(), self.stored as f64),
            ("annotated".to_string(), self.annotated as f64),
            ("hotspots".to_string(), self.hotspots.len() as f64),
        ]
    }
}

/// The city data pipeline over a raw topic, document store, and annotation
/// table (typically the ones owned by
/// [`crate::infrastructure::Cyberinfrastructure`]).
#[derive(Debug)]
pub struct CityDataPipeline {
    seed: u64,
    records: usize,
    waze_reports: usize,
}

impl CityDataPipeline {
    /// Creates a pipeline generating `records` open-city records and
    /// `waze_reports` Waze reports from `seed`.
    pub fn new(seed: u64, records: usize, waze_reports: usize) -> Self {
        CityDataPipeline {
            seed,
            records,
            waze_reports,
        }
    }

    fn record_event(r: &OpenRecord) -> Event {
        let body = serde_json::json!({
            "source": "city",
            "kind": format!("{:?}", r.kind),
            "lat": r.location.lat(),
            "lon": r.location.lon(),
            "time_us": r.time.as_micros(),
        });
        Event::with_key(format!("city-{}", r.id), body.to_string().into_bytes())
            .header("source", "city")
            .at(r.time)
    }

    fn waze_event(r: &WazeReport) -> Event {
        let body = serde_json::json!({
            "source": "waze",
            "kind": format!("{:?}", r.kind),
            "lat": r.location.lat(),
            "lon": r.location.lon(),
            "time_us": r.time.as_micros(),
            "speed_kmh": r.speed_kmh,
        });
        Event::with_key(format!("waze-{}", r.id), body.to_string().into_bytes())
            .header("source", "waze")
            .at(r.time)
    }

    fn event_to_doc(event: &Event) -> Option<Doc> {
        let v: Value = serde_json::from_slice(event.payload()).ok()?;
        let obj = v.as_object()?;
        Some(Doc::object([
            ("source", Doc::Str(obj.get("source")?.as_str()?.to_string())),
            ("kind", Doc::Str(obj.get("kind")?.as_str()?.to_string())),
            (
                "geo",
                Doc::object([
                    ("lat", Doc::F64(obj.get("lat")?.as_f64()?)),
                    ("lon", Doc::F64(obj.get("lon")?.as_f64()?)),
                ]),
            ),
            (
                "time_us",
                Doc::I64(obj.get("time_us")?.as_i64().unwrap_or(0)),
            ),
        ]))
    }

    /// Starts building a configured pipeline run over the given substrates.
    ///
    /// Defaults: telemetry disabled, no dashboard panel, and the ambient
    /// [`ScparConfig`] (`SCPAR_THREADS` / available parallelism) for the
    /// fanned-out stages.
    ///
    /// ```
    /// # use smartcity_core::pipeline::CityDataPipeline;
    /// # use scnosql::document::Collection;
    /// # use scnosql::wide_column::Table;
    /// # use scstream::Topic;
    /// let mut topic = Topic::new("raw", 4);
    /// let mut store = Collection::new("incidents");
    /// store.create_index("kind");
    /// let mut annotations = Table::new("annotations", 1024);
    /// let report = CityDataPipeline::new(42, 120, 30)
    ///     .runner(&mut topic, &mut store, &mut annotations)
    ///     .run()
    ///     .expect("generated pipeline data is always valid");
    /// assert_eq!(report.ingested, 150);
    /// ```
    pub fn runner<'a>(
        &'a self,
        topic: &'a mut Topic,
        store: &'a mut Collection,
        annotations: &'a mut Table,
    ) -> RunOptions<'a> {
        RunOptions {
            pipeline: self,
            topic,
            store,
            annotations,
            telemetry: TelemetryHandle::disabled(),
            panel: None,
            par: ScparConfig::from_env(),
        }
    }

    /// Pipeline body behind [`RunOptions::run`]. Stage spans use a simulated
    /// clock advancing one microsecond per item handled, so identical seeds
    /// yield identical traces; the fanned-out stages chunk independently of
    /// the thread count, so reports and telemetry are too.
    fn run_with(
        &self,
        topic: &mut Topic,
        store: &mut Collection,
        annotations: &mut Table,
        telemetry: &TelemetryHandle,
        par: &ScparConfig,
    ) -> Result<PipelineReport, NosqlError> {
        // One causal trace per run: a `pipeline/run` root whose children are
        // the five stage spans, with ids derived from the seed so identical
        // seeds name identical traces at any thread count.
        let root_ctx = SpanContext::root(TraceId::derive(self.seed, STREAM_PIPELINE, 0));
        let mut sim_cursor: u64 = 0;
        let mut stage_seq: u64 = 0;
        let mut stage_span = |name: &str, items: usize, cursor: &mut u64| {
            let start = *cursor;
            *cursor += items as u64 + 1;
            telemetry.span_in(
                "smartcity",
                name,
                SimTime::from_micros(start),
                SimTime::from_micros(*cursor),
                root_ctx.child(stage_seq),
            );
            // One batch-aggregated work delta per stage; the span name
            // doubles as the kernel name (`pipeline/<stage>`).
            telemetry.work(name, WorkDelta::items(items as u64));
            stage_seq += 1;
        };

        // 1. Collection: raw sources → topic. Event construction (JSON
        //    serialization) fans out; publication stays serial and ordered.
        let mut city_gen = OpenCityGenerator::new(self.seed);
        let city_records = city_gen.stream(self.records);
        for event in scpar::par_map(par, &city_records, Self::record_event) {
            topic.publish(event);
        }
        let i10 = Corridor::new(
            "I-10",
            vec![GeoPoint::new(30.40, -91.30), GeoPoint::new(30.47, -91.00)],
        );
        let mut waze_gen = WazeGenerator::new(self.seed.wrapping_add(1));
        let waze_reports = waze_gen.stream(&i10, self.waze_reports);
        for event in scpar::par_map(par, &waze_reports, Self::waze_event) {
            topic.publish(event);
        }
        let ingested = topic.total_events();
        telemetry.counter_add(
            METRIC_INGESTED,
            "events published into the raw topic",
            ingested as u64,
        );
        stage_span("pipeline/ingest", ingested, &mut sim_cursor);

        // 2. Storage: consumer group drains the topic into the document
        //    store with committed offsets (at-least-once; dedup by id is the
        //    store's natural upsert semantics — here keys are unique).
        let mut group = ConsumerGroup::new("storage-writers", topic.partition_count())
            .with_telemetry(telemetry.clone());
        group.join(ConsumerId(0));
        loop {
            let batch = group.poll(ConsumerId(0), topic, 256);
            if batch.is_empty() {
                break;
            }
            for (pid, offset, event) in batch {
                if let Some(doc) = Self::event_to_doc(&event) {
                    store.insert(doc)?;
                }
                group.commit(pid, offset);
            }
        }
        let stored = store.len();
        telemetry.counter_add(
            METRIC_STORED,
            "documents persisted in the document store",
            stored as u64,
        );
        stage_span("pipeline/store", stored, &mut sim_cursor);

        // 3. Analysis: mine crime hot-spots with parallel-assignment k-means
        //    over the stored crime/911 documents, and annotate per-kind
        //    counts.
        let crime_points: Vec<Vec<f64>> = store
            .find(&Filter::Or(vec![
                Filter::Eq("kind".into(), Doc::Str("CrimeIncident".into())),
                Filter::Eq("kind".into(), Doc::Str("EmergencyCall".into())),
            ]))?
            .iter()
            .filter_map(|(_, d)| {
                Some(vec![
                    d.path("geo.lat")?.as_f64()?,
                    d.path("geo.lon")?.as_f64()?,
                ])
            })
            .collect();
        let mined_items = crime_points.len();
        let hotspots: Vec<GeoPoint> = if crime_points.len() >= 3 {
            let ctx = scneural::exec::ExecCtx::serial()
                .with_par(*par)
                .with_telemetry(telemetry.clone());
            let model = kmeans_ctx(&crime_points, 3, 25, self.seed, &ctx);
            model
                .centroids
                .iter()
                .map(|c| GeoPoint::new(c[0], c[1]))
                .collect()
        } else {
            Vec::new()
        };
        telemetry.gauge_set(
            METRIC_HOTSPOTS,
            "crime hot-spot centroids mined",
            hotspots.len() as i64,
        );
        stage_span("pipeline/mine", mined_items, &mut sim_cursor);

        // Per-kind counts fan out as parallel index reads over the shared
        // store (`&Collection` queries are thread-safe); the cell writes
        // stay serial and ordered.
        let mut annotated = 0;
        let counts = scpar::par_map(par, &OpenRecordKind::ALL, |kind| {
            let kind_name = format!("{kind:?}");
            let count = store.count(&Filter::Eq("kind".into(), Doc::Str(kind_name.clone())));
            (kind_name, count)
        });
        let mut kind_counts: Vec<(String, f64)> = Vec::new();
        for (kind_name, count) in counts {
            let count = count?;
            annotations.put(
                &format!("counts#{kind_name}"),
                "stats",
                "count",
                count.to_string().into_bytes(),
            )?;
            annotated += 1;
            kind_counts.push((kind_name, count as f64));
        }
        for (i, h) in hotspots.iter().enumerate() {
            annotations.put(
                &format!("hotspot#{i}"),
                "geo",
                "latlon",
                format!("{:.5},{:.5}", h.lat(), h.lon()).into_bytes(),
            )?;
            annotated += 1;
        }
        telemetry.counter_add(
            METRIC_ANNOTATED,
            "cells written to the annotation table",
            annotated as u64,
        );
        stage_span("pipeline/annotate", annotated, &mut sim_cursor);

        // 4. Visualization: dashboard JSON + incident GeoJSON.
        let features: Vec<MapFeature> = store
            .iter()
            .filter_map(|(_, d)| {
                Some(MapFeature {
                    location: GeoPoint::new(
                        d.path("geo.lat")?.as_f64()?,
                        d.path("geo.lon")?.as_f64()?,
                    ),
                    label: d.path("kind")?.as_str()?.to_string(),
                    category: d.path("source")?.as_str()?.to_string(),
                })
            })
            .collect();
        let geojson = geojson_points(&features);
        let dash = dashboard(
            &[
                ("ingested", ingested as f64),
                ("stored", stored as f64),
                ("hotspots", hotspots.len() as f64),
            ],
            &[Series {
                name: "records_by_kind".into(),
                points: kind_counts
                    .iter()
                    .enumerate()
                    .map(|(i, (_, c))| (i as f64, *c))
                    .collect(),
            }],
        );
        stage_span("pipeline/visualize", features.len(), &mut sim_cursor);
        telemetry.span_in(
            "smartcity",
            "pipeline/run",
            SimTime::ZERO,
            SimTime::from_micros(sim_cursor),
            root_ctx,
        );

        Ok(PipelineReport {
            ingested,
            stored,
            annotated,
            hotspots,
            dashboard: dash,
            geojson,
        })
    }
}

/// Builder for configured pipeline runs — the redesigned run API.
///
/// Obtained from [`CityDataPipeline::runner`]. Mirrors the `scfog`
/// `SimRunner` pattern: chain options, then [`RunOptions::run`].
#[derive(Debug)]
pub struct RunOptions<'a> {
    pipeline: &'a CityDataPipeline,
    topic: &'a mut Topic,
    store: &'a mut Collection,
    annotations: &'a mut Table,
    telemetry: TelemetryHandle,
    panel: Option<&'a std::sync::Arc<Telemetry>>,
    par: ScparConfig,
}

impl<'a> RunOptions<'a> {
    /// Routes per-stage counters and sim-time spans to `telemetry`.
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Records into `recorder` *and* embeds a `"telemetry"` dashboard panel
    /// built from its registry (the old `run_recorded` behaviour).
    pub fn recorder(mut self, recorder: &'a std::sync::Arc<Telemetry>) -> Self {
        self.telemetry = recorder.handle();
        self.panel = Some(recorder);
        self
    }

    /// Caps the worker pool used by the fanned-out stages at `threads`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.par = ScparConfig::with_threads(threads);
        self
    }

    /// Supplies a full parallelism config.
    pub fn par_config(mut self, par: ScparConfig) -> Self {
        self.par = par;
        self
    }

    /// Executes the pipeline.
    ///
    /// # Errors
    ///
    /// Propagates [`NosqlError`] from the storage and annotation stages
    /// (e.g. a malformed document rejected by the store).
    pub fn run(self) -> Result<PipelineReport, NosqlError> {
        let mut report = self.pipeline.run_with(
            self.topic,
            self.store,
            self.annotations,
            &self.telemetry,
            &self.par,
        )?;
        if let Some(recorder) = self.panel {
            if let Value::Object(dash) = &mut report.dashboard {
                dash.insert(
                    "telemetry".to_string(),
                    telemetry_panel(recorder.registry()),
                );
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pipeline(records: usize, waze: usize) -> (PipelineReport, Collection, Table) {
        let mut topic = Topic::new("raw", 4);
        let mut store = Collection::new("incidents");
        store.create_index("kind");
        let mut annotations = Table::new("annotations", 1024);
        let report = CityDataPipeline::new(11, records, waze)
            .runner(&mut topic, &mut store, &mut annotations)
            .run()
            .unwrap();
        (report, store, annotations)
    }

    #[test]
    fn every_event_lands_in_store() {
        let (report, store, _) = run_pipeline(200, 50);
        assert_eq!(report.ingested, 250);
        assert_eq!(report.stored, 250);
        assert_eq!(store.len(), 250);
    }

    #[test]
    fn hotspots_found_near_generators() {
        let (report, _, _) = run_pipeline(600, 0);
        assert_eq!(report.hotspots.len(), 3);
        // Generator hot spots are within ~8 km of the Baton Rouge anchor.
        let anchor = GeoPoint::new(30.4515, -91.1871);
        for h in &report.hotspots {
            assert!(anchor.haversine_m(*h) < 10_000.0, "{h}");
        }
    }

    #[test]
    fn annotations_written_for_every_kind() {
        let (_, _, annotations) = run_pipeline(150, 20);
        for kind in OpenRecordKind::ALL {
            let cell = annotations.get(&format!("counts#{kind:?}"), "stats", "count");
            assert!(cell.is_some(), "{kind:?} count missing");
        }
    }

    #[test]
    fn dashboard_and_geojson_populated() {
        let (report, _, _) = run_pipeline(100, 10);
        assert_eq!(report.dashboard["kpis"]["ingested"], 110.0);
        assert_eq!(report.geojson["features"].as_array().unwrap().len(), 110);
    }

    #[test]
    fn counts_sum_to_city_records() {
        let (report, store, _) = run_pipeline(140, 0);
        let total: usize = OpenRecordKind::ALL
            .iter()
            .map(|k| {
                store
                    .count(&Filter::Eq("kind".into(), Doc::Str(format!("{k:?}"))))
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 140);
        assert_eq!(report.annotated, 7 + report.hotspots.len());
    }

    #[test]
    fn recorded_run_mirrors_report_and_adds_panel() {
        let t = Telemetry::shared();
        let mut topic = Topic::new("raw", 4);
        let mut store = Collection::new("incidents");
        store.create_index("kind");
        let mut annotations = Table::new("annotations", 1024);
        let report = CityDataPipeline::new(11, 200, 50)
            .runner(&mut topic, &mut store, &mut annotations)
            .recorder(&t)
            .run()
            .unwrap();

        let reg = t.registry();
        let counter = |n: &str| reg.get(n).unwrap().as_counter().unwrap().get();
        assert_eq!(counter(METRIC_INGESTED) as usize, report.ingested);
        assert_eq!(counter(METRIC_STORED) as usize, report.stored);
        assert_eq!(counter(METRIC_ANNOTATED) as usize, report.annotated);
        assert_eq!(
            reg.get(METRIC_HOTSPOTS).unwrap().as_gauge().unwrap().get() as usize,
            report.hotspots.len()
        );
        // The storage consumer group reports through the same recorder.
        assert_eq!(counter(scstream::METRIC_COMMITS) as usize, report.ingested);

        // Plain KPIs unchanged; the dashboard gains the telemetry panel.
        assert_eq!(report.dashboard["kpis"]["ingested"], 250.0);
        let rows = report.dashboard["telemetry"]["metrics"].as_array().unwrap();
        assert!(rows.len() >= 5, "panel covers the pipeline metrics");

        // A `pipeline/run` root plus five ordered stage spans with a
        // deterministic sim-time clock (trace order is (at, target, name),
        // so the t=0 root sorts between `ingest` and `store`).
        let trace = t.trace();
        let spans: Vec<_> = trace
            .iter()
            .filter_map(|r| match r {
                sctelemetry::TraceRecord::Span(s) => Some(s.name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                "pipeline/ingest",
                "pipeline/run",
                "pipeline/store",
                "pipeline/mine",
                "pipeline/annotate",
                "pipeline/visualize"
            ]
        );
        // The run root's trace id is seed-derived and every stage span is
        // its direct child.
        let root = trace
            .iter()
            .find_map(|r| match r {
                sctelemetry::TraceRecord::Span(s) if s.name == "pipeline/run" => s.ctx,
                _ => None,
            })
            .expect("root span carries a context");
        assert_eq!(root.trace, TraceId::derive(11, STREAM_PIPELINE, 0));
        for r in &trace {
            if let sctelemetry::TraceRecord::Span(s) = r {
                if s.name != "pipeline/run" {
                    let ctx = s.ctx.expect("stage spans carry contexts");
                    assert_eq!(ctx.parent, Some(root.span));
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _, _) = run_pipeline(100, 20);
        let (b, _, _) = run_pipeline(100, 20);
        assert_eq!(a.hotspots, b.hotspots);
        assert_eq!(a.stored, b.stored);
    }

    fn run_with_threads(threads: usize) -> (PipelineReport, String) {
        let t = Telemetry::shared();
        let mut topic = Topic::new("raw", 4);
        let mut store = Collection::new("incidents");
        store.create_index("kind");
        let mut annotations = Table::new("annotations", 1024);
        let report = CityDataPipeline::new(11, 300, 60)
            .runner(&mut topic, &mut store, &mut annotations)
            .telemetry(t.handle())
            .threads(threads)
            .run()
            .unwrap();
        (report, sctelemetry::prometheus_text(t.registry()))
    }

    #[test]
    fn report_and_telemetry_are_thread_count_independent() {
        let (serial, serial_snap) = run_with_threads(1);
        for threads in [2, 8] {
            let (par, par_snap) = run_with_threads(threads);
            assert_eq!(serial, par, "{threads}-thread report differs");
            assert_eq!(serial_snap, par_snap, "{threads}-thread snapshot differs");
        }
    }

    #[test]
    fn report_trait_mirrors_fields() {
        let (report, _, _) = run_pipeline(100, 10);
        let kv = report.kv();
        assert_eq!(kv[0], ("ingested".to_string(), 110.0));
        assert_eq!(report.to_json()["hotspots"], report.hotspots.len() as f64);
    }
}
