//! Visualization exports (paper §II-C3).
//!
//! The paper visualizes raw and analyzed data with D3 on a web frontend; the
//! cyberinfrastructure's job is to emit the artifacts that frontend consumes.
//! This module produces GeoJSON feature collections, JSON dashboard
//! documents, and self-contained SVG charts.

use scgeo::GeoPoint;
use sctelemetry::{Metric, MetricsRegistry, Report};
use serde_json::{json, Map, Value};

/// A point feature destined for a map layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MapFeature {
    /// Location.
    pub location: GeoPoint,
    /// Display label.
    pub label: String,
    /// Category (drives marker styling downstream).
    pub category: String,
}

/// Builds a GeoJSON `FeatureCollection` from point features.
///
/// # Examples
///
/// ```
/// use scgeo::GeoPoint;
/// use smartcity_core::viz::{geojson_points, MapFeature};
///
/// let features = vec![MapFeature {
///     location: GeoPoint::new(30.45, -91.18),
///     label: "cam-0001".into(),
///     category: "camera".into(),
/// }];
/// let doc = geojson_points(&features);
/// assert_eq!(doc["type"], "FeatureCollection");
/// assert_eq!(doc["features"].as_array().unwrap().len(), 1);
/// ```
pub fn geojson_points(features: &[MapFeature]) -> Value {
    let features: Vec<Value> = features
        .iter()
        .map(|f| {
            json!({
                "type": "Feature",
                "geometry": {
                    "type": "Point",
                    // GeoJSON is [lon, lat].
                    "coordinates": [f.location.lon(), f.location.lat()],
                },
                "properties": {
                    "label": f.label,
                    "category": f.category,
                },
            })
        })
        .collect();
    json!({ "type": "FeatureCollection", "features": features })
}

/// A labelled numeric series for dashboards and charts.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Builds a JSON dashboard document: named KPIs plus named series — the
/// shape a D3 page would fetch.
pub fn dashboard(kpis: &[(&str, f64)], series: &[Series]) -> Value {
    let mut kpi_map = Map::new();
    for (k, v) in kpis {
        kpi_map.insert((*k).to_string(), json!(v));
    }
    json!({
        "kpis": Value::Object(kpi_map),
        "series": series.iter().map(|s| json!({
            "name": s.name,
            "points": s.points.iter().map(|(x, y)| json!([x, y])).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    })
}

/// Builds a JSON dashboard from any set of layer reports via the shared
/// [`sctelemetry::Report`] trait: each report's [`Report::kv`] pairs become
/// a named panel alongside the explicit KPIs and series, so a fog
/// `SimReport`, a pipeline `PipelineReport`, and a DFS `ClusterStats` all
/// render through the same code path.
pub fn dashboard_with_reports(
    kpis: &[(&str, f64)],
    series: &[Series],
    reports: &[(&str, &dyn Report)],
) -> Value {
    let mut doc = dashboard(kpis, series);
    let mut panels = Map::new();
    for (name, report) in reports {
        panels.insert((*name).to_string(), report.to_json());
    }
    if let Value::Object(map) = &mut doc {
        map.insert("reports".to_string(), Value::Object(panels));
    }
    doc
}

/// Builds the dashboard's "telemetry" panel from a live metrics registry:
/// one row per metric, counters/gauges as plain values and histograms as
/// `count/mean/p50/p95/p99` summaries. Registry iteration is name-ordered,
/// so the panel is deterministic for a deterministic run.
pub fn telemetry_panel(registry: &MetricsRegistry) -> Value {
    let mut rows: Vec<Value> = Vec::new();
    registry.for_each(|name, entry| {
        let row = match &entry.metric {
            Metric::Counter(c) => json!({
                "name": name,
                "kind": "counter",
                "help": entry.help,
                "value": c.get(),
            }),
            Metric::Gauge(g) => json!({
                "name": name,
                "kind": "gauge",
                "help": entry.help,
                "value": g.get(),
            }),
            Metric::Histogram(h) => {
                let s = h.snapshot();
                json!({
                    "name": name,
                    "kind": "histogram",
                    "help": entry.help,
                    "count": s.count,
                    "mean": s.mean(),
                    "p50": s.percentile(0.50),
                    "p95": s.percentile(0.95),
                    "p99": s.percentile(0.99),
                })
            }
        };
        rows.push(row);
    });
    json!({ "metrics": rows })
}

/// Renders a simple SVG line chart of one or more series.
///
/// Returns a complete `<svg>` document string; panics never — empty series
/// produce an empty plot area.
pub fn svg_line_chart(title: &str, series: &[Series], width: u32, height: u32) -> String {
    let (w, h) = (width.max(100) as f64, height.max(80) as f64);
    let margin = 40.0;
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    let (x_min, x_max) = bounds(all.iter().map(|p| p.0));
    let (y_min, y_max) = bounds(all.iter().map(|p| p.1));
    let sx = |x: f64| margin + (x - x_min) / (x_max - x_min).max(1e-12) * (w - 2.0 * margin);
    let sy = |y: f64| h - margin - (y - y_min) / (y_max - y_min).max(1e-12) * (h - 2.0 * margin);

    let palette = [
        "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
    ];
    let mut body = String::new();
    for (i, s) in series.iter().enumerate() {
        if s.points.is_empty() {
            continue;
        }
        let path: Vec<String> = s
            .points
            .iter()
            .enumerate()
            .map(|(j, (x, y))| {
                format!(
                    "{}{:.2},{:.2}",
                    if j == 0 { "M" } else { "L" },
                    sx(*x),
                    sy(*y)
                )
            })
            .collect();
        let color = palette[i % palette.len()];
        body.push_str(&format!(
            "<path d=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            path.join(" ")
        ));
        body.push_str(&format!(
            "<text x=\"{:.0}\" y=\"{:.0}\" fill=\"{color}\" font-size=\"12\">{}</text>\n",
            w - margin + 4.0,
            sy(s.points.last().expect("non-empty").1),
            escape(&s.name)
        ));
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {w} {h}\">\n<text x=\"{:.0}\" y=\"20\" font-size=\"14\" \
         font-weight=\"bold\">{}</text>\n<rect x=\"{margin}\" y=\"{margin}\" \
         width=\"{:.0}\" height=\"{:.0}\" fill=\"none\" stroke=\"#ccc\"/>\n{body}</svg>",
        margin,
        escape(title),
        w - 2.0 * margin,
        h - 2.0 * margin,
    )
}

/// Renders a simple SVG bar chart from labelled values.
pub fn svg_bar_chart(title: &str, bars: &[(String, f64)], width: u32, height: u32) -> String {
    let (w, h) = (width.max(100) as f64, height.max(80) as f64);
    let margin = 40.0;
    let max = bars
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let slot = (w - 2.0 * margin) / bars.len().max(1) as f64;
    let mut body = String::new();
    for (i, (label, v)) in bars.iter().enumerate() {
        let bh = (v / max) * (h - 2.0 * margin);
        let x = margin + i as f64 * slot;
        body.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#1f77b4\"/>\n",
            x + slot * 0.1,
            h - margin - bh,
            slot * 0.8,
            bh
        ));
        body.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"middle\">{}</text>\n",
            x + slot * 0.5,
            h - margin + 12.0,
            escape(label)
        ));
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {w} {h}\">\n<text x=\"{margin}\" y=\"20\" font-size=\"14\" \
         font-weight=\"bold\">{}</text>\n{body}</svg>",
        escape(title),
    )
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if min > max {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature(lat: f64, lon: f64) -> MapFeature {
        MapFeature {
            location: GeoPoint::new(lat, lon),
            label: "x".into(),
            category: "incident".into(),
        }
    }

    #[test]
    fn geojson_structure() {
        let doc = geojson_points(&[feature(30.0, -91.0), feature(31.0, -90.0)]);
        assert_eq!(doc["type"], "FeatureCollection");
        let feats = doc["features"].as_array().unwrap();
        assert_eq!(feats.len(), 2);
        // lon first per spec.
        assert_eq!(feats[0]["geometry"]["coordinates"][0], -91.0);
        assert_eq!(feats[0]["geometry"]["coordinates"][1], 30.0);
    }

    #[test]
    fn dashboard_shape() {
        let doc = dashboard(
            &[("cameras", 240.0), ("incidents", 17.0)],
            &[Series {
                name: "latency".into(),
                points: vec![(0.0, 1.0), (1.0, 0.5)],
            }],
        );
        assert_eq!(doc["kpis"]["cameras"], 240.0);
        assert_eq!(doc["series"][0]["name"], "latency");
        assert_eq!(doc["series"][0]["points"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn dashboard_with_reports_embeds_report_panels() {
        struct Stub;
        impl Report for Stub {
            fn kv(&self) -> Vec<(String, f64)> {
                vec![("jobs".to_string(), 42.0)]
            }
        }
        let doc =
            dashboard_with_reports(&[("cameras", 240.0)], &[], &[("fog", &Stub as &dyn Report)]);
        assert_eq!(doc["kpis"]["cameras"], 240.0);
        assert_eq!(doc["reports"]["fog"]["jobs"], 42.0);
    }

    #[test]
    fn telemetry_panel_renders_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "events")
            .as_counter()
            .unwrap()
            .add(3);
        reg.gauge("b_items", "queue depth")
            .as_gauge()
            .unwrap()
            .set(-2);
        let h = reg.exact_histogram("c_seconds", "latency");
        let h = h.as_histogram().unwrap();
        h.observe(1.0);
        h.observe(3.0);

        let panel = telemetry_panel(&reg);
        let rows = panel["metrics"].as_array().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0]["kind"], "counter");
        assert_eq!(rows[0]["value"], 3.0);
        assert_eq!(rows[1]["kind"], "gauge");
        assert_eq!(rows[1]["value"], -2.0);
        assert_eq!(rows[2]["kind"], "histogram");
        assert_eq!(rows[2]["count"], 2.0);
        assert_eq!(rows[2]["mean"], 2.0);
        assert_eq!(rows[2]["p99"], 3.0);
    }

    #[test]
    fn svg_line_chart_valid() {
        let svg = svg_line_chart(
            "Latency vs threshold",
            &[Series {
                name: "p95".into(),
                points: vec![(0.0, 2.0), (0.5, 1.0), (1.0, 3.0)],
            }],
            400,
            300,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<path"));
        assert!(svg.contains("p95"));
    }

    #[test]
    fn svg_bar_chart_valid() {
        let svg = svg_bar_chart(
            "Cameras per city",
            &[("Baton Rouge".into(), 41.0), ("NOLA".into(), 36.0)],
            400,
            300,
        );
        assert!(svg.contains("<rect"));
        assert!(svg.contains("Baton Rouge"));
    }

    #[test]
    fn svg_escapes_labels() {
        let svg = svg_bar_chart("a<b&c", &[("x<y".into(), 1.0)], 200, 100);
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn empty_series_no_panic() {
        let svg = svg_line_chart("empty", &[], 200, 100);
        assert!(svg.starts_with("<svg"));
        let svg = svg_bar_chart("empty", &[], 200, 100);
        assert!(svg.starts_with("<svg"));
    }
}
