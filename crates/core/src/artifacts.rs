//! Deterministic dashboard artifact builder.
//!
//! One function, [`build_dashboard_artifacts`], produces every file the
//! `city_dashboard` example writes — incident GeoJSON, dashboard JSON,
//! SVG charts, the cross-layer report panel, and a Prometheus metrics
//! snapshot — as in-memory strings, as a pure function of `(seed,
//! records, waze)`.
//!
//! Factoring the builder out of the example buys two things:
//!
//! - the example shrinks to "build, write to disk, print sizes", and
//! - the golden-master suite (`tests/golden_dashboard.rs`) can assert the
//!   seed-42 artifacts **byte-for-byte** against checked-in snapshots,
//!   turning any accidental nondeterminism — map-iteration ordering,
//!   float formatting drift, thread-count leakage — into a test failure
//!   with a diff.
//!
//! The builder runs the full stack: the mining pipeline with a telemetry
//! recorder, fog placement sweeps, and a serving-tier workload replayed
//! through [`scserve`] (shard routing, caches, micro-batched inference,
//! admission control) whose `scserve_*` metrics land in the same
//! registry. `SCPAR_THREADS` only changes the worker count, never a byte
//! of output — the CI matrix runs the golden test at 1 and 8 threads
//! against the same snapshots.

use scfog::{FogSimulator, Placement, Topology, Workload};
use scneural::layers::{Dense, Relu};
use scneural::net::Sequential;
use scobserve::{chrome_trace, evaluate, folded_stacks, SloRule, TraceAnalysis, TraceForest};
use scprof::{CostDimension, Profiler};
use scserve::{ServeConfig, Server, WorkloadConfig, WorkloadGen};
use sctelemetry::{prometheus_text, Report, Telemetry};
use serde_json::{json, Value};

use crate::infrastructure::Cyberinfrastructure;
use crate::pipeline::CityDataPipeline;
use crate::viz::{dashboard_with_reports, svg_bar_chart, svg_line_chart, telemetry_panel, Series};

/// Everything the city dashboard ships, as strings keyed by file name.
#[derive(Debug, Clone)]
pub struct DashboardArtifacts {
    /// `incidents.geojson` — the incident map layer.
    pub incidents_geojson: String,
    /// `dashboard.json` — the KPI dashboard document.
    pub dashboard_json: String,
    /// `coverage.svg` — cameras-per-city bar chart.
    pub coverage_svg: String,
    /// `fog_latency.svg` — latency-vs-escalation line chart.
    pub fog_latency_svg: String,
    /// `layers.json` — cross-layer report panel (pipeline, fog, DFS,
    /// serving), plus the `critical_path` and `alerts` observability
    /// panels.
    pub layers_json: String,
    /// `metrics.prom` — Prometheus text snapshot of the whole run.
    pub metrics_prom: String,
    /// `trace.json` — Chrome-trace events for the p50/p99/max exemplar
    /// requests, their critical paths, a folded-stack flamegraph, and the
    /// SLO alert report.
    pub trace_json: String,
    /// Events persisted by the pipeline (for log lines).
    pub stored: usize,
    /// Crime hot-spots found (for log lines).
    pub hotspots: usize,
    /// SLO alerts fired by the baseline run (expected: 0; for log lines).
    pub alerts: usize,
}

impl DashboardArtifacts {
    /// `(file name, contents)` pairs in write order.
    pub fn files(&self) -> Vec<(&'static str, &str)> {
        vec![
            ("incidents.geojson", self.incidents_geojson.as_str()),
            ("dashboard.json", self.dashboard_json.as_str()),
            ("coverage.svg", self.coverage_svg.as_str()),
            ("fog_latency.svg", self.fog_latency_svg.as_str()),
            ("layers.json", self.layers_json.as_str()),
            ("metrics.prom", self.metrics_prom.as_str()),
            ("trace.json", self.trace_json.as_str()),
        ]
    }
}

/// Builds every dashboard artifact for `(seed, records, waze)`.
/// Deterministic: the same inputs yield byte-identical strings on every
/// run, platform, and `SCPAR_THREADS` setting.
///
/// # Panics
///
/// Panics only if generated pipeline data fails validation, which would
/// be a bug in the generators, or on JSON serialization failure.
pub fn build_dashboard_artifacts(seed: u64, records: usize, waze: usize) -> DashboardArtifacts {
    // 1. Mining pipeline with a telemetry recorder: stage spans, counters,
    //    and the storage consumer group's metrics in one registry. The
    //    recorder is wrapped in a work-accounting profiler, so per-kernel
    //    flops/bytes/items from every layer land in the profile panel.
    let telemetry = Telemetry::shared();
    let profiler = Profiler::shared_wrapping(telemetry.clone());
    let mut infra = Cyberinfrastructure::builder().seed(seed).build();
    let pipeline = CityDataPipeline::new(seed, records, waze);
    let (topic, store, annotations) = infra.pipeline_stores();
    let mut report = pipeline
        .runner(topic, store, annotations)
        .telemetry(profiler.handle())
        .run()
        .expect("generated pipeline data is always valid");
    if let Value::Object(dash) = &mut report.dashboard {
        dash.insert(
            "telemetry".to_string(),
            telemetry_panel(telemetry.registry()),
        );
    }

    let incidents_geojson =
        serde_json::to_string_pretty(&report.geojson).expect("geojson serializes");
    let dashboard_json =
        serde_json::to_string_pretty(&report.dashboard).expect("dashboard serializes");

    // 2. Camera coverage bar chart (the Fig. 2 companion).
    let coverage = infra.cameras().coverage_report();
    let bars: Vec<(String, f64)> = coverage
        .iter()
        .map(|c| (c.city.clone(), c.cameras as f64))
        .collect();
    let coverage_svg = svg_bar_chart("DOTD cameras per city", &bars, 640, 360);

    // 3. Fog placement latency chart (the Fig. 3 companion).
    let sim = FogSimulator::new(Topology::four_tier(8, 4, 2));
    let mut latency_series = Vec::new();
    for (name, placement) in [
        (
            "early-exit",
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ),
        (
            "fog-assisted",
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ),
    ] {
        let points: Vec<(f64, f64)> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&esc| {
                let w = Workload::with_escalation(200, 100_000, 20.0, esc, seed.wrapping_add(1));
                (
                    esc,
                    sim.runner(&w).placement(placement).run().mean_latency_s,
                )
            })
            .collect();
        latency_series.push(Series {
            name: name.into(),
            points,
        });
    }
    let fog_latency_svg =
        svg_line_chart("Mean latency vs escalation rate", &latency_series, 640, 360);

    // 4. Serving tier: replay a dashboard-style read/write/inference mix
    //    through scserve so its caches, batches, and admission metrics
    //    join the registry.
    let model = Sequential::new()
        .with(Dense::new(8, 16, seed.wrapping_add(2)))
        .with(Relu::new())
        .with(Dense::new(16, 4, seed.wrapping_add(3)));
    let mut server = Server::new(ServeConfig::default())
        .with_model(model)
        .with_ctx(scneural::exec::ExecCtx::from_env())
        .with_telemetry(profiler.handle())
        .with_trace_seed(seed);
    let serving_report = WorkloadGen::new(WorkloadConfig {
        seed,
        requests: 600,
        ..WorkloadConfig::default()
    })
    .run(&mut server);

    // 5. Cross-layer report panel: pipeline, fog, DFS, and serving all
    //    render through the shared `Report` trait.
    let w = Workload::with_escalation(200, 100_000, 20.0, 0.3, seed.wrapping_add(1));
    let fog_report = sim
        .runner(&w)
        .placement(Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        })
        .telemetry(profiler.handle())
        .trace_seed(seed)
        .run();
    let dfs_stats = infra.dfs().stats();

    // 6. Observability: assemble the causal span forest recorded by the
    //    pipeline, fog, and serving runs, extract exemplar critical paths
    //    for the serving requests, and evaluate the baseline SLO rules
    //    (which a healthy run must pass alert-free).
    let analysis = TraceAnalysis::new(&telemetry);
    let exemplars = analysis.exemplar_paths("request/");
    let critical_path_panel: Vec<Value> = exemplars
        .iter()
        .map(|(ex, path)| {
            json!({
                "label": ex.label,
                "trace": ex.trace.as_hex(),
                "latency_s": ex.value,
                "path": path.as_ref().map(|p| p.render()),
                "total_us": path.as_ref().map(|p| p.total().as_micros()),
            })
        })
        .collect();
    let rules = baseline_slo_rules();
    let streams = vec![
        analysis.availability("request/"),
        analysis.latency("request/", SERVE_LATENCY_BOUND_S),
        analysis.availability("job/"),
    ];
    let alert_report = evaluate(&rules, &streams);
    telemetry.handle().gauge_set(
        "smartcity_observe_alerts",
        "SLO alerts fired by the dashboard baseline run",
        alert_report.len() as i64,
    );

    // The trace artifact carries only the exemplar traces (p50/p99/max),
    // keeping the golden snapshot reviewable.
    let exemplar_ids: std::collections::BTreeSet<_> =
        exemplars.iter().map(|(ex, _)| ex.trace).collect();
    let sub_forest = TraceForest {
        traces: analysis
            .forest
            .traces
            .iter()
            .filter(|t| exemplar_ids.contains(&t.trace))
            .cloned()
            .collect(),
        unattributed: Vec::new(),
    };
    // Deterministic per-kernel profile: the integer work core is exact at
    // any thread count, and rates use the pipeline's *simulated* elapsed
    // time (1 µs per item plus 1 µs per stage), so the panel is golden-safe.
    let prof_report = profiler.report();
    let pipeline_sim_us: u64 = prof_report
        .kernels
        .iter()
        .filter(|k| k.name.starts_with("pipeline/"))
        .map(|k| k.work.items + 1)
        .sum();
    let sim_elapsed_s = pipeline_sim_us as f64 * 1e-6;
    let profile_panel: Vec<Value> = prof_report
        .top_by_cost(10)
        .iter()
        .map(|k| {
            json!({
                "kernel": k.name,
                "flops": k.work.flops,
                "bytes": k.work.bytes,
                "items": k.work.items,
                "pct_cost": format!("{:.2}", prof_report.pct_cost(k)),
                "gflops_per_s": format!("{:.6}", k.gflops_per_s(sim_elapsed_s)),
            })
        })
        .collect();

    let mut trace_doc = chrome_trace(&sub_forest);
    if let Value::Object(obj) = &mut trace_doc {
        obj.insert(
            "critical_path".to_string(),
            Value::Array(critical_path_panel.clone()),
        );
        obj.insert("alerts".to_string(), alert_report.to_json_full());
        obj.insert(
            "flamegraph".to_string(),
            Value::String(folded_stacks(&sub_forest)),
        );
        obj.insert(
            "work_flamegraph".to_string(),
            Value::String(prof_report.folded(CostDimension::Flops)),
        );
    }
    let trace_json = serde_json::to_string_pretty(&trace_doc).expect("trace doc serializes");

    // 7. Cross-layer report panel: pipeline, fog, DFS, and serving all
    //    render through the shared `Report` trait, joined by the
    //    observability panels.
    let mut layers = dashboard_with_reports(
        &[("layers", 4.0)],
        &[],
        &[
            ("pipeline", &report as &dyn Report),
            ("fog", &fog_report as &dyn Report),
            ("dfs", &dfs_stats as &dyn Report),
            ("serving", &serving_report as &dyn Report),
        ],
    );
    if let Value::Object(obj) = &mut layers {
        obj.insert(
            "critical_path".to_string(),
            Value::Array(critical_path_panel),
        );
        obj.insert("alerts".to_string(), alert_report.to_json_full());
        obj.insert("profile".to_string(), Value::Array(profile_panel));
    }
    let layers_json = serde_json::to_string_pretty(&layers).expect("layers serialize");

    // 8. Prometheus scrape snapshot of the whole run, including the
    //    `smartcity_prof_*` work-counter family.
    profiler
        .publish_metrics(telemetry.registry())
        .expect("prof metric family has no name collisions");
    let metrics_prom = prometheus_text(telemetry.registry());

    DashboardArtifacts {
        incidents_geojson,
        dashboard_json,
        coverage_svg,
        fog_latency_svg,
        layers_json,
        metrics_prom,
        trace_json,
        stored: report.stored,
        hotspots: report.hotspots.len(),
        alerts: alert_report.len(),
    }
}

/// Latency bound (seconds) the baseline serving SLO holds requests to.
pub const SERVE_LATENCY_BOUND_S: f64 = 0.05;

/// The SLO rules the dashboard baseline is evaluated against: serving
/// availability and latency, plus fog job loss. A quiet seed-42 run fires
/// zero alerts; fault/overload sweeps (bench E18) must trip them.
pub fn baseline_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule::availability("serve_availability", 0.99),
        SloRule::latency("serve_latency", 0.99, SERVE_LATENCY_BOUND_S),
        SloRule::loss("fog_jobs", 0.99),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_reproducible() {
        let a = build_dashboard_artifacts(5, 120, 30);
        let b = build_dashboard_artifacts(5, 120, 30);
        assert_eq!(a.dashboard_json, b.dashboard_json);
        assert_eq!(a.metrics_prom, b.metrics_prom);
        assert_eq!(a.layers_json, b.layers_json);
        assert_eq!(a.incidents_geojson, b.incidents_geojson);
    }

    #[test]
    fn artifacts_depend_on_seed() {
        let a = build_dashboard_artifacts(5, 120, 30);
        let b = build_dashboard_artifacts(6, 120, 30);
        assert_ne!(a.dashboard_json, b.dashboard_json);
    }

    #[test]
    fn baseline_run_is_alert_free_with_exemplar_paths() {
        let a = build_dashboard_artifacts(5, 120, 30);
        assert_eq!(a.alerts, 0, "a healthy baseline must not page anyone");
        let trace: Value = serde_json::from_str(&a.trace_json).unwrap();
        let cp = trace["critical_path"].as_array().unwrap();
        eprintln!("critical_path panel: {cp:#?}");
        let labels: Vec<_> = cp.iter().map(|e| e["label"].as_str().unwrap()).collect();
        assert_eq!(labels, ["p50", "p99", "max"]);
        for e in cp {
            assert!(e["path"].as_str().is_some(), "exemplar has a critical path");
            assert!(e["trace"].as_str().unwrap().len() == 16);
        }
        assert!(!trace["traceEvents"].as_array().unwrap().is_empty());
        assert!(trace["flamegraph"].as_str().unwrap().contains("scserve"));
        let layers: Value = serde_json::from_str(&a.layers_json).unwrap();
        assert!(layers["alerts"]["compliance"].as_array().unwrap().len() == 3);
    }

    #[test]
    fn profile_panel_ranks_kernels_with_rates() {
        let a = build_dashboard_artifacts(5, 120, 30);
        let layers: Value = serde_json::from_str(&a.layers_json).unwrap();
        let panel = layers["profile"].as_array().unwrap();
        assert!(!panel.is_empty() && panel.len() <= 10);
        let kernels: Vec<_> = panel
            .iter()
            .map(|e| e["kernel"].as_str().unwrap())
            .collect();
        assert!(kernels.iter().any(|k| k.starts_with("compute/kmeans/")));
        assert!(kernels.iter().any(|k| k.starts_with("fog/")));
        for e in panel {
            assert!(e["gflops_per_s"].as_str().is_some());
        }
        assert!(a.metrics_prom.contains("smartcity_prof_kernel_flops_total"));
        let trace: Value = serde_json::from_str(&a.trace_json).unwrap();
        let folded = trace["work_flamegraph"].as_str().unwrap();
        assert!(folded.contains("compute;kmeans;assign "));
    }

    #[test]
    fn serving_metrics_reach_the_registry() {
        let a = build_dashboard_artifacts(5, 120, 30);
        assert!(
            a.metrics_prom.contains("scserve_requests_total"),
            "serving metrics must land in the shared registry"
        );
        assert!(a.metrics_prom.contains("scserve_cache_hit_total"));
        assert!(a.layers_json.contains("\"serving\""));
    }
}
