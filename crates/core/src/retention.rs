//! The secure law-enforcement upload server with 90-day retention
//! (paper §II-A4).
//!
//! "The crime data are uploaded to a secure web server in the LSU campus
//! through a unique URL address by agencies on the first day of each month.
//! Files uploaded to the secure web server are deleted after 90 days."
//!
//! [`SecureCrimeServer`] stores each monthly batch in the DFS under a unique
//! per-upload path and purges expired uploads on every clock tick.

use scdata::city::CrimeBatch;
use scdfs::{DfsCluster, DfsError};
use simclock::{SimDuration, SimTime};

/// Retention window: 90 days.
const RETENTION: SimDuration = SimDuration::from_secs(90 * 24 * 3600);

/// One tracked upload.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Upload {
    path: String,
    uploaded_at: SimTime,
}

/// The secure upload endpoint: unique URLs, DFS-backed storage, and the
/// 90-day purge.
#[derive(Debug)]
pub struct SecureCrimeServer {
    uploads: Vec<Upload>,
    purged: u64,
}

impl SecureCrimeServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        SecureCrimeServer {
            uploads: Vec::new(),
            purged: 0,
        }
    }

    /// The unique URL path an agency uploads month `month` to.
    pub fn upload_path(agency: &str, month: u32) -> String {
        let slug: String = agency
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        format!("/secure/uploads/{slug}/month-{month:04}.csv")
    }

    /// Accepts a monthly batch: serializes it as CSV and stores it
    /// replicated in the DFS under the agency's unique path.
    ///
    /// # Errors
    ///
    /// Propagates DFS errors (including duplicate uploads for the same
    /// agency+month).
    pub fn accept_upload(
        &mut self,
        agency: &str,
        batch: &CrimeBatch,
        dfs: &mut DfsCluster,
    ) -> Result<String, DfsError> {
        let path = Self::upload_path(agency, batch.month);
        let mut csv = String::from("report_number,statute,district,time_us\n");
        for r in &batch.records {
            csv.push_str(&format!(
                "{},{},{},{}\n",
                r.report_number,
                r.offense.statute(),
                r.district,
                r.time.as_micros()
            ));
        }
        dfs.create(&path, csv.as_bytes())?;
        self.uploads.push(Upload {
            path: path.clone(),
            uploaded_at: batch.uploaded_at,
        });
        Ok(path)
    }

    /// Number of live (unexpired) uploads.
    pub fn live_uploads(&self) -> usize {
        self.uploads.len()
    }

    /// Total uploads purged so far.
    pub fn purged_count(&self) -> u64 {
        self.purged
    }

    /// Deletes every upload older than 90 days at `now`. Returns the paths
    /// removed. DFS deletion failures for already-gone files are ignored
    /// (idempotent purge).
    pub fn purge_expired(&mut self, now: SimTime, dfs: &mut DfsCluster) -> Vec<String> {
        let (expired, live): (Vec<Upload>, Vec<Upload>) = self
            .uploads
            .drain(..)
            .partition(|u| now.saturating_since(u.uploaded_at) > RETENTION);
        self.uploads = live;
        let mut removed = Vec::with_capacity(expired.len());
        for u in expired {
            let _ = dfs.delete(&u.path);
            self.purged += 1;
            removed.push(u.path);
        }
        removed
    }
}

impl Default for SecureCrimeServer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdata::city::CrimeBatchGenerator;

    fn setup() -> (SecureCrimeServer, DfsCluster, CrimeBatchGenerator) {
        (
            SecureCrimeServer::new(),
            DfsCluster::new(4, 2, 4096, 1).unwrap(),
            CrimeBatchGenerator::new(200, 2),
        )
    }

    #[test]
    fn upload_lands_in_dfs() {
        let (mut server, mut dfs, mut gen) = setup();
        let batch = gen.monthly_batch(0, 25);
        let path = server
            .accept_upload("Baton Rouge PD", &batch, &mut dfs)
            .unwrap();
        let content = String::from_utf8(dfs.read(&path).unwrap()).unwrap();
        assert_eq!(content.lines().count(), 26, "header + 25 records");
        assert!(content.contains("La. R.S."));
        assert_eq!(server.live_uploads(), 1);
    }

    #[test]
    fn unique_urls_per_agency_and_month() {
        assert_ne!(
            SecureCrimeServer::upload_path("BRPD", 1),
            SecureCrimeServer::upload_path("BRPD", 2)
        );
        assert_ne!(
            SecureCrimeServer::upload_path("BRPD", 1),
            SecureCrimeServer::upload_path("EBRSO", 1)
        );
        assert!(SecureCrimeServer::upload_path("Baton Rouge PD", 3)
            .starts_with("/secure/uploads/baton-rouge-pd/"));
    }

    #[test]
    fn purge_removes_only_expired() {
        let (mut server, mut dfs, mut gen) = setup();
        let old = gen.monthly_batch(0, 5); // uploaded at month 1
        let recent = gen.monthly_batch(3, 5); // uploaded at month 4
        let old_path = server.accept_upload("BRPD", &old, &mut dfs).unwrap();
        let recent_path = server.accept_upload("BRPD", &recent, &mut dfs).unwrap();

        // 91 days after the old upload (old expired, recent not).
        let now = old.uploaded_at + SimDuration::from_secs(91 * 24 * 3600);
        let removed = server.purge_expired(now, &mut dfs);
        assert_eq!(removed, vec![old_path.clone()]);
        assert!(
            dfs.read(&old_path).is_err(),
            "expired file deleted from DFS"
        );
        assert!(dfs.read(&recent_path).is_ok(), "recent file retained");
        assert_eq!(server.live_uploads(), 1);
        assert_eq!(server.purged_count(), 1);
    }

    #[test]
    fn purge_at_89_days_keeps_everything() {
        let (mut server, mut dfs, mut gen) = setup();
        let batch = gen.monthly_batch(0, 5);
        server.accept_upload("BRPD", &batch, &mut dfs).unwrap();
        let now = batch.uploaded_at + SimDuration::from_secs(89 * 24 * 3600);
        assert!(server.purge_expired(now, &mut dfs).is_empty());
        assert_eq!(server.live_uploads(), 1);
    }

    #[test]
    fn duplicate_upload_rejected() {
        let (mut server, mut dfs, mut gen) = setup();
        let batch = gen.monthly_batch(0, 5);
        server.accept_upload("BRPD", &batch, &mut dfs).unwrap();
        assert!(server.accept_upload("BRPD", &batch, &mut dfs).is_err());
    }

    #[test]
    fn yearlong_simulation_keeps_three_months() {
        // Upload monthly for 12 months, purging on each upload day: at any
        // time at most 3 uploads (90 days / 30-day months) stay live.
        let (mut server, mut dfs, mut gen) = setup();
        for month in 0..12 {
            let batch = gen.monthly_batch(month, 10);
            let now = batch.uploaded_at;
            server.purge_expired(now, &mut dfs);
            server.accept_upload("BRPD", &batch, &mut dfs).unwrap();
            assert!(
                server.live_uploads() <= 4,
                "month {month}: {} live",
                server.live_uploads()
            );
        }
        assert!(server.purged_count() >= 8);
    }
}
