//! Suspicious behaviour and crime action recognition (paper §IV-A2, Fig. 7).
//!
//! Fig. 7's architecture: a stack of ResNet blocks turns each frame into an
//! activity representation; LSTM layers extract temporal patterns; fully
//! connected classifiers produce decisions. The network has two computation
//! paths — ResNet block 1 + LSTM 1 + FC 1 run on the local device (exit 1);
//! when the entropy of Output 1 is too high, the feature map from ResNet
//! block 1 is sent to the analysis server, which runs the remaining blocks,
//! LSTM 2, and FC 2 (Output 2).

use scdata::actions::{ActionClass, Clip};
use scneural::blocks::{ResidualBlock, Shortcut};
use scneural::early_exit::ExitPoint;
use scneural::layers::{entropy_rows, softmax_rows, Dense, GlobalAvgPool, Layer};
use scneural::loss::{Loss, LossTarget, SoftmaxCrossEntropy};
use scneural::optim::{Adam, Optimizer};
use scneural::rnn::{LastStep, Lstm};
use scneural::tensor::Tensor;

/// Converts clips (equal frame counts and sizes) into an
/// `[n*t, 1, h, w]` frame tensor.
///
/// # Panics
///
/// Panics if `clips` is empty or shapes are inconsistent.
pub fn clips_to_tensor(clips: &[Clip]) -> Tensor {
    assert!(!clips.is_empty(), "no clips");
    let t = clips[0].len();
    let (w, h) = (clips[0].frames[0].width(), clips[0].frames[0].height());
    let mut data = Vec::with_capacity(clips.len() * t * w * h);
    for clip in clips {
        assert_eq!(clip.len(), t, "inconsistent clip lengths");
        for f in &clip.frames {
            assert_eq!((f.width(), f.height()), (w, h), "inconsistent frame sizes");
            data.extend_from_slice(f.pixels());
        }
    }
    Tensor::from_vec(vec![clips.len() * t, 1, h, w], data).expect("sized above")
}

/// Outcome of recognizing one clip.
#[derive(Debug, Clone, PartialEq)]
pub struct Recognition {
    /// Predicted behaviour class.
    pub class: ActionClass,
    /// Which path produced it.
    pub exit: ExitPoint,
    /// Top-class probability of the accepted output.
    pub confidence: f32,
    /// Entropy of Output 1 (what the gate inspected), in nats.
    pub entropy: f32,
    /// Feature-map bytes shipped to the server (0 for local exits).
    pub feature_bytes: usize,
}

impl Recognition {
    /// Whether the paper's application would alert a human operator.
    pub fn raises_alert(&self) -> bool {
        self.class.is_suspicious()
    }
}

/// The Fig. 7 recognizer with its two computation paths.
#[derive(Debug)]
pub struct ActionRecognizer {
    block1: ResidualBlock,
    pool1: GlobalAvgPool,
    lstm1: Lstm,
    last1: LastStep,
    fc1: Dense,
    block2: ResidualBlock,
    pool2: GlobalAvgPool,
    lstm2: Lstm,
    last2: LastStep,
    fc2: Dense,
    classes: usize,
    frames_per_clip: usize,
    side: usize,
    c1: usize,
    entropy_threshold: f32,
    optimizer: Adam,
}

impl ActionRecognizer {
    /// Builds the recognizer for `side`×`side` frames, clips of
    /// `frames_per_clip`, and `classes` outputs, exiting locally when the
    /// Output-1 entropy is ≤ `entropy_threshold` nats.
    ///
    /// # Panics
    ///
    /// Panics unless `side` is a multiple of 4 and ≥ 8.
    pub fn new(
        side: usize,
        frames_per_clip: usize,
        classes: usize,
        entropy_threshold: f32,
        seed: u64,
    ) -> Self {
        assert!(
            side >= 8 && side.is_multiple_of(4),
            "side must be a multiple of 4, at least 8"
        );
        let (c1, c2, h1, h2) = (4, 8, 16, 16);
        ActionRecognizer {
            // The paper's block uses a conv shortcut (Fig. 8).
            block1: ResidualBlock::new(1, c1, 2, Shortcut::Conv, seed),
            pool1: GlobalAvgPool::new(),
            lstm1: Lstm::new(c1, h1, seed.wrapping_add(1)),
            last1: LastStep::new(),
            fc1: Dense::new(h1, classes, seed.wrapping_add(2)),
            block2: ResidualBlock::new(c1, c2, 2, Shortcut::Conv, seed.wrapping_add(3)),
            pool2: GlobalAvgPool::new(),
            lstm2: Lstm::new(c2, h2, seed.wrapping_add(4)),
            last2: LastStep::new(),
            fc2: Dense::new(h2, classes, seed.wrapping_add(5)),
            classes,
            frames_per_clip,
            side,
            c1,
            entropy_threshold,
            optimizer: Adam::new(3e-3),
        }
    }

    /// Replaces the entropy threshold (for E6's sweep).
    pub fn set_entropy_threshold(&mut self, threshold: f32) {
        self.entropy_threshold = threshold;
    }

    /// The current entropy threshold.
    pub fn entropy_threshold(&self) -> f32 {
        self.entropy_threshold
    }

    /// Parameters that live on the local device (block 1 + LSTM 1 + FC 1).
    pub fn local_param_count(&self) -> usize {
        self.block1
            .params()
            .iter()
            .map(|p| p.value.len())
            .sum::<usize>()
            + self
                .lstm1
                .params()
                .iter()
                .map(|p| p.value.len())
                .sum::<usize>()
            + self
                .fc1
                .params()
                .iter()
                .map(|p| p.value.len())
                .sum::<usize>()
    }

    fn seq_reshape(&self, pooled: &Tensor, n: usize, c: usize) -> Tensor {
        pooled
            .reshape(vec![n, self.frames_per_clip, c])
            .expect("row-major layout matches")
    }

    /// Local path: frames → block1 → (feature map, Output-1 logits).
    fn forward_local(&mut self, frames: &Tensor, n: usize, train: bool) -> (Tensor, Tensor) {
        let feat1 = self.block1.forward(frames, train);
        let pooled1 = self.pool1.forward(&feat1, train);
        let seq1 = self.seq_reshape(&pooled1, n, self.c1);
        let h1 = self.lstm1.forward(&seq1, train);
        let last = self.last1.forward(&h1, train);
        let out1 = self.fc1.forward(&last, train);
        (feat1, out1)
    }

    /// Server path: block-1 feature maps → remaining network → Output-2
    /// logits.
    fn forward_server(&mut self, feat1: &Tensor, n: usize, train: bool) -> Tensor {
        let feat2 = self.block2.forward(feat1, train);
        let pooled2 = self.pool2.forward(&feat2, train);
        let c2 = pooled2.shape()[1];
        let seq2 = self.seq_reshape(&pooled2, n, c2);
        let h2 = self.lstm2.forward(&seq2, train);
        let last = self.last2.forward(&h2, train);
        self.fc2.forward(&last, train)
    }

    /// One joint training step on labelled clips. Returns
    /// `(output1_loss, output2_loss)`.
    pub fn train_step(&mut self, clips: &[Clip], labels: &[usize]) -> (f32, f32) {
        let n = clips.len();
        let frames = clips_to_tensor(clips);
        let (feat1, out1) = self.forward_local(&frames, n, true);
        let out2 = self.forward_server(&feat1, n, true);

        let mut loss = SoftmaxCrossEntropy::new();
        let (l1, g1) = loss.forward(&out1, &LossTarget::Classes(labels));
        let (l2, g2) = loss.forward(&out2, &LossTarget::Classes(labels));

        // Server path backward → gradient on feat1.
        let g = self.fc2.backward(&g2);
        let g = self.last2.backward(&g);
        let g = self.lstm2.backward(&g);
        let c2 = g.shape()[2];
        let g = g
            .reshape(vec![n * self.frames_per_clip, c2])
            .expect("row-major layout matches");
        let g = self.pool2.backward(&g);
        let g_feat_server = self.block2.backward(&g);

        // Local path backward → gradient on feat1.
        let g = self.fc1.backward(&g1.scale(0.5));
        let g = self.last1.backward(&g);
        let g = self.lstm1.backward(&g);
        let g = g
            .reshape(vec![n * self.frames_per_clip, self.c1])
            .expect("row-major layout matches");
        let g_feat_local = self.pool1.backward(&g);

        let g_feat = g_feat_local.add(&g_feat_server).expect("both feat1-shaped");
        self.block1.backward(&g_feat);

        let mut params = self.block1.params_mut();
        params.extend(self.lstm1.params_mut());
        params.extend(self.fc1.params_mut());
        params.extend(self.block2.params_mut());
        params.extend(self.lstm2.params_mut());
        params.extend(self.fc2.params_mut());
        self.optimizer.step(params);
        (l1, l2)
    }

    /// Trains for `epochs` full-batch epochs.
    pub fn train(&mut self, clips: &[Clip], labels: &[usize], epochs: usize) -> Vec<(f32, f32)> {
        (0..epochs)
            .map(|_| self.train_step(clips, labels))
            .collect()
    }

    /// Selects the frame-rows of the given clips from an `[n*t, ...]`
    /// tensor.
    fn select_clips(&self, t: &Tensor, indices: &[usize]) -> Tensor {
        let shape = t.shape();
        let per_frame: usize = shape[1..].iter().product();
        let per_clip = self.frames_per_clip * per_frame;
        let mut data = Vec::with_capacity(indices.len() * per_clip);
        for &i in indices {
            data.extend_from_slice(&t.data()[i * per_clip..(i + 1) * per_clip]);
        }
        let mut new_shape = shape.to_vec();
        new_shape[0] = indices.len() * self.frames_per_clip;
        Tensor::from_vec(new_shape, data).expect("sized above")
    }

    /// Recognizes a batch of clips with entropy-gated early exit.
    pub fn recognize(&mut self, clips: &[Clip]) -> Vec<Recognition> {
        let n = clips.len();
        let frames = clips_to_tensor(clips);
        let (feat1, out1) = self.forward_local(&frames, n, false);
        let probs1 = softmax_rows(&out1);
        let entropies = entropy_rows(&probs1);
        let classes1 = probs1.argmax_rows();

        let feat_elems = feat1.len() / n;
        let per_clip_bytes = feat_elems * std::mem::size_of::<f32>();

        let mut escalate: Vec<usize> = Vec::new();
        let mut results: Vec<Option<Recognition>> = Vec::with_capacity(n);
        for i in 0..n {
            if entropies[i] <= self.entropy_threshold {
                results.push(Some(Recognition {
                    class: ActionClass::ALL[classes1[i]],
                    exit: ExitPoint::Local,
                    confidence: probs1.at(i, classes1[i]),
                    entropy: entropies[i],
                    feature_bytes: 0,
                }));
            } else {
                results.push(None);
                escalate.push(i);
            }
        }
        if !escalate.is_empty() {
            let sub = self.select_clips(&feat1, &escalate);
            let out2 = self.forward_server(&sub, escalate.len(), false);
            let probs2 = softmax_rows(&out2);
            let classes2 = probs2.argmax_rows();
            for (slot, &orig) in escalate.iter().enumerate() {
                results[orig] = Some(Recognition {
                    class: ActionClass::ALL[classes2[slot]],
                    exit: ExitPoint::Server,
                    confidence: probs2.at(slot, classes2[slot]),
                    entropy: entropies[orig],
                    feature_bytes: per_clip_bytes,
                });
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every clip decided"))
            .collect()
    }

    /// Accuracy + offload fraction on labelled clips under the current gate.
    pub fn evaluate(&mut self, clips: &[Clip], labels: &[usize]) -> (f64, f64) {
        let recs = self.recognize(clips);
        let correct = recs
            .iter()
            .zip(labels)
            .filter(|(r, &l)| r.class.index() == l)
            .count();
        let offloaded = recs.iter().filter(|r| r.exit == ExitPoint::Server).count();
        (
            correct as f64 / clips.len().max(1) as f64,
            offloaded as f64 / clips.len().max(1) as f64,
        )
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Frame side length.
    pub fn side(&self) -> usize {
        self.side
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdata::actions::ClipGenerator;

    fn dataset(per_class: usize, seed: u64) -> (Vec<Clip>, Vec<usize>) {
        ClipGenerator::new(16, 16, 8, seed).dataset(per_class)
    }

    #[test]
    fn clips_to_tensor_shape() {
        let (clips, _) = dataset(1, 1);
        let t = clips_to_tensor(&clips);
        assert_eq!(t.shape(), &[6 * 8, 1, 16, 16]);
    }

    #[test]
    fn untrained_recognizer_runs() {
        let (clips, _) = dataset(1, 2);
        let mut rec = ActionRecognizer::new(16, 8, 6, 0.5, 3);
        let out = rec.recognize(&clips);
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|r| r.confidence > 0.0 && r.entropy >= 0.0));
    }

    #[test]
    fn trains_above_chance() {
        let (clips, labels) = dataset(4, 4);
        let mut rec = ActionRecognizer::new(16, 8, 6, f32::INFINITY, 5); // all local
        let losses = rec.train(&clips, &labels, 60);
        assert!(
            losses.last().unwrap().0 < losses[0].0,
            "local loss decreases"
        );
        let (acc, _) = rec.evaluate(&clips, &labels);
        assert!(acc > 0.5, "train accuracy {acc} (chance is 0.17)");
    }

    #[test]
    fn entropy_gate_extremes() {
        let (clips, _) = dataset(2, 6);
        let mut rec = ActionRecognizer::new(16, 8, 6, f32::INFINITY, 7);
        let all_local = rec.recognize(&clips);
        assert!(all_local.iter().all(|r| r.exit == ExitPoint::Local));
        rec.set_entropy_threshold(-1.0);
        let all_server = rec.recognize(&clips);
        assert!(all_server.iter().all(|r| r.exit == ExitPoint::Server));
        assert!(all_server.iter().all(|r| r.feature_bytes > 0));
    }

    #[test]
    fn offload_monotone_in_tightening_threshold() {
        let (clips, labels) = dataset(3, 8);
        let mut rec = ActionRecognizer::new(16, 8, 6, 0.5, 9);
        rec.train(&clips, &labels, 25);
        let mut last = 2.0;
        for t in [1.5f32, 0.8, 0.3, 0.05] {
            rec.set_entropy_threshold(t);
            let (_, offload) = rec.evaluate(&clips, &labels);
            assert!((0.0..=1.0).contains(&offload));
            assert!(offload >= -1e-9 && last >= offload - 1.0); // sanity
                                                                // Tighter (smaller) threshold must not decrease offload.
            if last <= 1.0 {
                assert!(offload >= last - 1e-9, "offload {offload} after {last}");
            }
            last = offload;
        }
    }

    #[test]
    fn alerts_on_suspicious_classes() {
        let r = Recognition {
            class: ActionClass::Fighting,
            exit: ExitPoint::Local,
            confidence: 0.9,
            entropy: 0.1,
            feature_bytes: 0,
        };
        assert!(r.raises_alert());
        let r = Recognition {
            class: ActionClass::Walking,
            ..r
        };
        assert!(!r.raises_alert());
    }

    #[test]
    fn local_params_smaller_than_total() {
        let rec = ActionRecognizer::new(16, 8, 6, 0.5, 10);
        let local = rec.local_param_count();
        assert!(local > 0);
        // block2 alone has more channels, so the server side is bigger.
        let block2: usize = rec.block2.params().iter().map(|p| p.value.len()).sum();
        assert!(block2 > 0);
    }
}
