//! Vehicle detection and classification (paper §IV-A1, Figs. 5 & 6).
//!
//! The paper runs Tiny YOLO on local devices and escalates to YOLOv2 on the
//! analysis server when the local score is below threshold. Here the same
//! split is built from scratch: a shared convolutional *front* runs on the
//! device, a small dense head gives the local ("tiny") prediction, and jobs
//! that fail the confidence policy ship the front's feature map to the
//! deeper server-side stack — exactly Fig. 5's blue line.

use scdata::vehicles::VehicleClassId;
use scdata::video::{BoxPx, Frame};
use scneural::early_exit::{EarlyExitNet, ExitDecision, ExitPoint, ExitPolicy};
use scneural::layers::{Conv2d, Dense, Flatten, Relu};
use scneural::loss::SoftmaxCrossEntropy;
use scneural::net::Sequential;
use scneural::optim::Adam;
use scneural::tensor::Tensor;

/// Converts grayscale frames (all the same size) into an `[n, 1, h, w]`
/// tensor.
///
/// # Panics
///
/// Panics if `frames` is empty or sizes are inconsistent.
pub fn frames_to_tensor(frames: &[Frame]) -> Tensor {
    assert!(!frames.is_empty(), "no frames");
    let (w, h) = (frames[0].width(), frames[0].height());
    let mut data = Vec::with_capacity(frames.len() * w * h);
    for f in frames {
        assert_eq!((f.width(), f.height()), (w, h), "inconsistent frame sizes");
        data.extend_from_slice(f.pixels());
    }
    Tensor::from_vec(vec![frames.len(), 1, h, w], data).expect("sized above")
}

/// The early-exit vehicle classifier over fixed-size crops.
#[derive(Debug)]
pub struct VehicleClassifier {
    net: EarlyExitNet,
    classes: usize,
    side: usize,
}

impl VehicleClassifier {
    /// Builds the split model for `classes` classes over `side`×`side`
    /// crops, exiting locally when confidence ≥ `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `side < 8` or `classes == 0`.
    pub fn new(classes: usize, side: usize, threshold: f32, seed: u64) -> Self {
        assert!(
            side >= 8 && side.is_multiple_of(4),
            "side must be a multiple of 4, at least 8"
        );
        assert!(classes > 0, "need at least one class");
        let half = side / 2;
        let quarter = side / 4;
        // Device part: one strided conv = the "tiny" backbone.
        let front = Sequential::new()
            .with(Conv2d::new(1, 6, 3, 2, 1, seed))
            .with(Relu::new());
        // Tiny head: direct classification from early features.
        let exit_head = Sequential::new().with(Flatten::new()).with(Dense::new(
            6 * half * half,
            classes,
            seed.wrapping_add(1),
        ));
        // Server part: two more convs = the "full" backbone.
        let rest = Sequential::new()
            .with(Conv2d::new(6, 12, 3, 2, 1, seed.wrapping_add(2)))
            .with(Relu::new())
            .with(Conv2d::new(12, 12, 3, 1, 1, seed.wrapping_add(3)))
            .with(Relu::new());
        let final_head = Sequential::new().with(Flatten::new()).with(Dense::new(
            12 * quarter * quarter,
            classes,
            seed.wrapping_add(4),
        ));
        VehicleClassifier {
            net: EarlyExitNet::new(
                front,
                exit_head,
                rest,
                final_head,
                ExitPolicy::Confidence(threshold),
            ),
            classes,
            side,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Crop side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Replaces the confidence threshold (for E4's sweep).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.net.set_policy(ExitPolicy::Confidence(threshold));
    }

    /// Direct access to the underlying split network.
    pub fn network_mut(&mut self) -> &mut EarlyExitNet {
        &mut self.net
    }

    /// Serialized weights of the device-side part — what the hardware layer
    /// pushes to edge/fog nodes after training on the analysis servers.
    pub fn export_device_model(&self) -> Vec<u8> {
        self.net.save_local()
    }

    /// Serialized weights of the server-side part.
    pub fn export_server_model(&self) -> Vec<u8> {
        self.net.save_server()
    }

    /// Loads previously exported device/server weights into a
    /// same-architecture classifier (a fresh deployment target).
    ///
    /// # Errors
    ///
    /// Returns a [`scneural::serialize::LoadError`] if either blob does not
    /// match this classifier's architecture.
    pub fn import_models(
        &mut self,
        device: &[u8],
        server: &[u8],
    ) -> Result<(), scneural::serialize::LoadError> {
        self.net.load_local(device)?;
        self.net.load_server(server)
    }

    /// Trains both exits jointly on labelled crops. Returns per-epoch
    /// `(local_loss, server_loss)`.
    pub fn train(
        &mut self,
        frames: &[Frame],
        labels: &[usize],
        epochs: usize,
        lr: f32,
    ) -> Vec<(f32, f32)> {
        let x = frames_to_tensor(frames);
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(lr);
        (0..epochs)
            .map(|_| self.net.train_step(&x, labels, &mut loss, &mut opt, 0.5))
            .collect()
    }

    /// Classifies crops under the current exit policy.
    pub fn classify(&mut self, frames: &[Frame]) -> Vec<ExitDecision> {
        self.net.infer(&frames_to_tensor(frames))
    }

    /// Combined accuracy and offload fraction on a labelled set.
    pub fn evaluate(&mut self, frames: &[Frame], labels: &[usize]) -> (f64, f64) {
        let x = frames_to_tensor(frames);
        (self.net.accuracy(&x, labels), self.net.offload_fraction(&x))
    }
}

/// One detected vehicle in a scene.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Where the vehicle is.
    pub bbox: BoxPx,
    /// Predicted class.
    pub class: VehicleClassId,
    /// Confidence of the accepted prediction.
    pub confidence: f32,
    /// Which exit produced the prediction.
    pub exit: ExitPoint,
}

/// Sliding-window detector over road scenes: proposes bright regions, then
/// classifies each crop with the early-exit classifier.
#[derive(Debug)]
pub struct SceneDetector {
    classifier: VehicleClassifier,
    stride: usize,
    objectness: f32,
    nms_iou: f64,
}

impl SceneDetector {
    /// Wraps a trained classifier. `objectness` is the minimum fraction of
    /// bright (non-road) pixels for a window to become a proposal.
    pub fn new(classifier: VehicleClassifier, objectness: f32) -> Self {
        let stride = (classifier.side() / 2).max(1);
        SceneDetector {
            classifier,
            stride,
            objectness,
            nms_iou: 0.3,
        }
    }

    /// The wrapped classifier.
    pub fn classifier_mut(&mut self) -> &mut VehicleClassifier {
        &mut self.classifier
    }

    fn crop(scene: &Frame, x0: usize, y0: usize, side: usize) -> Frame {
        let mut out = Frame::new(side, side);
        for y in 0..side {
            for x in 0..side {
                let sx = x0 + x;
                let sy = y0 + y;
                if sx < scene.width() && sy < scene.height() {
                    out.set(x, y, scene.get(sx, sy));
                }
            }
        }
        out
    }

    fn window_objectness(scene: &Frame, x0: usize, y0: usize, side: usize) -> f32 {
        let mut bright = 0usize;
        let mut total = 0usize;
        for y in y0..(y0 + side).min(scene.height()) {
            for x in x0..(x0 + side).min(scene.width()) {
                total += 1;
                if scene.get(x, y) > 0.3 {
                    bright += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            bright as f32 / total as f32
        }
    }

    /// Detects vehicles in a scene: propose → classify (early-exit) →
    /// non-maximum suppression.
    pub fn detect(&mut self, scene: &Frame) -> Vec<Detection> {
        let side = self.classifier.side();
        let mut proposals: Vec<BoxPx> = Vec::new();
        let mut y0 = 0;
        while y0 + side / 2 < scene.height().max(1) {
            let mut x0 = 0;
            while x0 + side / 2 < scene.width().max(1) {
                if Self::window_objectness(scene, x0, y0, side) >= self.objectness {
                    proposals.push(BoxPx {
                        x0,
                        y0,
                        x1: (x0 + side).min(scene.width()),
                        y1: (y0 + side).min(scene.height()),
                    });
                }
                x0 += self.stride;
            }
            y0 += self.stride;
        }
        if proposals.is_empty() {
            return Vec::new();
        }
        let crops: Vec<Frame> = proposals
            .iter()
            .map(|b| Self::crop(scene, b.x0, b.y0, side))
            .collect();
        let decisions = self.classifier.classify(&crops);

        let mut detections: Vec<Detection> = proposals
            .into_iter()
            .zip(decisions)
            .map(|(bbox, d)| Detection {
                bbox,
                class: VehicleClassId(d.class as u16),
                confidence: d.confidence,
                exit: d.exit,
            })
            .collect();

        // Non-maximum suppression.
        detections.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
        let mut kept: Vec<Detection> = Vec::new();
        for d in detections {
            if kept.iter().all(|k| k.bbox.iou(&d.bbox) < self.nms_iou) {
                kept.push(d);
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdata::vehicles::VehicleCatalog;
    use scdata::video::FrameGenerator;

    fn small_dataset(classes: usize, per_class: usize) -> (Vec<Frame>, Vec<usize>) {
        let catalog = VehicleCatalog::generate(classes, 1);
        let mut gen = FrameGenerator::new(catalog, 16, 16, 2).noise(0.01);
        gen.dataset(classes, per_class)
    }

    #[test]
    fn classifier_trains_above_chance() {
        let (frames, labels) = small_dataset(4, 10);
        let mut clf = VehicleClassifier::new(4, 16, 0.5, 3);
        clf.train(&frames, &labels, 40, 0.01);
        let (acc, _) = clf.evaluate(&frames, &labels);
        assert!(acc > 0.7, "train accuracy {acc}");
    }

    #[test]
    fn threshold_zero_never_offloads() {
        let (frames, labels) = small_dataset(3, 4);
        let mut clf = VehicleClassifier::new(3, 16, 0.0, 4);
        clf.train(&frames, &labels, 5, 0.01);
        let (_, offload) = clf.evaluate(&frames, &labels);
        assert_eq!(offload, 0.0);
    }

    #[test]
    fn threshold_above_one_always_offloads() {
        let (frames, labels) = small_dataset(3, 4);
        let mut clf = VehicleClassifier::new(3, 16, 1.5, 5);
        clf.train(&frames, &labels, 5, 0.01);
        let (_, offload) = clf.evaluate(&frames, &labels);
        assert_eq!(offload, 1.0);
        let decisions = clf.classify(&frames);
        assert!(decisions.iter().all(|d| d.feature_bytes > 0));
    }

    #[test]
    fn offload_fraction_monotone() {
        let (frames, labels) = small_dataset(4, 8);
        let mut clf = VehicleClassifier::new(4, 16, 0.5, 6);
        clf.train(&frames, &labels, 30, 0.01);
        let mut last = -1.0;
        for t in [0.3, 0.6, 0.9, 0.99] {
            clf.set_threshold(t);
            let (_, offload) = clf.evaluate(&frames, &labels);
            assert!(offload >= last, "offload must rise with threshold");
            last = offload;
        }
    }

    #[test]
    fn scene_detector_finds_vehicles() {
        let classes = 4;
        let catalog = VehicleCatalog::generate(classes, 1);
        let mut gen = FrameGenerator::new(catalog.clone(), 16, 16, 2).noise(0.01);
        let (frames, labels) = gen.dataset(classes, 10);
        let mut clf = VehicleClassifier::new(classes, 16, 0.5, 7);
        clf.train(&frames, &labels, 30, 0.01);

        // Build a 48x48 scene with 2 vehicles.
        let mut scene_gen = FrameGenerator::new(catalog, 48, 48, 8).noise(0.01);
        let (scene, truths) = scene_gen.scene(2);
        let mut detector = SceneDetector::new(clf, 0.15);
        let detections = detector.detect(&scene);
        assert!(!detections.is_empty(), "should propose something");
        // At least one truth is matched by IoU > 0.1.
        let matched = truths
            .iter()
            .any(|t| detections.iter().any(|d| d.bbox.iou(&t.bbox) > 0.1));
        assert!(matched, "detections {detections:?} vs truths {truths:?}");
    }

    #[test]
    fn empty_scene_yields_nothing() {
        let (frames, labels) = small_dataset(3, 4);
        let mut clf = VehicleClassifier::new(3, 16, 0.5, 9);
        clf.train(&frames, &labels, 5, 0.01);
        let mut detector = SceneDetector::new(clf, 0.15);
        let empty = Frame::new(48, 48); // all black
        assert!(detector.detect(&empty).is_empty());
    }

    #[test]
    fn nms_suppresses_overlaps() {
        let (frames, labels) = small_dataset(3, 6);
        let mut clf = VehicleClassifier::new(3, 16, 0.5, 10);
        clf.train(&frames, &labels, 20, 0.01);
        let catalog = VehicleCatalog::generate(3, 1);
        let mut scene_gen = FrameGenerator::new(catalog, 32, 32, 11).noise(0.01);
        let (scene, _) = scene_gen.scene(1);
        let mut detector = SceneDetector::new(clf, 0.1);
        let detections = detector.detect(&scene);
        for i in 0..detections.len() {
            for j in (i + 1)..detections.len() {
                assert!(detections[i].bbox.iou(&detections[j].bbox) < 0.3);
            }
        }
    }

    #[test]
    fn frames_to_tensor_shape() {
        let frames = vec![Frame::new(8, 8), Frame::new(8, 8)];
        assert_eq!(frames_to_tensor(&frames).shape(), &[2, 1, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn frames_to_tensor_rejects_mixed_sizes() {
        let _ = frames_to_tensor(&[Frame::new(8, 8), Frame::new(4, 4)]);
    }
}
