//! Opioid-epidemic factor analysis (paper §V, future work).
//!
//! The paper's conclusion plans to "uncover additional factors that explain
//! why opioid mortality rates are at epidemic levels" from prescriptions,
//! 911 calls, traffic/DOTD data, and substance-related arrests. This module
//! implements that planned analysis end-to-end on synthetic district data:
//! a generator with a known ground-truth factor model, and a fitting step on
//! the MLlib substrate that recovers it.

use sccompute::dataflow::Dataset;
use sccompute::mllib::{linear_regression, LinearModel, StandardScaler};
use simclock::SeededRng;

/// Per-district observation of the candidate factors and the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DistrictRecord {
    /// District index.
    pub district: u32,
    /// Opioid prescriptions per 1,000 residents.
    pub prescriptions_per_1k: f64,
    /// Substance-related 911 calls per month.
    pub emergency_calls: f64,
    /// Drug-related arrests per month.
    pub drug_arrests: f64,
    /// Mean daily traffic volume (thousands) — a mobility proxy.
    pub traffic_volume_k: f64,
    /// Observed overdose rate per 100k residents (the target).
    pub overdose_rate: f64,
}

impl DistrictRecord {
    /// The factor vector used by the model.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.prescriptions_per_1k,
            self.emergency_calls,
            self.drug_arrests,
            self.traffic_volume_k,
        ]
    }
}

/// Ground-truth coefficients used by the generator (so recovery can be
/// asserted): `overdose = 0.5·prescriptions + 0.3·calls + 0.2·arrests +
/// 0.0·traffic + noise`. Traffic is a deliberate decoy factor.
pub const TRUE_COEFFICIENTS: [f64; 4] = [0.5, 0.3, 0.2, 0.0];

/// Generates `n` synthetic district observations.
pub fn generate_districts(n: usize, noise: f64, seed: u64) -> Vec<DistrictRecord> {
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|i| {
            let prescriptions = rng.range_f64(20.0, 120.0);
            let calls = rng.range_f64(5.0, 80.0);
            let arrests = rng.range_f64(0.0, 40.0);
            let traffic = rng.range_f64(10.0, 200.0);
            let overdose = TRUE_COEFFICIENTS[0] * prescriptions
                + TRUE_COEFFICIENTS[1] * calls
                + TRUE_COEFFICIENTS[2] * arrests
                + TRUE_COEFFICIENTS[3] * traffic
                + rng.gaussian(0.0, noise);
            DistrictRecord {
                district: i as u32,
                prescriptions_per_1k: prescriptions,
                emergency_calls: calls,
                drug_arrests: arrests,
                traffic_volume_k: traffic,
                overdose_rate: overdose.max(0.0),
            }
        })
        .collect()
}

/// A fitted factor analysis.
#[derive(Debug, Clone)]
pub struct FactorAnalysis {
    /// The linear model over *standardized* features.
    pub model: LinearModel,
    /// The scaler used for standardization.
    pub scaler: StandardScaler,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    /// Factor names aligned with the model weights.
    pub factor_names: [&'static str; 4],
}

impl FactorAnalysis {
    /// Predicted overdose rate for a district.
    pub fn predict(&self, record: &DistrictRecord) -> f64 {
        self.model
            .predict(&self.scaler.transform(&record.features()))
    }

    /// Factors ranked by absolute standardized weight, strongest first.
    pub fn ranked_factors(&self) -> Vec<(&'static str, f64)> {
        let mut ranked: Vec<(&'static str, f64)> = self
            .factor_names
            .iter()
            .zip(&self.model.weights)
            .map(|(n, w)| (*n, *w))
            .collect();
        ranked.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
        ranked
    }
}

/// Fits the factor model on the MLlib substrate (distributed gradient
/// descent over standardized features).
///
/// # Panics
///
/// Panics on an empty input.
pub fn analyze(records: &[DistrictRecord]) -> FactorAnalysis {
    assert!(!records.is_empty(), "no district records");
    let features: Vec<Vec<f64>> = records.iter().map(DistrictRecord::features).collect();
    let scaler = StandardScaler::fit(&Dataset::from_vec(features.clone(), 4));
    let data: Vec<(Vec<f64>, f64)> = records
        .iter()
        .map(|r| (scaler.transform(&r.features()), r.overdose_rate))
        .collect();
    let ds = Dataset::from_vec(data, 4);
    let model = linear_regression(&ds, 0.05, 3000);

    // R² on training data.
    let mean_y: f64 = records.iter().map(|r| r.overdose_rate).sum::<f64>() / records.len() as f64;
    let ss_tot: f64 = records
        .iter()
        .map(|r| (r.overdose_rate - mean_y).powi(2))
        .sum();
    let ss_res: f64 = records
        .iter()
        .map(|r| {
            let pred = model.predict(&scaler.transform(&r.features()));
            (r.overdose_rate - pred).powi(2)
        })
        .sum();
    FactorAnalysis {
        model,
        scaler,
        r_squared: if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            0.0
        },
        factor_names: [
            "prescriptions_per_1k",
            "emergency_calls",
            "drug_arrests",
            "traffic_volume_k",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(
            generate_districts(10, 1.0, 1),
            generate_districts(10, 1.0, 1)
        );
    }

    #[test]
    fn analysis_fits_well() {
        let records = generate_districts(200, 1.0, 2);
        let analysis = analyze(&records);
        assert!(analysis.r_squared > 0.95, "R² {}", analysis.r_squared);
    }

    #[test]
    fn prescriptions_rank_first_traffic_last() {
        let records = generate_districts(300, 1.0, 3);
        let analysis = analyze(&records);
        let ranked = analysis.ranked_factors();
        assert_eq!(ranked[0].0, "prescriptions_per_1k", "{ranked:?}");
        assert_eq!(
            ranked[3].0, "traffic_volume_k",
            "decoy ranks last: {ranked:?}"
        );
    }

    #[test]
    fn predictions_track_targets() {
        let records = generate_districts(150, 0.5, 4);
        let analysis = analyze(&records);
        let record = &records[0];
        let err = (analysis.predict(record) - record.overdose_rate).abs();
        assert!(err < 6.0, "error {err}");
    }

    #[test]
    fn noisy_data_lower_r2() {
        let clean = analyze(&generate_districts(200, 0.5, 5));
        let noisy = analyze(&generate_districts(200, 20.0, 5));
        assert!(clean.r_squared > noisy.r_squared);
    }
}
