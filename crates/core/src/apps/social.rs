//! The investigation service around §IV-B's narrowing engine.
//!
//! Wraps [`scsocial::narrowing::Narrower`] into the application-layer shape
//! the paper describes: incidents come in, the field of interest is expanded
//! and narrowed, and the resulting persons-of-interest report is stored in
//! the document store for investigators and audit.

use scdata::tweets::Tweet;
use scnosql::document::{Collection, Doc, DocId, Filter};
use scsocial::narrowing::{Incident, Narrower, NarrowingConfig, NarrowingReport};
use scsocial::GangNetwork;

/// The investigation service: a gang network, a tweet corpus, and a report
/// log backed by the document store.
#[derive(Debug)]
pub struct InvestigationService {
    network: GangNetwork,
    tweets: Vec<Tweet>,
    config: NarrowingConfig,
    reports: Collection,
}

impl InvestigationService {
    /// Creates the service.
    pub fn new(network: GangNetwork, tweets: Vec<Tweet>, config: NarrowingConfig) -> Self {
        let mut reports = Collection::new("investigation_reports");
        reports.create_index("seed_person");
        InvestigationService {
            network,
            tweets,
            config,
            reports,
        }
    }

    /// The gang network under investigation.
    pub fn network(&self) -> &GangNetwork {
        &self.network
    }

    /// Adds tweets to the corpus (streaming ingestion appends here).
    pub fn ingest_tweets(&mut self, tweets: impl IntoIterator<Item = Tweet>) {
        self.tweets.extend(tweets);
    }

    /// Corpus size.
    pub fn tweet_count(&self) -> usize {
        self.tweets.len()
    }

    /// Runs the narrowing pipeline for one incident, stores the report, and
    /// returns it with its stored id.
    pub fn investigate(&mut self, incident: &Incident) -> (DocId, NarrowingReport) {
        let narrower = Narrower::new(&self.network, &self.tweets, self.config);
        let report = narrower.narrow(incident);
        let doc = Doc::object([
            ("seed_person", Doc::I64(incident.seed_person.0 as i64)),
            ("first_degree", Doc::I64(report.first_degree as i64)),
            (
                "field_of_interest",
                Doc::I64(report.field_of_interest as i64),
            ),
            (
                "persons_of_interest",
                Doc::Array(
                    report
                        .persons_of_interest
                        .iter()
                        .map(|p| Doc::I64(p.0 as i64))
                        .collect(),
                ),
            ),
            ("reduction_factor", Doc::F64(report.reduction_factor)),
        ]);
        let id = self
            .reports
            .insert(doc)
            .expect("narrowing reports hold only finite numbers");
        (id, report)
    }

    /// All stored reports for a seed person (index-assisted).
    pub fn reports_for(&self, seed_person: u32) -> Vec<DocId> {
        self.reports
            .find(&Filter::Eq(
                "seed_person".into(),
                Doc::I64(seed_person as i64),
            ))
            .expect("equality filters are always valid")
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Total stored reports.
    pub fn report_count(&self) -> usize {
        self.reports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdata::tweets::TweetGenerator;
    use scgeo::GeoPoint;
    use scsocial::narrowing::person_handle;
    use scsocial::GangNetworkGenerator;
    use simclock::SimTime;

    fn service(seed: u64) -> (InvestigationService, Incident) {
        let network = GangNetworkGenerator::custom(5, 60, 600, 10.0, seed).generate();
        let seed_person = network.members()[0];
        let incident = Incident {
            location: GeoPoint::new(30.45, -91.18),
            time: SimTime::from_secs(5_000),
            seed_person,
        };
        let field = network.graph().second_degree(seed_person);
        let mut gen = TweetGenerator::new(seed + 1);
        let mut tweets = Vec::new();
        if let Some(&guilty) = field.first() {
            tweets.push(gen.near_incident(
                &person_handle(guilty),
                incident.location,
                300.0,
                incident.time,
                60 * 1_000_000,
            ));
        }
        (
            InvestigationService::new(network, tweets, NarrowingConfig::default()),
            incident,
        )
    }

    #[test]
    fn investigate_stores_report() {
        let (mut svc, incident) = service(1);
        let (_, report) = svc.investigate(&incident);
        assert_eq!(svc.report_count(), 1);
        assert!(report.field_of_interest > 0);
    }

    #[test]
    fn reports_queryable_by_seed() {
        let (mut svc, incident) = service(2);
        svc.investigate(&incident);
        svc.investigate(&incident);
        let found = svc.reports_for(incident.seed_person.0);
        assert_eq!(found.len(), 2);
        assert!(svc.reports_for(99_999).is_empty());
    }

    #[test]
    fn ingest_grows_corpus() {
        let (mut svc, incident) = service(3);
        let before = svc.tweet_count();
        let mut gen = TweetGenerator::new(9);
        svc.ingest_tweets(vec![gen.benign(
            "someone",
            incident.location,
            incident.time,
        )]);
        assert_eq!(svc.tweet_count(), before + 1);
    }
}
