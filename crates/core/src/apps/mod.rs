//! The application layer (paper §IV and §V).

pub mod actions;
pub mod opioid;
pub mod social;
pub mod vehicle;
