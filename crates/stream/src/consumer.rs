//! Consumer groups: partition assignment, committed offsets, redelivery.

use std::collections::BTreeMap;

use sctelemetry::TelemetryHandle;

use crate::event::Event;
use crate::topic::{Offset, PartitionId, Topic};

/// Metric name of the committed-events counter.
pub const METRIC_COMMITS: &str = "scstream_consumer_commits_total";
/// Metric name of the consumer-group lag gauge (events published but not
/// yet committed), refreshed on every [`ConsumerGroup::lag`] call.
pub const METRIC_LAG: &str = "scstream_consumer_lag_events";

/// Identifier of a consumer within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConsumerId(pub u32);

/// A consumer group over one topic: partitions are divided among members,
/// each partition tracks a *committed* offset, and polling hands out events
/// past the committed offset.
///
/// Delivery is **at-least-once**: events delivered by [`ConsumerGroup::poll`]
/// are re-delivered after a crash unless [`ConsumerGroup::commit`] recorded
/// them first.
///
/// # Examples
///
/// ```
/// use scstream::{ConsumerGroup, ConsumerId, Event, Topic};
///
/// let mut topic = Topic::new("t", 2);
/// topic.publish(Event::with_key("a", b"1".to_vec()));
///
/// let mut group = ConsumerGroup::new("analytics", 2);
/// group.join(ConsumerId(0));
/// let events = group.poll(ConsumerId(0), &topic, 10);
/// assert_eq!(events.len(), 1);
/// ```
#[derive(Debug)]
pub struct ConsumerGroup {
    name: String,
    partitions: u32,
    members: Vec<ConsumerId>,
    committed: BTreeMap<PartitionId, Offset>,
    // Offsets handed out but not yet committed, per partition.
    in_flight: BTreeMap<PartitionId, Offset>,
    telemetry: TelemetryHandle,
}

impl ConsumerGroup {
    /// Creates a group consuming a topic with `partitions` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(name: impl Into<String>, partitions: u32) -> Self {
        assert!(partitions > 0, "need at least one partition");
        ConsumerGroup {
            name: name.into(),
            partitions,
            members: Vec::new(),
            committed: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches telemetry: commits count into [`METRIC_COMMITS`] and
    /// [`ConsumerGroup::lag`] refreshes the [`METRIC_LAG`] gauge.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current members in join order.
    pub fn members(&self) -> &[ConsumerId] {
        &self.members
    }

    /// Adds a member, triggering a rebalance.
    pub fn join(&mut self, consumer: ConsumerId) {
        if !self.members.contains(&consumer) {
            self.members.push(consumer);
            self.rebalance();
        }
    }

    /// Removes a member (crash or clean leave), triggering a rebalance.
    /// Uncommitted in-flight events on its partitions become eligible for
    /// redelivery.
    pub fn leave(&mut self, consumer: ConsumerId) {
        self.members.retain(|&c| c != consumer);
        self.rebalance();
    }

    fn rebalance(&mut self) {
        // Reset in-flight positions to committed: anything uncommitted will
        // be redelivered to the partition's (possibly new) owner.
        self.in_flight.clear();
    }

    /// The partitions assigned to `consumer` (range assignment).
    pub fn assignment(&self, consumer: ConsumerId) -> Vec<PartitionId> {
        let Some(idx) = self.members.iter().position(|&c| c == consumer) else {
            return Vec::new();
        };
        (0..self.partitions)
            .filter(|p| (*p as usize) % self.members.len() == idx)
            .map(PartitionId)
            .collect()
    }

    /// Polls up to `max` events for `consumer` from its assigned partitions,
    /// starting from each partition's in-flight position (≥ committed).
    pub fn poll(
        &mut self,
        consumer: ConsumerId,
        topic: &Topic,
        max: usize,
    ) -> Vec<(PartitionId, Offset, Event)> {
        let mut out = Vec::new();
        for pid in self.assignment(consumer) {
            if out.len() >= max {
                break;
            }
            let committed = self.committed.get(&pid).copied().unwrap_or_default();
            let from = self
                .in_flight
                .get(&pid)
                .copied()
                .unwrap_or(committed)
                .max(committed);
            let events = topic.read(pid, from, max - out.len());
            for (i, e) in events.iter().enumerate() {
                out.push((pid, Offset(from.0 + i as u64), e.clone()));
            }
            if !events.is_empty() {
                self.in_flight
                    .insert(pid, Offset(from.0 + events.len() as u64));
            }
        }
        out
    }

    /// Commits all offsets up to and including `offset` on `partition`.
    pub fn commit(&mut self, partition: PartitionId, offset: Offset) {
        let next = offset.next();
        let entry = self.committed.entry(partition).or_default();
        if next > *entry {
            self.telemetry.counter_add(
                METRIC_COMMITS,
                "events committed by consumer groups",
                next.0 - entry.0,
            );
            *entry = next;
        }
    }

    /// The committed position of a partition (next offset to deliver after a
    /// restart).
    pub fn committed(&self, partition: PartitionId) -> Offset {
        self.committed.get(&partition).copied().unwrap_or_default()
    }

    /// Total committed events across partitions.
    pub fn total_committed(&self) -> u64 {
        self.committed.values().map(|o| o.0).sum()
    }

    /// Lag: events in the topic not yet committed by this group. Also
    /// refreshes the [`METRIC_LAG`] gauge when telemetry is attached.
    pub fn lag(&self, topic: &Topic) -> u64 {
        let lag: u64 = (0..self.partitions)
            .map(PartitionId)
            .map(|p| topic.end_offset(p).0.saturating_sub(self.committed(p).0))
            .sum();
        self.telemetry.gauge_set(
            METRIC_LAG,
            "events published but not yet committed by the group",
            lag as i64,
        );
        lag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic_with(n: usize, partitions: u32) -> Topic {
        let mut t = Topic::new("t", partitions);
        for i in 0..n {
            t.publish(Event::with_key(format!("k{i}"), vec![i as u8]));
        }
        t
    }

    #[test]
    fn single_consumer_gets_all_partitions() {
        let mut g = ConsumerGroup::new("g", 4);
        g.join(ConsumerId(0));
        assert_eq!(g.assignment(ConsumerId(0)).len(), 4);
    }

    #[test]
    fn two_consumers_split_partitions() {
        let mut g = ConsumerGroup::new("g", 4);
        g.join(ConsumerId(0));
        g.join(ConsumerId(1));
        let a = g.assignment(ConsumerId(0));
        let b = g.assignment(ConsumerId(1));
        assert_eq!(a.len() + b.len(), 4);
        assert!(a.iter().all(|p| !b.contains(p)));
    }

    #[test]
    fn poll_then_commit_advances() {
        let topic = topic_with(6, 2);
        let mut g = ConsumerGroup::new("g", 2);
        g.join(ConsumerId(0));
        let events = g.poll(ConsumerId(0), &topic, 100);
        assert_eq!(events.len(), 6);
        for (pid, off, _) in &events {
            g.commit(*pid, *off);
        }
        assert_eq!(g.lag(&topic), 0);
        assert!(
            g.poll(ConsumerId(0), &topic, 100).is_empty(),
            "nothing left after commit"
        );
    }

    #[test]
    fn uncommitted_events_redelivered_after_crash() {
        let topic = topic_with(6, 2);
        let mut g = ConsumerGroup::new("g", 2);
        g.join(ConsumerId(0));
        let first = g.poll(ConsumerId(0), &topic, 100);
        assert_eq!(first.len(), 6);
        // Consumer crashes without committing.
        g.leave(ConsumerId(0));
        g.join(ConsumerId(1));
        let second = g.poll(ConsumerId(1), &topic, 100);
        assert_eq!(second.len(), 6, "at-least-once: all redelivered");
    }

    #[test]
    fn partial_commit_redelivers_remainder() {
        let mut topic = Topic::new("t", 1);
        for i in 0..5u8 {
            topic.publish(Event::new(vec![i]));
        }
        let mut g = ConsumerGroup::new("g", 1);
        g.join(ConsumerId(0));
        let events = g.poll(ConsumerId(0), &topic, 100);
        // Commit only the first two.
        g.commit(events[1].0, events[1].1);
        g.leave(ConsumerId(0));
        g.join(ConsumerId(0));
        let redelivered = g.poll(ConsumerId(0), &topic, 100);
        assert_eq!(redelivered.len(), 3);
        assert_eq!(redelivered[0].2.payload(), &[2]);
    }

    #[test]
    fn poll_without_membership_is_empty() {
        let topic = topic_with(3, 1);
        let mut g = ConsumerGroup::new("g", 1);
        assert!(g.poll(ConsumerId(9), &topic, 10).is_empty());
    }

    #[test]
    fn commit_is_monotone() {
        let mut g = ConsumerGroup::new("g", 1);
        g.commit(PartitionId(0), Offset(5));
        g.commit(PartitionId(0), Offset(2)); // stale commit ignored
        assert_eq!(g.committed(PartitionId(0)), Offset(6));
    }

    #[test]
    fn lag_counts_unconsumed() {
        let topic = topic_with(10, 2);
        let g = ConsumerGroup::new("g", 2);
        assert_eq!(g.lag(&topic), 10);
    }

    #[test]
    fn telemetry_tracks_publish_consume_and_lag() {
        let t = sctelemetry::Telemetry::shared();
        let mut topic = Topic::new("t", 2).with_telemetry(t.handle());
        for i in 0..6 {
            topic.publish(Event::with_key(format!("k{i}"), vec![i as u8]));
        }
        let mut g = ConsumerGroup::new("g", 2).with_telemetry(t.handle());
        g.join(ConsumerId(0));
        let events = g.poll(ConsumerId(0), &topic, 100);
        for (pid, off, _) in &events[..4] {
            g.commit(*pid, *off);
        }
        let lag = g.lag(&topic);

        let reg = t.registry();
        let counter = |n: &str| reg.get(n).unwrap().as_counter().unwrap().get();
        assert_eq!(counter(crate::topic::METRIC_PUBLISH), 6);
        assert_eq!(counter(crate::topic::METRIC_CONSUME), 6);
        assert!(counter(METRIC_COMMITS) >= 2, "commit counter advances");
        assert_eq!(
            reg.get(METRIC_LAG).unwrap().as_gauge().unwrap().get() as u64,
            lag
        );
    }
}
