//! Partitioned, offset-addressed topics.

use sctelemetry::TelemetryHandle;

use crate::event::Event;

/// Metric name of the published-events counter.
pub const METRIC_PUBLISH: &str = "scstream_topic_publish_total";
/// Metric name of the consumed-events counter (events handed out by reads).
pub const METRIC_CONSUME: &str = "scstream_topic_consume_total";

/// Partition index within a topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

/// Offset of an event within a partition's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Offset(pub u64);

impl Offset {
    /// The offset after this one.
    pub fn next(self) -> Offset {
        Offset(self.0 + 1)
    }
}

/// A partitioned append-only log: events with the same key always land in
/// the same partition, preserving per-key order.
///
/// # Examples
///
/// ```
/// use scstream::{Event, Offset, PartitionId, Topic};
///
/// let mut t = Topic::new("waze", 2);
/// t.publish(Event::with_key("jam-1", b"slowdown".to_vec()));
/// let p = t.partition_for_key("jam-1");
/// let events = t.read(p, Offset(0), 10);
/// assert_eq!(events.len(), 1);
/// ```
#[derive(Debug)]
pub struct Topic {
    name: String,
    partitions: Vec<Vec<Event>>,
    round_robin: u32,
    telemetry: TelemetryHandle,
}

impl Topic {
    /// Creates a topic with `partitions` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(name: impl Into<String>, partitions: u32) -> Self {
        assert!(partitions > 0, "need at least one partition");
        Topic {
            name: name.into(),
            partitions: (0..partitions).map(|_| Vec::new()).collect(),
            round_robin: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches telemetry: publishes and reads count into
    /// [`METRIC_PUBLISH`] / [`METRIC_CONSUME`].
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// The partition a key maps to (FNV-1a hash modulo partitions).
    pub fn partition_for_key(&self, key: &str) -> PartitionId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        PartitionId((h % self.partitions.len() as u64) as u32)
    }

    /// Appends an event, routing by key (or round-robin when keyless).
    /// Returns where it landed.
    pub fn publish(&mut self, event: Event) -> (PartitionId, Offset) {
        let pid = match event.key() {
            Some(k) => self.partition_for_key(k),
            None => {
                let pid = PartitionId(self.round_robin % self.partitions.len() as u32);
                self.round_robin = self.round_robin.wrapping_add(1);
                pid
            }
        };
        let log = &mut self.partitions[pid.0 as usize];
        let offset = Offset(log.len() as u64);
        log.push(event);
        self.telemetry
            .counter_inc(METRIC_PUBLISH, "events published to topics");
        (pid, offset)
    }

    /// Reads up to `max` events from `partition` starting at `from`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range partition.
    pub fn read(&self, partition: PartitionId, from: Offset, max: usize) -> &[Event] {
        let log = &self.partitions[partition.0 as usize];
        let start = (from.0 as usize).min(log.len());
        let end = (start + max).min(log.len());
        if end > start {
            self.telemetry.counter_add(
                METRIC_CONSUME,
                "events handed out by topic reads",
                (end - start) as u64,
            );
        }
        &log[start..end]
    }

    /// The next offset to be written in `partition` (the "log end offset").
    pub fn end_offset(&self, partition: PartitionId) -> Offset {
        Offset(self.partitions[partition.0 as usize].len() as u64)
    }

    /// Total events across all partitions.
    pub fn total_events(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Events per partition, in partition order.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_partition() {
        let mut t = Topic::new("t", 8);
        let mut pids = Vec::new();
        for _ in 0..5 {
            let (pid, _) = t.publish(Event::with_key("stable", b"x".to_vec()));
            pids.push(pid);
        }
        assert!(pids.iter().all(|&p| p == pids[0]));
    }

    #[test]
    fn per_key_order_preserved() {
        let mut t = Topic::new("t", 4);
        for i in 0..10u8 {
            t.publish(Event::with_key("k", vec![i]));
        }
        let p = t.partition_for_key("k");
        let events = t.read(p, Offset(0), 100);
        let payloads: Vec<u8> = events.iter().map(|e| e.payload()[0]).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn keyless_round_robin_spreads() {
        let mut t = Topic::new("t", 3);
        for _ in 0..9 {
            t.publish(Event::new(b"x".to_vec()));
        }
        assert_eq!(t.partition_sizes(), vec![3, 3, 3]);
    }

    #[test]
    fn read_windows() {
        let mut t = Topic::new("t", 1);
        for i in 0..5u8 {
            t.publish(Event::new(vec![i]));
        }
        let p = PartitionId(0);
        assert_eq!(t.read(p, Offset(0), 2).len(), 2);
        assert_eq!(t.read(p, Offset(3), 100).len(), 2);
        assert_eq!(t.read(p, Offset(5), 1).len(), 0);
        assert_eq!(t.read(p, Offset(99), 1).len(), 0);
        assert_eq!(t.end_offset(p), Offset(5));
    }

    #[test]
    fn keys_spread_over_partitions() {
        let mut t = Topic::new("t", 8);
        for i in 0..200 {
            t.publish(Event::with_key(format!("key-{i}"), b"x".to_vec()));
        }
        let sizes = t.partition_sizes();
        assert!(
            sizes.iter().all(|&s| s > 0),
            "every partition gets traffic: {sizes:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = Topic::new("t", 0);
    }
}
