//! # scstream — real-time data ingestion
//!
//! The paper's software layer uses Apache Flume "for real-time data transfers
//! from various information sources" (§II-C2), feeding video annotations,
//! tweets, and Waze reports into NoSQL stores (Fig. 4). This crate rebuilds
//! that ingestion path as a deterministic substrate:
//!
//! - [`Event`]: a timestamped payload with headers and an optional
//!   partitioning key.
//! - [`MemoryChannel`]: a bounded buffer between source and sink with
//!   backpressure (Flume's channel).
//! - [`Topic`]: a partitioned, offset-addressed append-only log
//!   (Kafka-style), consumed by [`ConsumerGroup`]s with committed offsets and
//!   rebalancing — giving at-least-once delivery under consumer crashes.
//! - [`Pipeline`]: wires a [`Source`] through a channel to a [`Sink`] with
//!   ack-after-delivery semantics.
//! - [`Broker`] + [`ResilientProducer`]: fault injection from an
//!   [`scfault::FaultPlan`] — outage windows reject publishes, messages drop
//!   or lose their acks, and producers retry with seeded backoff for
//!   at-least-once delivery whose duplicates [`audit_delivery`] accounts.
//!
//! # Examples
//!
//! ```
//! use scstream::{Event, Topic};
//!
//! let mut topic = Topic::new("tweets", 4);
//! topic.publish(Event::with_key("gang-a", b"tweet text".to_vec()));
//! assert_eq!(topic.total_events(), 1);
//! ```

mod broker;
mod channel;
mod consumer;
mod event;
mod pipeline;
mod topic;
pub mod windows;

pub use broker::{
    audit_delivery, Broker, DeliveryAudit, PublishError, ResilientProducer, SendOutcome,
    HEADER_PRODUCER, HEADER_SEQ, METRIC_BROKER_DROPPED, METRIC_BROKER_REJECTED,
    METRIC_PRODUCER_DUPLICATES, METRIC_PRODUCER_LOST, METRIC_PRODUCER_RETRIES,
};
pub use channel::{ChannelError, MemoryChannel};
pub use consumer::{ConsumerGroup, ConsumerId, METRIC_COMMITS, METRIC_LAG};
pub use event::Event;
pub use pipeline::{
    CollectingSink, FilterInterceptor, HeaderInterceptor, Interceptor, Pipeline, PipelineStats,
    Sink, Source, VecSource,
};
pub use topic::{Offset, PartitionId, Topic, METRIC_CONSUME, METRIC_PUBLISH};
