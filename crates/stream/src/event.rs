//! Stream events.

use std::collections::BTreeMap;

use bytes::Bytes;
use simclock::SimTime;

/// A single ingested record: payload, optional partitioning key, headers,
/// and an event timestamp.
///
/// # Examples
///
/// ```
/// use scstream::Event;
///
/// let e = Event::with_key("cam-0007", b"frame bytes".to_vec())
///     .header("source", "dotd")
///     .header("city", "Baton Rouge");
/// assert_eq!(e.key(), Some("cam-0007"));
/// assert_eq!(e.header_value("source"), Some("dotd"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    payload: Bytes,
    key: Option<String>,
    headers: BTreeMap<String, String>,
    timestamp: SimTime,
}

impl Event {
    /// Creates an event with no key.
    pub fn new(payload: Vec<u8>) -> Self {
        Event {
            payload: Bytes::from(payload),
            key: None,
            headers: BTreeMap::new(),
            timestamp: SimTime::ZERO,
        }
    }

    /// Creates an event with a partitioning key (events with the same key
    /// land in the same partition and stay ordered).
    pub fn with_key(key: impl Into<String>, payload: Vec<u8>) -> Self {
        let mut e = Event::new(payload);
        e.key = Some(key.into());
        e
    }

    /// Adds a header (builder style).
    pub fn header(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.headers.insert(k.into(), v.into());
        self
    }

    /// Sets the event timestamp (builder style).
    pub fn at(mut self, t: SimTime) -> Self {
        self.timestamp = t;
        self
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The partitioning key, if any.
    pub fn key(&self) -> Option<&str> {
        self.key.as_deref()
    }

    /// Looks up a header.
    pub fn header_value(&self, k: &str) -> Option<&str> {
        self.headers.get(k).map(String::as_str)
    }

    /// All headers in key order.
    pub fn headers(&self) -> impl Iterator<Item = (&str, &str)> {
        self.headers.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Event timestamp.
    pub fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let e = Event::with_key("k", b"p".to_vec())
            .header("a", "1")
            .header("b", "2")
            .at(SimTime::from_secs(5));
        assert_eq!(e.key(), Some("k"));
        assert_eq!(e.payload(), b"p");
        assert_eq!(e.headers().count(), 2);
        assert_eq!(e.timestamp(), SimTime::from_secs(5));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn keyless_event() {
        let e = Event::new(vec![]);
        assert_eq!(e.key(), None);
        assert!(e.is_empty());
        assert_eq!(e.header_value("missing"), None);
    }
}
