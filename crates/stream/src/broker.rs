//! Broker unavailability and producer resilience.
//!
//! The paper's ingestion layer assumes Flume/Kafka keep accepting traffic;
//! this module models what happens when they don't. A [`Broker`] fronts a
//! [`Topic`] with outage windows and message faults derived from a
//! [`scfault::FaultPlan`]: while the broker node is crashed or partitioned,
//! publishes are rejected; individual messages can be dropped in flight or
//! have their acknowledgement lost after being stored. A
//! [`ResilientProducer`] retries through all of that under a seeded
//! [`RetryPolicy`], giving **at-least-once** delivery: nothing the producer
//! sends is lost (unless attempts run out mid-outage), but ack loss makes it
//! resend stored events, so duplicates appear and are accounted — exactly
//! the accounting [`audit_delivery`] performs from sequence headers.

use scfault::{FaultPlan, MessageFaults, OutageWindows, RetryPolicy};
use sctelemetry::TelemetryHandle;
use simclock::{SeededRng, SimTime};

use crate::event::Event;
use crate::topic::{Offset, PartitionId, Topic};

/// Metric name of the publishes-rejected-while-down counter.
pub const METRIC_BROKER_REJECTED: &str = "scstream_broker_rejected_total";
/// Metric name of the messages-dropped-in-flight counter.
pub const METRIC_BROKER_DROPPED: &str = "scstream_broker_dropped_total";
/// Metric name of the producer-retries counter.
pub const METRIC_PRODUCER_RETRIES: &str = "scstream_producer_retries_total";
/// Metric name of the duplicate-events counter (resends after a lost ack).
pub const METRIC_PRODUCER_DUPLICATES: &str = "scstream_producer_duplicates_total";
/// Metric name of the producer-gave-up counter (attempts exhausted).
pub const METRIC_PRODUCER_LOST: &str = "scstream_producer_lost_total";

/// Event header carrying the producer id, written by [`ResilientProducer`].
pub const HEADER_PRODUCER: &str = "producer";
/// Event header carrying the producer-side sequence number.
pub const HEADER_SEQ: &str = "seq";

/// Why a publish failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishError {
    /// The broker is inside an outage window; healthy again at `until`
    /// (`scfault::FOREVER` for an unmatched crash).
    Unavailable {
        /// Sim-time at which the broker comes back.
        until: SimTime,
    },
    /// The message was dropped in flight and never stored.
    Dropped,
    /// The message **was** stored at the given location, but the
    /// acknowledgement was lost — the producer can't tell this from
    /// [`PublishError::Dropped`], so it resends and creates a duplicate.
    AckLost {
        /// Partition the unacknowledged copy landed in.
        partition: PartitionId,
        /// Offset of the unacknowledged copy.
        offset: Offset,
    },
}

/// A topic fronted by fault injection: outage windows (node crashes and
/// link partitions of the broker's node in the plan) reject publishes, and
/// message faults drop or un-ack individual sends by sequence number.
///
/// The broker consumes the plan's views once at construction; publishing is
/// then a pure function of (plan, publish order), keeping runs
/// deterministic.
#[derive(Debug)]
pub struct Broker {
    topic: Topic,
    node: u32,
    crashes: OutageWindows,
    partitions: OutageWindows,
    faults: MessageFaults,
    seq: u64,
    telemetry: TelemetryHandle,
}

impl Broker {
    /// Wraps `topic` as broker node `node` under `plan`.
    pub fn new(topic: Topic, node: u32, plan: &FaultPlan) -> Self {
        Broker {
            topic,
            node,
            crashes: OutageWindows::node_crashes(plan),
            partitions: OutageWindows::link_partitions(plan),
            faults: MessageFaults::from_plan(plan),
            seq: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches telemetry: rejections and drops count into the
    /// `scstream_broker_*` metrics.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The broker's node id in the fault plan.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// If the broker is down at `at`, when it next comes back.
    pub fn down_until(&self, at: SimTime) -> Option<SimTime> {
        match (
            self.crashes.down_until(self.node, at),
            self.partitions.down_until(self.node, at),
        ) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Attempts to store `event` at sim-time `now`.
    ///
    /// # Errors
    ///
    /// [`PublishError::Unavailable`] during an outage window,
    /// [`PublishError::Dropped`] when the message faults drop this send, and
    /// [`PublishError::AckLost`] when it is stored but unacknowledged.
    pub fn try_publish(
        &mut self,
        event: Event,
        now: SimTime,
    ) -> Result<(PartitionId, Offset), PublishError> {
        let seq = self.seq;
        self.seq += 1;
        if let Some(until) = self.down_until(now) {
            self.telemetry
                .counter_inc(METRIC_BROKER_REJECTED, "publishes rejected while down");
            return Err(PublishError::Unavailable { until });
        }
        if self.faults.is_dropped(seq) {
            self.telemetry
                .counter_inc(METRIC_BROKER_DROPPED, "messages dropped in flight");
            return Err(PublishError::Dropped);
        }
        let (partition, offset) = self.topic.publish(event);
        if self.faults.is_ack_lost(seq) {
            return Err(PublishError::AckLost { partition, offset });
        }
        Ok((partition, offset))
    }

    /// The fronted topic.
    pub fn topic(&self) -> &Topic {
        &self.topic
    }

    /// Mutable access to the fronted topic (e.g. to attach consumers).
    pub fn topic_mut(&mut self) -> &mut Topic {
        &mut self.topic
    }

    /// Unwraps the broker back into its topic.
    pub fn into_topic(self) -> Topic {
        self.topic
    }
}

/// What became of one producer-side send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Stored and acknowledged after `attempts` tries, at sim-time `at`.
    Delivered {
        /// Attempts made, including the first.
        attempts: u32,
        /// Sim-time of the acknowledged attempt.
        at: SimTime,
    },
    /// Attempts ran out. The event may still be in the log if an earlier
    /// attempt was stored with its ack lost — [`audit_delivery`] counts the
    /// truth.
    GaveUp {
        /// Attempts made.
        attempts: u32,
    },
}

/// A producer that retries through broker faults with seeded backoff.
///
/// Each send is stamped with [`HEADER_PRODUCER`] / [`HEADER_SEQ`] headers so
/// [`audit_delivery`] can separate unique deliveries from duplicates. The
/// backoff RNG is seeded per producer, so a run's retry timings are a pure
/// function of `(plan, producer seed)`.
#[derive(Debug)]
pub struct ResilientProducer {
    id: String,
    retry: RetryPolicy,
    rng: SeededRng,
    next_seq: u64,
    retries: u64,
    duplicates: u64,
    gave_up: u64,
    telemetry: TelemetryHandle,
}

impl ResilientProducer {
    /// Creates producer `id` retrying under `retry`, jittered from `seed`.
    pub fn new(id: impl Into<String>, retry: RetryPolicy, seed: u64) -> Self {
        ResilientProducer {
            id: id.into(),
            retry,
            rng: SeededRng::new(seed ^ 0x9B0D_CE55),
            next_seq: 0,
            retries: 0,
            duplicates: 0,
            gave_up: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches telemetry: retries, duplicates, and give-ups count into the
    /// `scstream_producer_*` metrics.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The producer id written into [`HEADER_PRODUCER`].
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Sequence numbers handed out so far (== events sent).
    pub fn sent(&self) -> u64 {
        self.next_seq
    }

    /// Retries performed across all sends.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Duplicates created by resending after a lost ack.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Sends abandoned after exhausting attempts.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Sends `event` through `broker` starting at sim-time `now`, retrying
    /// with backoff on unavailability, drops, and lost acks.
    pub fn send(&mut self, broker: &mut Broker, event: Event, now: SimTime) -> SendOutcome {
        let seq = self.next_seq;
        self.next_seq += 1;
        let stamped = event
            .header(HEADER_PRODUCER, self.id.clone())
            .header(HEADER_SEQ, seq.to_string());
        let mut at = now;
        let mut stored_unacked = false;
        for attempt in 0..self.retry.max_attempts {
            if attempt > 0 {
                at += self.retry.delay(attempt, &mut self.rng);
                self.retries += 1;
                self.telemetry
                    .counter_inc(METRIC_PRODUCER_RETRIES, "producer publish retries");
            }
            match broker.try_publish(stamped.clone().at(at), at) {
                Ok(_) => {
                    if stored_unacked {
                        self.duplicates += 1;
                        self.telemetry.counter_inc(
                            METRIC_PRODUCER_DUPLICATES,
                            "duplicate events from resends after lost acks",
                        );
                    }
                    return SendOutcome::Delivered {
                        attempts: attempt + 1,
                        at,
                    };
                }
                Err(PublishError::AckLost { .. }) => stored_unacked = true,
                Err(PublishError::Unavailable { .. } | PublishError::Dropped) => {}
            }
        }
        self.gave_up += 1;
        self.telemetry.counter_inc(
            METRIC_PRODUCER_LOST,
            "sends abandoned after exhausting attempts",
        );
        SendOutcome::GaveUp {
            attempts: self.retry.max_attempts,
        }
    }
}

/// Ground truth of what reached the log, from sequence headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryAudit {
    /// Distinct `(producer, seq)` pairs present in the topic.
    pub delivered: usize,
    /// Extra copies beyond the first per pair (duplicates from lost acks).
    pub duplicates: usize,
    /// Expected sends that never landed in any form.
    pub lost: usize,
}

/// Audits `topic` against the expected send counts per producer id
/// (`(id, sends)`), counting unique deliveries, duplicates, and losses from
/// the [`HEADER_PRODUCER`] / [`HEADER_SEQ`] headers. Events without those
/// headers are ignored.
pub fn audit_delivery(topic: &Topic, expected: &[(&str, u64)]) -> DeliveryAudit {
    let mut seen = std::collections::BTreeMap::<(String, u64), usize>::new();
    for p in 0..topic.partition_count() {
        for e in topic.read(PartitionId(p), Offset(0), usize::MAX) {
            if let (Some(prod), Some(seq)) = (
                e.header_value(HEADER_PRODUCER),
                e.header_value(HEADER_SEQ).and_then(|s| s.parse().ok()),
            ) {
                *seen.entry((prod.to_string(), seq)).or_insert(0) += 1;
            }
        }
    }
    let delivered = seen.len();
    let duplicates = seen.values().map(|c| c - 1).sum();
    let expected_total: u64 = expected.iter().map(|(_, n)| n).sum();
    let lost = expected
        .iter()
        .map(|(id, n)| {
            (0..*n)
                .filter(|s| !seen.contains_key(&(id.to_string(), *s)))
                .count()
        })
        .sum::<usize>()
        .min(expected_total as usize);
    DeliveryAudit {
        delivered,
        duplicates,
        lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::{ConsumerGroup, ConsumerId};
    use scfault::{FaultKind, FOREVER};
    use simclock::SimDuration;

    fn retry() -> RetryPolicy {
        RetryPolicy::new(5, SimDuration::from_millis(100)).with_jitter(0.0)
    }

    fn outage_plan(node: u32, from_s: u64, dur_s: u64) -> FaultPlan {
        FaultPlan::empty().with_event(
            SimTime::from_secs(from_s),
            FaultKind::LinkPartition {
                node,
                duration: SimDuration::from_secs(dur_s),
            },
        )
    }

    #[test]
    fn healthy_broker_delivers_first_try() {
        let mut broker = Broker::new(Topic::new("t", 2), 0, &FaultPlan::empty());
        let mut producer = ResilientProducer::new("p0", retry(), 1);
        let out = producer.send(&mut broker, Event::new(b"x".to_vec()), SimTime::ZERO);
        assert_eq!(
            out,
            SendOutcome::Delivered {
                attempts: 1,
                at: SimTime::ZERO
            }
        );
        assert_eq!(broker.topic().total_events(), 1);
    }

    #[test]
    fn outage_window_rejects_then_heals() {
        let plan = outage_plan(0, 0, 1);
        let mut broker = Broker::new(Topic::new("t", 1), 0, &plan);
        assert_eq!(
            broker.down_until(SimTime::ZERO),
            Some(SimTime::from_secs(1))
        );
        let err = broker
            .try_publish(Event::new(b"x".to_vec()), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            PublishError::Unavailable {
                until: SimTime::from_secs(1)
            }
        );
        assert!(broker
            .try_publish(Event::new(b"x".to_vec()), SimTime::from_secs(1))
            .is_ok());
    }

    #[test]
    fn producer_retries_through_outage() {
        // 100 ms + 200 ms + 400 ms of backoff crosses a 500 ms outage.
        let plan = outage_plan(7, 0, 1);
        let mut broker = Broker::new(Topic::new("t", 1), 7, &plan);
        let mut producer = ResilientProducer::new("p0", retry(), 2);
        let out = producer.send(&mut broker, Event::new(b"x".to_vec()), SimTime::ZERO);
        match out {
            SendOutcome::Delivered { attempts, at } => {
                assert!(attempts > 1, "needed retries");
                assert!(at >= SimTime::from_secs(1), "delivered after the window");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(producer.retries(), 4, "0.1+0.2+0.4+0.8 s of backoff");
    }

    #[test]
    fn permanent_crash_exhausts_attempts() {
        let plan = FaultPlan::empty().with_event(SimTime::ZERO, FaultKind::NodeCrash { node: 3 });
        let mut broker = Broker::new(Topic::new("t", 1), 3, &plan);
        assert_eq!(broker.down_until(SimTime::from_secs(999)), Some(FOREVER));
        let mut producer = ResilientProducer::new("p0", retry(), 3);
        let out = producer.send(&mut broker, Event::new(b"x".to_vec()), SimTime::ZERO);
        assert_eq!(out, SendOutcome::GaveUp { attempts: 5 });
        assert_eq!(producer.gave_up(), 1);
        assert_eq!(broker.topic().total_events(), 0);
    }

    #[test]
    fn dropped_message_is_resent_without_duplicate() {
        let plan = FaultPlan::empty().with_event(SimTime::ZERO, FaultKind::MessageDrop { seq: 0 });
        let mut broker = Broker::new(Topic::new("t", 1), 0, &plan);
        let mut producer = ResilientProducer::new("p0", retry(), 4);
        let out = producer.send(&mut broker, Event::new(b"x".to_vec()), SimTime::ZERO);
        assert!(matches!(out, SendOutcome::Delivered { attempts: 2, .. }));
        assert_eq!(broker.topic().total_events(), 1);
        assert_eq!(producer.duplicates(), 0);
    }

    #[test]
    fn lost_ack_creates_an_accounted_duplicate() {
        let plan =
            FaultPlan::empty().with_event(SimTime::ZERO, FaultKind::MessageDuplicate { seq: 0 });
        let mut broker = Broker::new(Topic::new("t", 1), 0, &plan);
        let mut producer = ResilientProducer::new("p0", retry(), 5);
        let out = producer.send(&mut broker, Event::new(b"x".to_vec()), SimTime::ZERO);
        assert!(matches!(out, SendOutcome::Delivered { attempts: 2, .. }));
        assert_eq!(broker.topic().total_events(), 2, "stored twice");
        assert_eq!(producer.duplicates(), 1);
        let audit = audit_delivery(broker.topic(), &[("p0", 1)]);
        assert_eq!(
            audit,
            DeliveryAudit {
                delivered: 1,
                duplicates: 1,
                lost: 0
            }
        );
    }

    #[test]
    fn consumers_resume_from_committed_offsets_with_zero_loss() {
        // Outage mid-stream; producers retry through it; a consumer crashes
        // after a partial commit and a replacement resumes with no loss.
        let plan = outage_plan(0, 10, 2).with_event(
            SimTime::from_secs(5),
            FaultKind::MessageDuplicate { seq: 3 },
        );
        let mut broker = Broker::new(Topic::new("annotations", 2), 0, &plan);
        // Enough backoff budget (0.1 + 0.2 + … + 6.4 s) to cross the 2 s
        // outage from any send time inside it.
        let deep_retry = RetryPolicy::new(8, SimDuration::from_millis(100)).with_jitter(0.0);
        let mut producer = ResilientProducer::new("cam-1", deep_retry, 6);
        for i in 0..40u64 {
            let at = SimTime::from_millis(9_500 + i * 50); // straddles the outage
            let out = producer.send(
                &mut broker,
                Event::with_key(format!("k{}", i % 5), vec![i as u8]),
                at,
            );
            assert!(
                matches!(out, SendOutcome::Delivered { .. }),
                "send {i} delivered"
            );
        }
        let audit = audit_delivery(broker.topic(), &[("cam-1", 40)]);
        assert_eq!(audit.lost, 0, "at-least-once: nothing lost");
        assert_eq!(audit.delivered, 40);
        assert_eq!(audit.duplicates as u64, producer.duplicates());

        // Consume with a crash-and-resume in the middle.
        let topic = broker.topic();
        let mut group = ConsumerGroup::new("sink", 2);
        group.join(ConsumerId(0));
        let first = group.poll(ConsumerId(0), topic, 7);
        let mut consumed = first.len();
        // Only part of the first poll gets committed before the crash.
        for (pid, off, _) in first.iter().take(3) {
            group.commit(*pid, *off);
        }
        // Crash: consumer 0 leaves; its uncommitted in-flight work is
        // redelivered to the replacement.
        group.leave(ConsumerId(0));
        group.join(ConsumerId(1));
        loop {
            let polled = group.poll(ConsumerId(1), topic, 64);
            if polled.is_empty() {
                break;
            }
            consumed += polled.len();
            for (pid, off, _) in &polled {
                group.commit(*pid, *off);
            }
        }
        assert!(
            consumed >= topic.total_events(),
            "at-least-once consumption: {consumed} of {}",
            topic.total_events()
        );
        assert_eq!(group.lag(topic), 0, "everything committed");
    }
}
