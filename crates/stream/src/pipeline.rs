//! Source → channel → sink pipelines with ack-after-delivery.

use crate::channel::{ChannelError, MemoryChannel};
use crate::event::Event;

/// A producer of events (Twitter poller, Waze feed, camera annotator, ...).
pub trait Source: std::fmt::Debug {
    /// Produces the next batch of events (empty when idle/exhausted).
    fn poll(&mut self) -> Vec<Event>;
}

/// An in-flight event transformer between the channel and the sink —
/// Flume's "interceptor". Returning `None` drops the event (filtering);
/// returning a modified event rewrites it (enrichment, redaction).
pub trait Interceptor: std::fmt::Debug {
    /// Transforms or drops one event.
    fn intercept(&mut self, event: Event) -> Option<Event>;
}

/// An interceptor that keeps only events satisfying a predicate.
pub struct FilterInterceptor<F>(pub F);

impl<F> std::fmt::Debug for FilterInterceptor<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FilterInterceptor")
    }
}

impl<F: FnMut(&Event) -> bool> Interceptor for FilterInterceptor<F> {
    fn intercept(&mut self, event: Event) -> Option<Event> {
        (self.0)(&event).then_some(event)
    }
}

/// An interceptor that stamps a constant header on every event (Flume's
/// static interceptor).
#[derive(Debug, Clone)]
pub struct HeaderInterceptor {
    key: String,
    value: String,
}

impl HeaderInterceptor {
    /// Creates an interceptor stamping `key: value`.
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> Self {
        HeaderInterceptor {
            key: key.into(),
            value: value.into(),
        }
    }
}

impl Interceptor for HeaderInterceptor {
    fn intercept(&mut self, event: Event) -> Option<Event> {
        Some(event.header(self.key.clone(), self.value.clone()))
    }
}

/// A consumer of events (NoSQL writer, DFS appender, alert dispatcher, ...).
pub trait Sink: std::fmt::Debug {
    /// Delivers a batch. Returning `Err` means *nothing* in the batch was
    /// durably accepted; the pipeline will retry the whole batch.
    fn deliver(&mut self, events: &[Event]) -> Result<(), String>;
}

/// A source backed by a pre-built vector (testing and replay).
#[derive(Debug)]
pub struct VecSource {
    events: std::vec::IntoIter<Event>,
    batch: usize,
}

impl VecSource {
    /// Creates a source draining `events` in batches of `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(events: Vec<Event>, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        VecSource {
            events: events.into_iter(),
            batch,
        }
    }
}

impl Source for VecSource {
    fn poll(&mut self) -> Vec<Event> {
        self.events.by_ref().take(self.batch).collect()
    }
}

/// A sink that stores everything it accepts, optionally failing the first
/// `fail_first` deliveries (for retry tests).
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// Events durably accepted.
    pub received: Vec<Event>,
    /// Deliveries to reject before starting to accept.
    pub fail_first: usize,
    attempts: usize,
}

impl CollectingSink {
    /// Creates an always-accepting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sink failing its first `n` delivery attempts.
    pub fn failing_first(n: usize) -> Self {
        CollectingSink {
            fail_first: n,
            ..Default::default()
        }
    }

    /// Total delivery attempts observed.
    pub fn attempts(&self) -> usize {
        self.attempts
    }
}

impl Sink for CollectingSink {
    fn deliver(&mut self, events: &[Event]) -> Result<(), String> {
        self.attempts += 1;
        if self.attempts <= self.fail_first {
            return Err("transient sink failure".into());
        }
        self.received.extend_from_slice(events);
        Ok(())
    }
}

/// Lifetime pipeline counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Events pulled from the source.
    pub sourced: u64,
    /// Events durably delivered to the sink.
    pub delivered: u64,
    /// Delivery attempts that failed (batches, not events).
    pub failed_deliveries: u64,
    /// Events currently buffered in the channel.
    pub buffered: usize,
}

/// A Flume-style agent: `source → bounded channel → sink`, with events acked
/// out of the channel only after the sink accepts them.
///
/// # Examples
///
/// ```
/// use scstream::{CollectingSink, Event, Pipeline, VecSource};
///
/// let source = VecSource::new(
///     (0..10u8).map(|i| Event::new(vec![i])).collect(),
///     4,
/// );
/// let mut pipeline = Pipeline::new(Box::new(source), 8, Box::new(CollectingSink::new()));
/// let stats = pipeline.run_to_completion(100);
/// assert_eq!(stats.delivered, 10);
/// ```
#[derive(Debug)]
pub struct Pipeline {
    source: Box<dyn Source>,
    channel: MemoryChannel,
    sink: Box<dyn Sink>,
    sink_batch: usize,
    stats: PipelineStats,
    /// Events taken from the channel but not yet accepted by the sink.
    pending: Vec<Event>,
    /// Events polled from the source that did not fit in the channel yet
    /// (models a rewindable source position).
    backlog: std::collections::VecDeque<Event>,
    interceptors: Vec<Box<dyn Interceptor>>,
    dropped: u64,
}

impl Pipeline {
    /// Wires a source through a channel of `capacity` into a sink.
    pub fn new(source: Box<dyn Source>, capacity: usize, sink: Box<dyn Sink>) -> Self {
        Pipeline {
            source,
            channel: MemoryChannel::new(capacity),
            sink,
            sink_batch: 16,
            stats: PipelineStats::default(),
            pending: Vec::new(),
            backlog: std::collections::VecDeque::new(),
            interceptors: Vec::new(),
            dropped: 0,
        }
    }

    /// Appends an interceptor applied (in order) to events leaving the
    /// channel, before sink delivery (builder style).
    pub fn intercept(mut self, interceptor: impl Interceptor + 'static) -> Self {
        self.interceptors.push(Box::new(interceptor));
        self
    }

    /// Events dropped by interceptors so far.
    pub fn dropped_by_interceptors(&self) -> u64 {
        self.dropped
    }

    /// Sets the sink delivery batch size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn sink_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        self.sink_batch = batch;
        self
    }

    /// One scheduling round: poll the source into the channel (respecting
    /// backpressure), then attempt one sink delivery. Returns `true` if any
    /// work happened.
    pub fn run_once(&mut self) -> bool {
        let mut worked = false;

        // Source side: drain the backlog first, then poll for fresh events.
        // Anything the channel rejects stays in the backlog (a real Flume
        // source rewinds its position under backpressure).
        if self.backlog.is_empty() && !self.channel.is_full() {
            for event in self.source.poll() {
                self.stats.sourced += 1;
                worked = true;
                self.backlog.push_back(event);
            }
        }
        while !self.channel.is_full() {
            let Some(event) = self.backlog.pop_front() else {
                break;
            };
            worked = true;
            match self.channel.put(event) {
                Ok(()) => {}
                Err(ChannelError::Full) => unreachable!("guarded by is_full above"),
            }
        }

        // Sink side: retry pending first, else take a fresh batch through
        // the interceptor chain.
        if self.pending.is_empty() {
            let raw = self.channel.take_batch(self.sink_batch);
            self.pending = raw
                .into_iter()
                .filter_map(|mut e| {
                    for i in &mut self.interceptors {
                        match i.intercept(e) {
                            Some(next) => e = next,
                            None => {
                                self.dropped += 1;
                                return None;
                            }
                        }
                    }
                    Some(e)
                })
                .collect();
        }
        if !self.pending.is_empty() {
            worked = true;
            match self.sink.deliver(&self.pending) {
                Ok(()) => {
                    self.stats.delivered += self.pending.len() as u64;
                    self.pending.clear();
                }
                Err(_) => {
                    self.stats.failed_deliveries += 1;
                    // Keep `pending`; retried next round (at-least-once).
                }
            }
        }

        self.stats.buffered = self.channel.len() + self.pending.len() + self.backlog.len();
        worked
    }

    /// Runs rounds until idle or `max_rounds` is hit. Returns final stats.
    pub fn run_to_completion(&mut self, max_rounds: usize) -> PipelineStats {
        for _ in 0..max_rounds {
            if !self.run_once() {
                break;
            }
        }
        self.stats()
    }

    /// Current counters.
    pub fn stats(&self) -> PipelineStats {
        let mut s = self.stats;
        s.buffered = self.channel.len() + self.pending.len() + self.backlog.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(n: u8) -> Vec<Event> {
        (0..n).map(|i| Event::new(vec![i])).collect()
    }

    #[test]
    fn delivers_everything_in_order() {
        let mut p = Pipeline::new(
            Box::new(VecSource::new(events(20), 7)),
            64,
            Box::new(CollectingSink::new()),
        );
        let stats = p.run_to_completion(100);
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.sourced, 20);
        assert_eq!(stats.buffered, 0);
    }

    #[test]
    fn sink_failure_retries_whole_batch() {
        let mut p = Pipeline::new(
            Box::new(VecSource::new(events(5), 5)),
            8,
            Box::new(CollectingSink::failing_first(3)),
        )
        .sink_batch(5);
        let stats = p.run_to_completion(100);
        assert_eq!(stats.delivered, 5, "eventually delivered");
        assert_eq!(stats.failed_deliveries, 3);
    }

    #[test]
    fn no_event_lost_under_failures() {
        let n = 50u8;
        let mut p = Pipeline::new(
            Box::new(VecSource::new(events(n), 9)),
            16,
            Box::new(CollectingSink::failing_first(5)),
        )
        .sink_batch(4);
        p.run_to_completion(1000);
        // Inspect through a fresh run: rely on stats (sink is boxed).
        assert_eq!(p.stats().delivered, n as u64);
    }

    #[test]
    fn small_channel_applies_backpressure_but_completes() {
        let mut p = Pipeline::new(
            Box::new(VecSource::new(events(30), 3)),
            2, // tiny channel
            Box::new(CollectingSink::new()),
        )
        .sink_batch(2);
        let stats = p.run_to_completion(1000);
        assert_eq!(stats.delivered, 30);
    }

    #[test]
    fn idle_pipeline_stops() {
        let mut p = Pipeline::new(
            Box::new(VecSource::new(vec![], 1)),
            4,
            Box::new(CollectingSink::new()),
        );
        assert!(!p.run_once());
    }
}

#[cfg(test)]
mod interceptor_tests {
    use super::*;

    fn keyed_events(n: u8) -> Vec<Event> {
        (0..n)
            .map(|i| Event::with_key(format!("k{i}"), vec![i]))
            .collect()
    }

    #[test]
    fn filter_interceptor_drops_events() {
        let mut p = Pipeline::new(
            Box::new(VecSource::new(keyed_events(10), 5)),
            16,
            Box::new(CollectingSink::new()),
        )
        .intercept(FilterInterceptor(|e: &Event| {
            e.payload()[0].is_multiple_of(2)
        }));
        let stats = p.run_to_completion(100);
        assert_eq!(stats.delivered, 5, "odd payloads filtered");
        assert_eq!(p.dropped_by_interceptors(), 5);
    }

    #[test]
    fn header_interceptor_enriches() {
        #[derive(Debug, Default)]
        struct HeaderCheckSink {
            seen: usize,
        }
        impl Sink for HeaderCheckSink {
            fn deliver(&mut self, events: &[Event]) -> Result<(), String> {
                for e in events {
                    if e.header_value("datacenter") != Some("lsu-cct") {
                        return Err("missing stamped header".into());
                    }
                    self.seen += 1;
                }
                Ok(())
            }
        }
        let mut p = Pipeline::new(
            Box::new(VecSource::new(keyed_events(6), 3)),
            8,
            Box::new(HeaderCheckSink::default()),
        )
        .intercept(HeaderInterceptor::new("datacenter", "lsu-cct"));
        let stats = p.run_to_completion(100);
        assert_eq!(stats.delivered, 6);
        assert_eq!(stats.failed_deliveries, 0);
    }

    #[test]
    fn interceptors_chain_in_order() {
        // First enrich, then filter on the enrichment.
        let mut p = Pipeline::new(
            Box::new(VecSource::new(keyed_events(4), 4)),
            8,
            Box::new(CollectingSink::new()),
        )
        .intercept(HeaderInterceptor::new("stage", "tagged"))
        .intercept(FilterInterceptor(|e: &Event| {
            e.header_value("stage") == Some("tagged")
        }));
        let stats = p.run_to_completion(100);
        assert_eq!(stats.delivered, 4, "filter sees the upstream tag");
    }
}
