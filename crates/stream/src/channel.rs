//! Bounded in-memory channels with backpressure (the Flume channel).

use std::collections::VecDeque;

use crate::event::Event;

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The channel is at capacity; the producer must retry (backpressure).
    Full,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Full => write!(f, "channel is full"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A bounded FIFO buffer between a source and a sink.
///
/// Like Flume's memory channel, a full channel pushes backpressure to the
/// producer rather than dropping data.
///
/// # Examples
///
/// ```
/// use scstream::{Event, MemoryChannel, ChannelError};
///
/// let mut ch = MemoryChannel::new(2);
/// ch.put(Event::new(b"a".to_vec()))?;
/// ch.put(Event::new(b"b".to_vec()))?;
/// assert_eq!(ch.put(Event::new(b"c".to_vec())), Err(ChannelError::Full));
/// assert_eq!(ch.take().unwrap().payload(), b"a");
/// # Ok::<(), ChannelError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemoryChannel {
    queue: VecDeque<Event>,
    capacity: usize,
    total_in: u64,
    total_out: u64,
    rejected: u64,
}

impl MemoryChannel {
    /// Creates a channel holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        MemoryChannel {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            ..Default::default()
        }
    }

    /// Enqueues an event.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Full`] at capacity — the caller should retry later.
    pub fn put(&mut self, event: Event) -> Result<(), ChannelError> {
        if self.queue.len() >= self.capacity {
            self.rejected += 1;
            return Err(ChannelError::Full);
        }
        self.queue.push_back(event);
        self.total_in += 1;
        Ok(())
    }

    /// Dequeues the oldest event, if any.
    pub fn take(&mut self) -> Option<Event> {
        let e = self.queue.pop_front();
        if e.is_some() {
            self.total_out += 1;
        }
        e
    }

    /// Dequeues up to `max` events.
    pub fn take_batch(&mut self, max: usize) -> Vec<Event> {
        let n = max.min(self.queue.len());
        (0..n).filter_map(|_| self.take()).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// `(accepted, delivered, rejected)` lifetime counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.total_in, self.total_out, self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut ch = MemoryChannel::new(10);
        for i in 0..5u8 {
            ch.put(Event::new(vec![i])).unwrap();
        }
        for i in 0..5u8 {
            assert_eq!(ch.take().unwrap().payload(), &[i]);
        }
        assert!(ch.take().is_none());
    }

    #[test]
    fn backpressure_then_drain() {
        let mut ch = MemoryChannel::new(1);
        ch.put(Event::new(vec![1])).unwrap();
        assert!(ch.is_full());
        assert_eq!(ch.put(Event::new(vec![2])), Err(ChannelError::Full));
        ch.take().unwrap();
        assert!(ch.put(Event::new(vec![2])).is_ok());
        assert_eq!(ch.counters(), (2, 1, 1));
    }

    #[test]
    fn take_batch_respects_max() {
        let mut ch = MemoryChannel::new(10);
        for i in 0..7u8 {
            ch.put(Event::new(vec![i])).unwrap();
        }
        assert_eq!(ch.take_batch(3).len(), 3);
        assert_eq!(ch.take_batch(100).len(), 4);
        assert!(ch.take_batch(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = MemoryChannel::new(0);
    }
}
