//! Windowed stream aggregation — the "streaming processing" analytical
//! workload the paper's software layer supports (§II-C2).
//!
//! Tumbling and sliding windows over event timestamps, with per-key counts —
//! the primitive behind "traffic jams per 5 minutes per corridor" style
//! dashboards.

use std::collections::BTreeMap;

use sctelemetry::TelemetryHandle;
use simclock::{SimDuration, SimTime};

use crate::event::Event;

/// Metric name of the flushed-windows counter.
pub const METRIC_WINDOW_FLUSHES: &str = "scstream_windows_flush_total";

/// One aggregated window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowAggregate {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Events per key within the window, sorted by key. Keyless events
    /// aggregate under `""`.
    pub counts: BTreeMap<String, u64>,
}

impl WindowAggregate {
    /// Total events in the window.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// Assigns events to fixed, non-overlapping windows of `width` and counts
/// per key. Windows are emitted in time order; empty windows between
/// occupied ones are included (gaps matter on dashboards).
///
/// # Panics
///
/// Panics if `width` is zero.
///
/// # Examples
///
/// ```
/// use scstream::{Event, windows::tumbling};
/// use simclock::{SimDuration, SimTime};
///
/// let events = vec![
///     Event::with_key("jam", vec![]).at(SimTime::from_secs(10)),
///     Event::with_key("jam", vec![]).at(SimTime::from_secs(70)),
/// ];
/// let wins = tumbling(&events, SimDuration::from_secs(60));
/// assert_eq!(wins.len(), 2);
/// assert_eq!(wins[0].counts["jam"], 1);
/// ```
pub fn tumbling(events: &[Event], width: SimDuration) -> Vec<WindowAggregate> {
    assert!(width.as_micros() > 0, "window width must be positive");
    if events.is_empty() {
        return Vec::new();
    }
    let w = width.as_micros();
    let min_t = events
        .iter()
        .map(|e| e.timestamp().as_micros())
        .min()
        .expect("non-empty");
    let max_t = events
        .iter()
        .map(|e| e.timestamp().as_micros())
        .max()
        .expect("non-empty");
    let first = min_t / w;
    let last = max_t / w;
    let mut windows: Vec<WindowAggregate> = (first..=last)
        .map(|i| WindowAggregate {
            start: SimTime::from_micros(i * w),
            end: SimTime::from_micros((i + 1) * w),
            counts: BTreeMap::new(),
        })
        .collect();
    for e in events {
        let idx = (e.timestamp().as_micros() / w - first) as usize;
        let key = e.key().unwrap_or("").to_string();
        *windows[idx].counts.entry(key).or_default() += 1;
    }
    windows
}

/// Sliding windows of `width` advancing by `slide`; an event lands in every
/// window covering its timestamp. Only windows that contain at least one
/// event are returned (a fully dense sliding emission would be unbounded).
///
/// # Panics
///
/// Panics if `width` or `slide` is zero, or `slide > width`.
pub fn sliding(events: &[Event], width: SimDuration, slide: SimDuration) -> Vec<WindowAggregate> {
    assert!(
        width.as_micros() > 0 && slide.as_micros() > 0,
        "width and slide must be positive"
    );
    assert!(
        slide.as_micros() <= width.as_micros(),
        "slide must not exceed width"
    );
    if events.is_empty() {
        return Vec::new();
    }
    let w = width.as_micros();
    let s = slide.as_micros();
    let mut windows: BTreeMap<u64, WindowAggregate> = BTreeMap::new();
    for e in events {
        let t = e.timestamp().as_micros();
        // Window i covers [i*s, i*s + w); event t is in windows with
        // i in ((t - w)/s, t/s].
        let hi = t / s;
        let lo = if t >= w { (t - w) / s + 1 } else { 0 };
        for i in lo..=hi {
            let entry = windows.entry(i).or_insert_with(|| WindowAggregate {
                start: SimTime::from_micros(i * s),
                end: SimTime::from_micros(i * s + w),
                counts: BTreeMap::new(),
            });
            let key = e.key().unwrap_or("").to_string();
            *entry.counts.entry(key).or_default() += 1;
        }
    }
    windows.into_values().collect()
}

/// [`tumbling`] plus telemetry: counts every emitted window into
/// [`METRIC_WINDOW_FLUSHES`].
pub fn tumbling_recorded(
    events: &[Event],
    width: SimDuration,
    telemetry: &TelemetryHandle,
) -> Vec<WindowAggregate> {
    let wins = tumbling(events, width);
    telemetry.counter_add(
        METRIC_WINDOW_FLUSHES,
        "windows flushed by aggregations",
        wins.len() as u64,
    );
    wins
}

/// [`sliding`] plus telemetry: counts every emitted window into
/// [`METRIC_WINDOW_FLUSHES`].
pub fn sliding_recorded(
    events: &[Event],
    width: SimDuration,
    slide: SimDuration,
    telemetry: &TelemetryHandle,
) -> Vec<WindowAggregate> {
    let wins = sliding(events, width, slide);
    telemetry.counter_add(
        METRIC_WINDOW_FLUSHES,
        "windows flushed by aggregations",
        wins.len() as u64,
    );
    wins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(key: &str, secs: u64) -> Event {
        Event::with_key(key, vec![]).at(SimTime::from_secs(secs))
    }

    #[test]
    fn tumbling_partitions_time() {
        let events = vec![at("a", 5), at("a", 30), at("b", 61), at("a", 125)];
        let wins = tumbling(&events, SimDuration::from_secs(60));
        assert_eq!(wins.len(), 3);
        assert_eq!(wins[0].counts["a"], 2);
        assert_eq!(wins[1].counts["b"], 1);
        assert_eq!(wins[2].counts["a"], 1);
        // Every event lands in exactly one window.
        let total: u64 = wins.iter().map(WindowAggregate::total).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn tumbling_includes_empty_gaps() {
        let events = vec![at("a", 0), at("a", 185)];
        let wins = tumbling(&events, SimDuration::from_secs(60));
        assert_eq!(wins.len(), 4, "windows 0..240s with two empty in between");
        assert_eq!(wins[1].total(), 0);
        assert_eq!(wins[2].total(), 0);
    }

    #[test]
    fn tumbling_boundaries_are_half_open() {
        let events = vec![at("a", 59), at("a", 60)];
        let wins = tumbling(&events, SimDuration::from_secs(60));
        assert_eq!(wins[0].total(), 1);
        assert_eq!(wins[1].total(), 1);
    }

    #[test]
    fn tumbling_empty_input() {
        assert!(tumbling(&[], SimDuration::from_secs(60)).is_empty());
    }

    #[test]
    fn sliding_overlap_counts_twice() {
        // width 60, slide 30: an event at t=45 is in windows [0,60) and [30,90).
        let events = vec![at("a", 45)];
        let wins = sliding(
            &events,
            SimDuration::from_secs(60),
            SimDuration::from_secs(30),
        );
        assert_eq!(wins.len(), 2);
        assert!(wins.iter().all(|w| w.counts["a"] == 1));
    }

    #[test]
    fn sliding_equals_tumbling_when_slide_is_width() {
        let events = vec![at("a", 5), at("b", 65), at("a", 70)];
        let t = tumbling(&events, SimDuration::from_secs(60));
        let s = sliding(
            &events,
            SimDuration::from_secs(60),
            SimDuration::from_secs(60),
        );
        // Sliding omits empty windows; here none are empty.
        assert_eq!(t.len(), s.len());
        for (a, b) in t.iter().zip(&s) {
            assert_eq!(a.counts, b.counts);
            assert_eq!(a.start, b.start);
        }
    }

    #[test]
    fn sliding_window_membership_exact() {
        // Event at 100 with width 50, slide 10: windows starting at
        // 60, 70, 80, 90, 100 → 5 windows.
        let events = vec![at("a", 100)];
        let wins = sliding(
            &events,
            SimDuration::from_secs(50),
            SimDuration::from_secs(10),
        );
        assert_eq!(wins.len(), 5);
        assert_eq!(wins[0].start, SimTime::from_secs(60));
        assert_eq!(wins.last().unwrap().start, SimTime::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "slide must not exceed width")]
    fn sliding_rejects_big_slide() {
        let _ = sliding(&[], SimDuration::from_secs(60), SimDuration::from_secs(61));
    }

    #[test]
    fn keyless_events_bucket_under_empty_key() {
        let events = vec![Event::new(vec![]).at(SimTime::from_secs(1))];
        let wins = tumbling(&events, SimDuration::from_secs(60));
        assert_eq!(wins[0].counts[""], 1);
    }
}
