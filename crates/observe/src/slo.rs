//! Deterministic SLO evaluation and alerting.
//!
//! Rules are declarative: an objective (good-event fraction), a short
//! evaluation window, and a multi-window burn-rate alert in the Google SRE
//! formulation — the alert fires only when **both** the short window and
//! the long window (short × `long_factor`) burn error budget faster than
//! `burn_threshold`. The short window makes alerts responsive; the long
//! window suppresses blips, so quiet baselines stay quiet.
//!
//! Everything is windowed on sim time aligned to `SimTime::ZERO` and
//! evaluated in a fixed order, so the resulting [`AlertReport`] is
//! byte-identical for a given seed regardless of thread count.

use sctelemetry::{Report, TraceId};
use serde_json::{json, Value};
use simclock::{SimDuration, SimTime};

use crate::tree::TraceForest;

/// What an [`SloRule`] measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Fraction of requests answered (not shed / not lost).
    Availability,
    /// Fraction of requests faster than `bound_s` seconds.
    Latency {
        /// The latency bound defining a "good" request.
        bound_s: f64,
    },
    /// Fraction of jobs that complete (fog-layer loss).
    Loss,
}

impl SloKind {
    fn label(&self) -> &'static str {
        match self {
            SloKind::Availability => "availability",
            SloKind::Latency { .. } => "latency",
            SloKind::Loss => "loss",
        }
    }
}

/// A declarative service-level objective with burn-rate alerting.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Rule name (stable; keys the report).
    pub name: String,
    /// What is measured.
    pub kind: SloKind,
    /// Target good fraction in `(0, 1)` (e.g. `0.99`).
    pub objective: f64,
    /// Short evaluation window; evaluation happens at its boundaries.
    pub short_window: SimDuration,
    /// Long window = `short_window × long_factor` (SRE multi-window).
    pub long_factor: u32,
    /// Burn-rate threshold both windows must exceed to fire.
    pub burn_threshold: f64,
    /// Optional EWMA z-score anomaly detection on the windowed mean of
    /// the sample values (e.g. latency seconds). `None` disables it.
    pub anomaly_z: Option<f64>,
}

impl SloRule {
    /// An availability rule with SRE-ish defaults: 5 s short window,
    /// 12× long window, burn threshold 10.
    pub fn availability(name: &str, objective: f64) -> SloRule {
        SloRule {
            name: name.to_string(),
            kind: SloKind::Availability,
            objective,
            short_window: SimDuration::from_secs(5),
            long_factor: 12,
            burn_threshold: 10.0,
            anomaly_z: None,
        }
    }

    /// A latency-bound rule (`objective` fraction must finish within
    /// `bound_s` seconds).
    pub fn latency(name: &str, objective: f64, bound_s: f64) -> SloRule {
        SloRule {
            name: name.to_string(),
            kind: SloKind::Latency { bound_s },
            objective,
            short_window: SimDuration::from_secs(5),
            long_factor: 12,
            burn_threshold: 10.0,
            anomaly_z: None,
        }
    }

    /// A loss rule for fog jobs.
    pub fn loss(name: &str, objective: f64) -> SloRule {
        SloRule {
            name: name.to_string(),
            kind: SloKind::Loss,
            objective,
            short_window: SimDuration::from_secs(5),
            long_factor: 12,
            burn_threshold: 10.0,
            anomaly_z: None,
        }
    }

    /// Enables EWMA z-score anomaly detection at threshold `z`.
    pub fn with_anomaly_z(mut self, z: f64) -> SloRule {
        self.anomaly_z = Some(z);
        self
    }

    /// Overrides the evaluation windows.
    pub fn with_windows(mut self, short: SimDuration, long_factor: u32) -> SloRule {
        self.short_window = short;
        self.long_factor = long_factor.max(1);
        self
    }

    /// Overrides the burn threshold.
    pub fn with_burn_threshold(mut self, t: f64) -> SloRule {
        self.burn_threshold = t;
        self
    }
}

/// One observed service event feeding a rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSample {
    /// When the event completed (sim time).
    pub at: SimTime,
    /// Whether it met the objective ("good event").
    pub good: bool,
    /// Measured value (latency seconds for latency rules; 0/1 otherwise).
    pub value: f64,
}

/// Why an alert fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Multi-window burn rate exceeded the rule threshold.
    BurnRate,
    /// Windowed mean deviated from the EWMA baseline by more than the
    /// configured z-score.
    Anomaly,
}

/// A fired alert (rising edge only: one alert per continuous violation).
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The violated rule.
    pub rule: String,
    /// Burn-rate or anomaly.
    pub kind: AlertKind,
    /// The window boundary at which the alert fired.
    pub at: SimTime,
    /// Short-window burn rate at firing time.
    pub burn_short: f64,
    /// Long-window burn rate at firing time.
    pub burn_long: f64,
    /// Human-readable context.
    pub detail: String,
}

/// Deterministic summary of one evaluation: every fired alert plus
/// per-rule compliance, in rule order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlertReport {
    /// Fired alerts in `(at, rule, kind)` order.
    pub alerts: Vec<Alert>,
    /// Per-rule `(name, kind label, overall good fraction, samples)`.
    pub compliance: Vec<(String, &'static str, f64, usize)>,
}

impl AlertReport {
    /// Number of fired alerts.
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// Whether no alert fired.
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Multi-line text rendering (stable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, kind, frac, n) in &self.compliance {
            out.push_str(&format!(
                "slo {name} ({kind}): good_fraction={frac:.6} samples={n}\n"
            ));
        }
        if self.alerts.is_empty() {
            out.push_str("alerts: none\n");
        } else {
            for a in &self.alerts {
                let kind = match a.kind {
                    AlertKind::BurnRate => "burn-rate",
                    AlertKind::Anomaly => "anomaly",
                };
                out.push_str(&format!(
                    "ALERT {kind} rule={} at={} burn_short={:.3} burn_long={:.3} {}\n",
                    a.rule, a.at, a.burn_short, a.burn_long, a.detail
                ));
            }
        }
        out
    }

    /// Structured JSON view (stable key order via `kv` plus alert list).
    pub fn to_json_full(&self) -> Value {
        let alerts: Vec<Value> = self
            .alerts
            .iter()
            .map(|a| {
                json!({
                    "rule": a.rule,
                    "kind": match a.kind {
                        AlertKind::BurnRate => "burn_rate",
                        AlertKind::Anomaly => "anomaly",
                    },
                    "at_us": a.at.as_micros(),
                    "burn_short": a.burn_short,
                    "burn_long": a.burn_long,
                    "detail": a.detail,
                })
            })
            .collect();
        let compliance: Vec<Value> = self
            .compliance
            .iter()
            .map(|(name, kind, frac, n)| {
                json!({
                    "rule": name,
                    "kind": kind,
                    "good_fraction": frac,
                    "samples": n,
                })
            })
            .collect();
        json!({ "alerts": alerts, "compliance": compliance })
    }
}

impl Report for AlertReport {
    fn kv(&self) -> Vec<(String, f64)> {
        let mut kv = vec![("alerts_fired".to_string(), self.alerts.len() as f64)];
        for (name, _, frac, n) in &self.compliance {
            kv.push((format!("slo_{name}_good_fraction"), *frac));
            kv.push((format!("slo_{name}_samples"), *n as f64));
        }
        kv
    }
}

/// Evaluates `rules` against their sample streams. `streams[i]` feeds
/// `rules[i]`; samples need not be sorted (they are sorted internally by
/// `(at, good, value-bits)` for determinism).
pub fn evaluate(rules: &[SloRule], streams: &[Vec<SloSample>]) -> AlertReport {
    assert_eq!(rules.len(), streams.len(), "one stream per rule");
    let mut report = AlertReport::default();
    for (rule, stream) in rules.iter().zip(streams) {
        let mut samples = stream.clone();
        samples.sort_by(|a, b| {
            a.at.cmp(&b.at)
                .then_with(|| a.good.cmp(&b.good))
                .then_with(|| a.value.total_cmp(&b.value))
        });
        let good = samples.iter().filter(|s| s.good).count();
        let frac = if samples.is_empty() {
            1.0
        } else {
            good as f64 / samples.len() as f64
        };
        report
            .compliance
            .push((rule.name.clone(), rule.kind.label(), frac, samples.len()));
        evaluate_rule(rule, &samples, &mut report.alerts);
    }
    report
        .alerts
        .sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.rule.cmp(&b.rule)));
    report
}

/// Per-window tallies for one rule's stream.
struct Window {
    good: usize,
    total: usize,
    value_sum: f64,
}

fn evaluate_rule(rule: &SloRule, samples: &[SloSample], alerts: &mut Vec<Alert>) {
    if samples.is_empty() {
        return;
    }
    let w = rule.short_window.as_micros().max(1);
    let last = samples.last().expect("non-empty").at.as_micros();
    let n_windows = (last / w + 1) as usize;
    let mut windows: Vec<Window> = (0..n_windows)
        .map(|_| Window {
            good: 0,
            total: 0,
            value_sum: 0.0,
        })
        .collect();
    for s in samples {
        let i = (s.at.as_micros() / w) as usize;
        windows[i].total += 1;
        if s.good {
            windows[i].good += 1;
        }
        windows[i].value_sum += s.value;
    }

    let budget = (1.0 - rule.objective).max(1e-9);
    let burn = |bad: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / budget
        }
    };

    // EWMA baseline over windowed mean values (anomaly detection).
    let mut ewma_mean = 0.0f64;
    let mut ewma_var = 0.0f64;
    let mut warm = 0usize;
    const EWMA_ALPHA: f64 = 0.3;
    const WARMUP_WINDOWS: usize = 5;

    let mut burn_firing = false;
    let mut anomaly_firing = false;
    for i in 0..n_windows {
        let end = SimTime::from_micros((i as u64 + 1) * w);
        let short = &windows[i];
        let long_from = (i + 1).saturating_sub(rule.long_factor as usize);
        let (lg, lt) = windows[long_from..=i]
            .iter()
            .fold((0usize, 0usize), |(g, t), win| {
                (g + win.good, t + win.total)
            });
        let burn_short = burn(short.total - short.good, short.total);
        let burn_long = burn(lt - lg, lt);

        let violating = short.total > 0
            && burn_short >= rule.burn_threshold
            && burn_long >= rule.burn_threshold;
        if violating && !burn_firing {
            alerts.push(Alert {
                rule: rule.name.clone(),
                kind: AlertKind::BurnRate,
                at: end,
                burn_short,
                burn_long,
                detail: format!(
                    "objective={} threshold={} window={}",
                    rule.objective, rule.burn_threshold, rule.short_window
                ),
            });
        }
        burn_firing = violating;

        if let Some(z_threshold) = rule.anomaly_z {
            if short.total > 0 {
                let mean = short.value_sum / short.total as f64;
                if warm >= WARMUP_WINDOWS {
                    let sd = ewma_var.sqrt().max(1e-9);
                    let z = (mean - ewma_mean) / sd;
                    let anomalous = z.abs() >= z_threshold;
                    if anomalous && !anomaly_firing {
                        alerts.push(Alert {
                            rule: rule.name.clone(),
                            kind: AlertKind::Anomaly,
                            at: end,
                            burn_short,
                            burn_long,
                            detail: format!("z={z:.2} mean={mean:.6} baseline={ewma_mean:.6}"),
                        });
                    }
                    anomaly_firing = anomalous;
                    // Only fold non-anomalous windows into the baseline so
                    // a sustained shift keeps registering.
                    if !anomalous {
                        let d = mean - ewma_mean;
                        ewma_mean += EWMA_ALPHA * d;
                        ewma_var = (1.0 - EWMA_ALPHA) * (ewma_var + EWMA_ALPHA * d * d);
                    }
                } else {
                    let d = mean - ewma_mean;
                    if warm == 0 {
                        ewma_mean = mean;
                    } else {
                        ewma_mean += EWMA_ALPHA * d;
                        ewma_var = (1.0 - EWMA_ALPHA) * (ewma_var + EWMA_ALPHA * d * d);
                    }
                    warm += 1;
                }
            }
        }
    }
}

/// The burn-rate signal one [`BurnMeter`] window evaluation produces.
///
/// `fired` is the rising edge — true only on the first violating window
/// of a continuous violation, exactly like the alerts [`evaluate`] emits
/// — so a closed-loop consumer (an autoscaler, say) can key one action
/// per incident while still reading the raw burn rates every window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnSignal {
    /// Short-window burn rate (bad fraction over error budget).
    pub burn_short: f64,
    /// Long-window burn rate over the trailing `long_factor` windows.
    pub burn_long: f64,
    /// Whether both windows currently exceed the rule threshold.
    pub violating: bool,
    /// Rising edge of `violating` (one per continuous violation).
    pub fired: bool,
}

/// Incremental multi-window burn-rate evaluator for closed-loop control.
///
/// [`evaluate`] is the post-hoc batch engine: it wants every sample up
/// front. A control loop (the scmetro autoscaler) instead observes one
/// short window at a time and must decide *now*. `BurnMeter` is the
/// same Google-SRE multi-window formulation — identical budget, burn,
/// threshold, and rising-edge semantics, window for window — exposed as
/// an `observe one window → read one signal` API. The equivalence is
/// pinned by a test that replays a stream through both engines and
/// asserts the firing edges coincide.
///
/// # Examples
///
/// ```
/// use scobserve::{BurnMeter, SloRule};
///
/// let mut meter = BurnMeter::new(SloRule::availability("serve", 0.99));
/// // 20 healthy windows build history, then a total outage.
/// for _ in 0..20 {
///     assert!(!meter.observe(100, 0).fired);
/// }
/// // The long window vetoes the first bad window (blip suppression)…
/// assert!(!meter.observe(0, 100).violating);
/// // …then a sustained outage fires exactly one rising edge.
/// let sig = meter.observe(0, 100);
/// assert!(sig.fired && sig.violating);
/// assert!(meter.observe(0, 100).violating); // still violating…
/// assert!(!meter.observe(0, 100).fired); // …but no new rising edge
/// ```
#[derive(Debug, Clone)]
pub struct BurnMeter {
    rule: SloRule,
    /// Trailing `(good, total)` tallies, most recent last; capped at
    /// `long_factor` windows.
    trailing: std::collections::VecDeque<(usize, usize)>,
    firing: bool,
}

impl BurnMeter {
    /// A meter evaluating `rule` one short-window at a time.
    pub fn new(rule: SloRule) -> Self {
        BurnMeter {
            trailing: std::collections::VecDeque::with_capacity(rule.long_factor.max(1) as usize),
            rule,
            firing: false,
        }
    }

    /// The rule being evaluated.
    pub fn rule(&self) -> &SloRule {
        &self.rule
    }

    /// Feeds one short window's tallies (`good` events meeting the
    /// objective, `bad` events missing it) and returns the burn signal
    /// at this window's boundary.
    pub fn observe(&mut self, good: usize, bad: usize) -> BurnSignal {
        let total = good + bad;
        if self.trailing.len() == self.rule.long_factor.max(1) as usize {
            self.trailing.pop_front();
        }
        self.trailing.push_back((good, total));

        let budget = (1.0 - self.rule.objective).max(1e-9);
        let burn = |bad: usize, total: usize| {
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            }
        };
        let burn_short = burn(total - good, total);
        let (lg, lt) = self
            .trailing
            .iter()
            .fold((0usize, 0usize), |(g, t), (wg, wt)| (g + wg, t + wt));
        let burn_long = burn(lt - lg, lt);
        let violating = total > 0
            && burn_short >= self.rule.burn_threshold
            && burn_long >= self.rule.burn_threshold;
        let fired = violating && !self.firing;
        self.firing = violating;
        BurnSignal {
            burn_short,
            burn_long,
            violating,
            fired,
        }
    }
}

/// Evaluates a rule's multi-window burn rate over **stored series**: the
/// batch counterpart of [`BurnMeter`], grounded in a [`sctsdb::Tsdb`]
/// instead of a live tally stream.
///
/// `good` and `bad` name cumulative counter series (each should carry an
/// explicit `0` sample at the epoch, the convention every producer in
/// this stack follows). For each boundary `bᵢ` the window tallies are
/// `increase(series, bᵢ₋₁, bᵢ]` — exact counter deltas, not
/// extrapolations — fed through the same Google-SRE budget/burn/edge
/// math as [`BurnMeter::observe`]. Because window counts are integers
/// (exactly representable as `f64`), the resulting [`BurnSignal`]s are
/// **bit-identical** to replaying the same tallies through a meter:
/// store the day, and the post-hoc verdicts equal the closed-loop ones
/// edge for edge. E19 pins exactly that equivalence.
pub fn burn_over_series(
    db: &sctsdb::Tsdb,
    rule: &SloRule,
    good: &sctsdb::SeriesId,
    bad: &sctsdb::SeriesId,
    boundaries: &[SimTime],
) -> Vec<(SimTime, BurnSignal)> {
    let good_samples = db.samples(good);
    let bad_samples = db.samples(bad);
    let budget = (1.0 - rule.objective).max(1e-9);
    let burn = |bad: f64, total: f64| {
        if total <= 0.0 {
            0.0
        } else {
            (bad / total) / budget
        }
    };
    let long_factor = rule.long_factor.max(1) as usize;
    // Per-window `(good, total)` tallies, indexed like the boundaries.
    let mut windows: Vec<(f64, f64)> = Vec::with_capacity(boundaries.len());
    let mut out = Vec::with_capacity(boundaries.len());
    let mut firing = false;
    let mut prev_us = 0u64;
    for &b in boundaries {
        let to_us = b.as_micros();
        let g = sctsdb::increase(&good_samples, prev_us, to_us);
        let bd = sctsdb::increase(&bad_samples, prev_us, to_us);
        prev_us = to_us;
        let total = g + bd;
        windows.push((g, total));
        let long_from = windows.len().saturating_sub(long_factor);
        let (lg, lt) = windows[long_from..]
            .iter()
            .fold((0.0, 0.0), |(sg, st), &(wg, wt)| (sg + wg, st + wt));
        let burn_short = burn(total - g, total);
        let burn_long = burn(lt - lg, lt);
        let violating =
            total > 0.0 && burn_short >= rule.burn_threshold && burn_long >= rule.burn_threshold;
        let fired = violating && !firing;
        firing = violating;
        out.push((
            b,
            BurnSignal {
                burn_short,
                burn_long,
                violating,
                fired,
            },
        ));
    }
    out
}

/// Builds availability samples from a forest's request roots plus shed
/// events: answered requests are good; each `(trace, at)` shed marker is a
/// bad sample.
pub fn availability_stream(
    forest: &TraceForest,
    prefix: &str,
    shed: &[(TraceId, SimTime)],
) -> Vec<SloSample> {
    let shed_ids: std::collections::BTreeSet<TraceId> = shed.iter().map(|(t, _)| *t).collect();
    let mut out: Vec<SloSample> = forest
        .root_durations(prefix)
        .into_iter()
        .filter(|(t, _, _)| !shed_ids.contains(t))
        .map(|(_, start, d)| SloSample {
            at: start + SimDuration::from_secs_f64(d),
            good: true,
            value: 1.0,
        })
        .collect();
    out.extend(shed.iter().map(|(_, at)| SloSample {
        at: *at,
        good: false,
        value: 0.0,
    }));
    out
}

/// Builds latency samples from a forest's request roots: good when the
/// root duration is within `bound_s`.
pub fn latency_stream(forest: &TraceForest, prefix: &str, bound_s: f64) -> Vec<SloSample> {
    forest
        .root_durations(prefix)
        .into_iter()
        .map(|(_, start, d)| SloSample {
            at: start + SimDuration::from_secs_f64(d),
            good: d <= bound_s,
            value: d,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(at_s: u64, good: bool, value: f64) -> SloSample {
        SloSample {
            at: SimTime::from_secs(at_s),
            good,
            value,
        }
    }

    #[test]
    fn quiet_baseline_fires_nothing() {
        let rule = SloRule::availability("serve", 0.99);
        let stream: Vec<SloSample> = (0..600).map(|i| s(i / 10, i % 97 != 0, 1.0)).collect();
        // ~1% bad: burn rate ~1, far below threshold 10.
        let report = evaluate(&[rule], &[stream]);
        assert!(report.is_empty(), "got {:?}", report.alerts);
        assert_eq!(report.compliance.len(), 1);
    }

    #[test]
    fn sustained_outage_fires_once_per_violation() {
        let rule = SloRule::availability("serve", 0.99);
        // 120 s of traffic, total outage between 40 s and 80 s.
        let stream: Vec<SloSample> = (0..1200)
            .map(|i| {
                let at = i / 10;
                s(at, !(40..80).contains(&at), 1.0)
            })
            .collect();
        let report = evaluate(&[rule], &[stream]);
        let burn: Vec<&Alert> = report
            .alerts
            .iter()
            .filter(|a| a.kind == AlertKind::BurnRate)
            .collect();
        assert_eq!(burn.len(), 1, "rising edge only: {:?}", report.alerts);
        assert!(burn[0].burn_short >= 10.0);
        assert!(burn[0].at >= SimTime::from_secs(40));
    }

    #[test]
    fn short_blip_is_suppressed_by_long_window() {
        let rule = SloRule::availability("serve", 0.99);
        // One bad 5 s window out of 300 s: short burn 100, long burn ~8.
        let stream: Vec<SloSample> = (0..3000)
            .map(|i| {
                let at = i / 10;
                s(at, !(100..105).contains(&at), 1.0)
            })
            .collect();
        let report = evaluate(&[rule], &[stream]);
        assert!(
            report.is_empty(),
            "long window must veto blips: {:?}",
            report.alerts
        );
    }

    #[test]
    fn latency_rule_counts_bound_violations() {
        let rule = SloRule::latency("p99", 0.5, 0.010);
        let stream: Vec<SloSample> = (0..1200)
            .map(|i| {
                let slow = i / 10 >= 30;
                s(i / 10, !slow, if slow { 0.050 } else { 0.001 })
            })
            .collect();
        let report = evaluate(&[rule.with_burn_threshold(1.5)], &[stream]);
        assert!(!report.is_empty());
        assert_eq!(report.alerts[0].kind, AlertKind::BurnRate);
    }

    #[test]
    fn anomaly_detector_flags_level_shift_only() {
        let rule = SloRule::latency("lat", 0.0001, 1e9).with_anomaly_z(4.0);
        // 60 windows at a steady 1 ms, then a 10× level shift.
        let stream: Vec<SloSample> = (0..4000)
            .map(|i| {
                let at = i / 10;
                let v = if at >= 300 { 0.010 } else { 0.001 };
                s(at, true, v)
            })
            .collect();
        let report = evaluate(&[rule], &[stream]);
        let anomalies: Vec<&Alert> = report
            .alerts
            .iter()
            .filter(|a| a.kind == AlertKind::Anomaly)
            .collect();
        assert_eq!(anomalies.len(), 1, "{:?}", report.alerts);
        assert!(anomalies[0].at >= SimTime::from_secs(300));
    }

    /// Replays a windowed sample stream through the batch engine and the
    /// incremental meter; the burn-rate firing edges must coincide.
    #[test]
    fn burn_meter_matches_batch_evaluate() {
        // Traffic with two violation episodes and a quiet stretch.
        let good_at = |at: u64| !((40..80).contains(&at) || (160..200).contains(&at));
        let stream: Vec<SloSample> = (0..2400)
            .map(|i| {
                let at = i / 10;
                s(at, good_at(at), 1.0)
            })
            .collect();
        let rule = SloRule::availability("serve", 0.99);
        let batch = evaluate(std::slice::from_ref(&rule), std::slice::from_ref(&stream));
        let batch_edges: Vec<u64> = batch
            .alerts
            .iter()
            .filter(|a| a.kind == AlertKind::BurnRate)
            .map(|a| a.at.as_micros())
            .collect();

        // Window the same stream by the rule's short window and replay.
        let w = rule.short_window.as_micros();
        let last = stream.last().unwrap().at.as_micros();
        let n_windows = (last / w + 1) as usize;
        let mut meter = BurnMeter::new(rule);
        let mut meter_edges = Vec::new();
        for i in 0..n_windows {
            let (lo, hi) = (i as u64 * w, (i as u64 + 1) * w);
            let in_win = |t: SimTime| (lo..hi).contains(&t.as_micros());
            let good = stream.iter().filter(|x| in_win(x.at) && x.good).count();
            let bad = stream.iter().filter(|x| in_win(x.at) && !x.good).count();
            if meter.observe(good, bad).fired {
                meter_edges.push(hi);
            }
        }
        assert_eq!(batch_edges, meter_edges);
        assert_eq!(meter_edges.len(), 2, "two episodes, two rising edges");
    }

    /// Records two counter series into a store, evaluates the rule over
    /// them, and replays the identical window tallies through a
    /// [`BurnMeter`]: every signal must match bit for bit.
    #[test]
    fn burn_over_series_matches_meter_bitwise() {
        use sctsdb::{SeriesId, Tsdb};

        let rule = SloRule::availability("serve", 0.99).with_windows(SimDuration::from_secs(5), 4);
        let good_id = SeriesId::new("good_total");
        let bad_id = SeriesId::new("bad_total");
        let mut db = Tsdb::new();
        db.record(&good_id, SimTime::ZERO, 0.0).unwrap();
        db.record(&bad_id, SimTime::ZERO, 0.0).unwrap();

        // Two outage episodes over 60 windows, cumulative counters
        // sampled at each window close.
        let w = rule.short_window;
        let mut tallies = Vec::new();
        let (mut cg, mut cb) = (0u64, 0u64);
        for i in 0..60u64 {
            let outage = (10..14).contains(&i) || (40..48).contains(&i);
            let (g, b) = if outage { (0, 50) } else { (50, i % 2) };
            cg += g;
            cb += b;
            let close = SimTime::from_micros(w.as_micros() * (i + 1));
            db.record(&good_id, close, cg as f64).unwrap();
            db.record(&bad_id, close, cb as f64).unwrap();
            tallies.push((close, g as usize, b as usize));
        }

        let boundaries: Vec<SimTime> = tallies.iter().map(|&(c, _, _)| c).collect();
        let from_series = burn_over_series(&db, &rule, &good_id, &bad_id, &boundaries);

        let mut meter = BurnMeter::new(rule);
        assert_eq!(from_series.len(), tallies.len());
        let mut edges = 0;
        for ((at, sig), (close, g, b)) in from_series.iter().zip(&tallies) {
            let want = meter.observe(*g, *b);
            assert_eq!(at, close);
            assert_eq!(sig.burn_short.to_bits(), want.burn_short.to_bits());
            assert_eq!(sig.burn_long.to_bits(), want.burn_long.to_bits());
            assert_eq!(sig.violating, want.violating);
            assert_eq!(sig.fired, want.fired);
            edges += sig.fired as usize;
        }
        assert_eq!(edges, 2, "two episodes, two rising edges");
    }

    #[test]
    fn burn_meter_empty_windows_never_fire() {
        let mut meter = BurnMeter::new(SloRule::availability("serve", 0.5));
        for _ in 0..20 {
            let sig = meter.observe(0, 0);
            assert!(!sig.violating && !sig.fired);
            assert_eq!(sig.burn_short, 0.0);
        }
    }

    #[test]
    fn report_renders_and_serializes_stably() {
        let rule = SloRule::availability("serve", 0.99);
        let stream: Vec<SloSample> = (0..100).map(|i| s(i, false, 0.0)).collect();
        let a = evaluate(std::slice::from_ref(&rule), std::slice::from_ref(&stream));
        let b = evaluate(&[rule], &[stream]);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.to_json_full()).unwrap(),
            serde_json::to_string(&b.to_json_full()).unwrap()
        );
        assert!(a.render().contains("ALERT burn-rate rule=serve"));
        assert!(a.kv()[0].0 == "alerts_fired");
    }
}
