//! Trace exporters: Chrome `trace_event` JSON and folded-stack flamegraph
//! text. Both are byte-deterministic for a given forest — ordering never
//! depends on recording order or thread interleaving.

use std::collections::BTreeMap;

use serde_json::{json, Map, Value};

use crate::tree::{TraceForest, TraceTree};

/// Renders a forest as Chrome `trace_event` JSON (the `chrome://tracing` /
/// Perfetto format): one complete (`"ph": "X"`) event per span, `ts`/`dur`
/// in microseconds, causal ids as fixed-width hex strings under `args`.
///
/// Traces appear in `(root start, trace id)` order; within a trace, spans
/// appear in depth-first order, so the output is byte-identical across
/// runs and thread counts. Each trace gets its own `pid`; spans render on
/// `tid` 0 of that process.
pub fn chrome_trace(forest: &TraceForest) -> Value {
    let mut events = Vec::new();
    for (pid, tree) in forest.traces.iter().enumerate() {
        let mut stack: Vec<usize> = tree.roots.iter().rev().copied().collect();
        while let Some(idx) = stack.pop() {
            let node = &tree.spans[idx];
            let ctx = node.ctx();
            let mut args = Map::new();
            args.insert("trace".into(), Value::String(ctx.trace.as_hex()));
            args.insert("span".into(), Value::String(ctx.span.as_hex()));
            args.insert(
                "parent".into(),
                match ctx.parent {
                    Some(p) => Value::String(p.as_hex()),
                    None => Value::Null,
                },
            );
            events.push(json!({
                "name": node.record.name,
                "cat": node.record.target,
                "ph": "X",
                "ts": node.record.start.as_micros(),
                "dur": node.record.end.saturating_since(node.record.start).as_micros(),
                "pid": pid,
                "tid": 0,
                "args": Value::Object(args),
            }));
            for &c in node.children.iter().rev() {
                stack.push(c);
            }
        }
    }
    json!({ "traceEvents": events })
}

/// Renders a forest as folded-stack flamegraph text (`flamegraph.pl` /
/// inferno input): one `frame;frame;... weight` line per distinct stack,
/// weighted by **self time** in microseconds, aggregated across all traces
/// and sorted lexicographically. Frames are `target:name`.
pub fn folded_stacks(forest: &TraceForest) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for tree in &forest.traces {
        for &root in &tree.roots {
            fold(tree, root, String::new(), &mut weights);
        }
    }
    let mut out = String::new();
    for (stack, w) in weights {
        if w > 0 {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
    }
    out
}

fn fold(tree: &TraceTree, idx: usize, prefix: String, weights: &mut BTreeMap<String, u64>) {
    let node = &tree.spans[idx];
    let frame = format!("{}:{}", node.record.target, node.record.name);
    let stack = if prefix.is_empty() {
        frame
    } else {
        format!("{prefix};{frame}")
    };
    let total = node
        .record
        .end
        .saturating_since(node.record.start)
        .as_micros();
    let child_total: u64 = node
        .children
        .iter()
        .map(|&c| {
            let ch = &tree.spans[c].record;
            ch.end.saturating_since(ch.start).as_micros()
        })
        .sum();
    *weights.entry(stack.clone()).or_insert(0) += total.saturating_sub(child_total);
    for &c in &node.children {
        fold(tree, c, stack.clone(), weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctelemetry::{SpanContext, Telemetry, TraceId};
    use simclock::SimTime;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    fn forest() -> TraceForest {
        let t = Telemetry::shared();
        let h = t.handle();
        for i in 0..2u64 {
            let root = SpanContext::root(TraceId::derive(11, 1, i));
            let base = ms(10 * i);
            let mut g = h.span_guard("srv", "request/get", base, root);
            g.child_span("queue", base, base + simclock::SimDuration::from_millis(2));
            g.child_span(
                "backend",
                base + simclock::SimDuration::from_millis(2),
                base + simclock::SimDuration::from_millis(5),
            );
            g.finish(base + simclock::SimDuration::from_millis(6));
        }
        TraceForest::from_telemetry(&t)
    }

    #[test]
    fn chrome_trace_emits_complete_events_with_hex_ids() {
        let f = forest();
        let v = chrome_trace(&f);
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 6);
        // Depth-first: root precedes its children; per-trace pid.
        assert_eq!(events[0]["name"], "request/get");
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["pid"], 0);
        assert_eq!(events[3]["pid"], 1);
        assert_eq!(events[0]["args"]["parent"], Value::Null);
        let root_span = events[0]["args"]["span"].as_str().unwrap();
        assert_eq!(root_span.len(), 16);
        assert_eq!(events[1]["args"]["parent"].as_str().unwrap(), root_span);
        assert_eq!(events[0]["ts"].as_u64().unwrap(), 0);
        assert_eq!(events[0]["dur"].as_u64().unwrap(), 6_000);
    }

    #[test]
    fn folded_stacks_weight_self_time_and_aggregate() {
        let f = forest();
        let text = folded_stacks(&f);
        // Two identical traces aggregate: root self = 6-5 = 1ms each.
        assert!(text.contains("srv:request/get 2000\n"));
        assert!(text.contains("srv:request/get;srv:queue 4000\n"));
        assert!(text.contains("srv:request/get;srv:backend 6000\n"));
        // Lines sorted lexicographically.
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn exports_are_deterministic() {
        let a = serde_json::to_string(&chrome_trace(&forest())).unwrap();
        let b = serde_json::to_string(&chrome_trace(&forest())).unwrap();
        assert_eq!(a, b);
        assert_eq!(folded_stacks(&forest()), folded_stacks(&forest()));
    }
}
