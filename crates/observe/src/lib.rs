//! # scobserve — trace analytics and deterministic alerting
//!
//! `sctelemetry` records what happened; this crate explains it. Three
//! pieces, all byte-deterministic for a given seed:
//!
//! - **Span trees** ([`TraceForest`]): flat span records carrying
//!   [`sctelemetry::SpanContext`] are reassembled into per-request causal
//!   trees, with orphan detection (a span whose parent was never
//!   recorded) — the smart-city serving, fog, and pipeline layers must
//!   produce complete trees for every request.
//! - **Trace analytics**: per-request [`critical_path`] extraction whose
//!   segment durations partition the request latency exactly,
//!   p50/p99/max [`exemplars`] naming the actual traces behind the
//!   percentiles, and exporters — Chrome `trace_event` JSON
//!   ([`chrome_trace`]) and folded-stack flamegraph text
//!   ([`folded_stacks`]).
//! - **SLO engine** ([`evaluate`]): declarative [`SloRule`]s
//!   (availability, latency-bound, loss) over windowed sample streams,
//!   with Google-SRE multi-window burn-rate alerts and optional EWMA
//!   z-score anomaly detection, producing a stable [`AlertReport`] —
//!   fault and overload sweeps must trip it, quiet baselines must not.
//!   For closed-loop consumers (the scmetro autoscaler), [`BurnMeter`]
//!   exposes the same multi-window burn-rate semantics incrementally,
//!   one short window at a time.
//!
//! Trace ids are derived, never random: `TraceId::derive(seed, stream,
//! index)` with the per-subsystem stream salts below, so traces from
//! different layers sharing one recorder can never collide and the same
//! seed names the same traces at any thread count.
//!
//! # Examples
//!
//! ```
//! use sctelemetry::{SpanContext, Telemetry, TraceId};
//! use scobserve::{critical_path, TraceForest, STREAM_SERVE};
//! use simclock::SimTime;
//!
//! let t = Telemetry::shared();
//! let h = t.handle();
//! let root = SpanContext::root(TraceId::derive(42, STREAM_SERVE, 0));
//! let mut g = h.span_guard("scserve", "request/get", SimTime::ZERO, root);
//! g.child_span("admission/queue", SimTime::ZERO, SimTime::from_micros(80));
//! g.child_span("backend/shard-0", SimTime::from_micros(80), SimTime::from_micros(580));
//! g.finish(SimTime::from_micros(580));
//!
//! let forest = TraceForest::from_telemetry(&t);
//! let tree = &forest.traces[0];
//! assert!(tree.is_complete());
//! let path = critical_path(tree).unwrap();
//! assert_eq!(path.total().as_micros(), 580);
//! ```

pub mod export;
pub mod path;
pub mod slo;
pub mod tree;

pub use export::{chrome_trace, folded_stacks};
pub use path::{
    critical_path, exemplar_paths, exemplars, CriticalPath, Exemplar, PathSegment, SegmentKind,
};
pub use slo::{
    availability_stream, burn_over_series, evaluate, latency_stream, Alert, AlertKind, AlertReport,
    BurnMeter, BurnSignal, SloKind, SloRule, SloSample,
};
pub use tree::{SpanNode, TraceForest, TraceTree};

pub use sctelemetry::{STREAM_FOG, STREAM_PIPELINE, STREAM_SERVE};

use sctelemetry::{Telemetry, TraceId};
use simclock::SimTime;

/// One-stop analysis over a recorder: forest assembly plus the derived
/// artifacts the dashboard and benches consume.
#[derive(Debug)]
pub struct TraceAnalysis {
    /// The assembled forest.
    pub forest: TraceForest,
    /// Shed/lost markers harvested from trace events whose detail carries
    /// a `trace=<hex>` tag, as `(trace id, event time)`.
    pub bad_marks: Vec<(TraceId, SimTime)>,
}

impl TraceAnalysis {
    /// Assembles the forest and harvests `trace=<hex>`-tagged events
    /// (shed requests, lost jobs) from `telemetry`'s trace buffer.
    pub fn new(telemetry: &Telemetry) -> TraceAnalysis {
        let records = telemetry.trace();
        let forest = TraceForest::from_records(&records);
        let mut bad_marks = Vec::new();
        for r in &records {
            let sctelemetry::TraceRecord::Event(e) = r else {
                continue;
            };
            if let Some(hex) = e
                .detail
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("trace="))
            {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    bad_marks.push((TraceId(id), e.at));
                }
            }
        }
        TraceAnalysis { forest, bad_marks }
    }

    /// Complete-tree check over the whole forest: every trace has exactly
    /// one root and no orphan spans.
    pub fn all_complete(&self) -> bool {
        self.forest.traces.iter().all(|t| t.is_complete())
    }

    /// Exemplar critical paths for roots named under `prefix` (see
    /// [`exemplar_paths`]).
    pub fn exemplar_paths(&self, prefix: &str) -> Vec<(Exemplar, Option<CriticalPath>)> {
        exemplar_paths(&self.forest, prefix)
    }

    /// Availability samples for roots under `prefix`, using the harvested
    /// bad marks as shed/lost events (see [`availability_stream`]).
    pub fn availability(&self, prefix: &str) -> Vec<SloSample> {
        availability_stream(&self.forest, prefix, &self.bad_marks)
    }

    /// Latency samples for roots under `prefix` against `bound_s` (see
    /// [`latency_stream`]).
    pub fn latency(&self, prefix: &str, bound_s: f64) -> Vec<SloSample> {
        latency_stream(&self.forest, prefix, bound_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctelemetry::SpanContext;

    #[test]
    fn stream_salts_are_distinct() {
        let ids = [STREAM_SERVE, STREAM_FOG, STREAM_PIPELINE];
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(TraceId::derive(42, *a, 0), TraceId::derive(42, *b, 0));
            }
        }
    }

    #[test]
    fn analysis_harvests_bad_marks_and_checks_completeness() {
        let t = Telemetry::shared();
        let h = t.handle();
        let ok = SpanContext::root(TraceId::derive(42, STREAM_SERVE, 0));
        let shed = TraceId::derive(42, STREAM_SERVE, 1);
        h.span_in(
            "scserve",
            "request/get",
            SimTime::ZERO,
            SimTime::from_micros(100),
            ok,
        );
        h.span_in(
            "scserve",
            "request/shed",
            SimTime::from_micros(50),
            SimTime::from_micros(50),
            SpanContext::root(shed),
        );
        h.event(
            "scserve",
            "request/shed",
            SimTime::from_micros(50),
            &format!("trace={}", shed.as_hex()),
        );

        let a = TraceAnalysis::new(&t);
        assert!(a.all_complete());
        assert_eq!(a.bad_marks, vec![(shed, SimTime::from_micros(50))]);
        let avail = a.availability("request/");
        assert_eq!(avail.len(), 2);
        assert_eq!(avail.iter().filter(|s| s.good).count(), 1);
        let lat = a.latency("request/", 1.0);
        assert_eq!(lat.len(), 2);
    }
}
