//! Critical-path extraction and latency exemplars.
//!
//! The critical path of a request is the chain of spans that actually
//! bounds its latency: walking backward from the root's end, at each point
//! the latest-finishing child that ends at or before the cursor is on the
//! path, and gaps not covered by any child are the parent's own work
//! (*self time*). Segment durations partition the root interval exactly,
//! so their sum equals the recorded request latency to the microsecond —
//! an invariant the test suite checks on every trace.

use sctelemetry::TraceId;
use simclock::{SimDuration, SimTime};

use crate::tree::{TraceForest, TraceTree};

/// What a [`PathSegment`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Time inside a child span on the critical path.
    Span,
    /// Time attributed to the enclosing span itself (no child covers it).
    SelfTime,
}

/// One segment of a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Subsystem of the span the segment belongs to.
    pub target: String,
    /// Name of the span the segment belongs to (the parent for
    /// [`SegmentKind::SelfTime`] segments).
    pub name: String,
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
    /// Span time or parent self time.
    pub kind: SegmentKind,
}

impl PathSegment {
    /// Segment duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// The critical path of one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The trace this path was extracted from.
    pub trace: TraceId,
    /// Segments in time order; together they cover the root interval
    /// exactly (no gaps, no overlap).
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Total path duration — equals the root span's duration by
    /// construction.
    pub fn total(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Compact one-line rendering:
    /// `name 1.2ms -> (self) 0.3ms -> name 0.5ms`.
    pub fn render(&self) -> String {
        self.segments
            .iter()
            .map(|s| {
                let label = match s.kind {
                    SegmentKind::Span => s.name.as_str(),
                    SegmentKind::SelfTime => "(self)",
                };
                format!("{label} {}us", s.duration().as_micros())
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Extracts the critical path of `tree`. Returns `None` when the tree has
/// no single root.
pub fn critical_path(tree: &TraceTree) -> Option<CriticalPath> {
    let root_idx = match tree.roots.as_slice() {
        [r] => *r,
        _ => return None,
    };
    let mut segments = Vec::new();
    descend(tree, root_idx, &mut segments);
    Some(CriticalPath {
        trace: tree.trace,
        segments,
    })
}

/// Appends the critical-path segments of span `idx` (covering exactly its
/// `[start, end]` interval) to `out`, in time order.
fn descend(tree: &TraceTree, idx: usize, out: &mut Vec<PathSegment>) {
    let node = &tree.spans[idx];
    let (start, end) = (node.record.start, node.record.end);

    // Backward scan: pick the latest-ending child fitting before the
    // cursor; ties break toward later start, then larger span id, so the
    // choice is deterministic.
    let mut chain: Vec<usize> = Vec::new();
    let mut cursor = end;
    loop {
        let next = node
            .children
            .iter()
            .map(|&c| &tree.spans[c])
            .enumerate()
            .filter(|(_, ch)| {
                // Zero-length children carry no latency and would stall the
                // backward cursor; they never join the path.
                ch.record.end <= cursor
                    && ch.record.start >= start
                    && ch.record.end > ch.record.start
            })
            .max_by(|(_, a), (_, b)| {
                a.record
                    .end
                    .cmp(&b.record.end)
                    .then_with(|| a.record.start.cmp(&b.record.start))
                    .then_with(|| a.ctx().span.0.cmp(&b.ctx().span.0))
            })
            .map(|(i, _)| node.children[i]);
        match next {
            Some(ci) => {
                cursor = tree.spans[ci].record.start;
                chain.push(ci);
            }
            None => break,
        }
    }
    chain.reverse();

    // Forward emission: child segments (recursing) with parent self-time
    // filling every gap.
    let mut at = start;
    for ci in chain {
        let ch = &tree.spans[ci];
        if ch.record.start > at {
            out.push(PathSegment {
                target: node.record.target.clone(),
                name: node.record.name.clone(),
                start: at,
                end: ch.record.start,
                kind: SegmentKind::SelfTime,
            });
        }
        descend(tree, ci, out);
        at = ch.record.end;
    }
    if end > at || (out.is_empty() && end == at) {
        out.push(PathSegment {
            target: node.record.target.clone(),
            name: node.record.name.clone(),
            start: at,
            end,
            kind: if at == start {
                SegmentKind::Span
            } else {
                SegmentKind::SelfTime
            },
        });
    }
}

/// A latency exemplar: an actual trace standing behind a percentile.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Percentile label (`"p50"`, `"p99"`, `"max"`).
    pub label: &'static str,
    /// The exemplar trace.
    pub trace: TraceId,
    /// Its recorded value (seconds for latency streams).
    pub value: f64,
}

/// Picks p50/p99/max exemplars from `(trace, value)` pairs using the
/// nearest-rank method; ties on value break toward the smaller trace id.
/// Empty input yields no exemplars.
pub fn exemplars(mut samples: Vec<(TraceId, f64)>) -> Vec<Exemplar> {
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let rank = |p: f64| {
        let n = samples.len();
        ((p * n as f64).ceil() as usize).clamp(1, n) - 1
    };
    vec![
        Exemplar {
            label: "p50",
            trace: samples[rank(0.50)].0,
            value: samples[rank(0.50)].1,
        },
        Exemplar {
            label: "p99",
            trace: samples[rank(0.99)].0,
            value: samples[rank(0.99)].1,
        },
        Exemplar {
            label: "max",
            trace: samples[samples.len() - 1].0,
            value: samples[samples.len() - 1].1,
        },
    ]
}

/// Exemplar critical paths of a forest's request population: p50/p99/max
/// root durations of spans named under `prefix`, each paired with its
/// extracted critical path.
pub fn exemplar_paths(forest: &TraceForest, prefix: &str) -> Vec<(Exemplar, Option<CriticalPath>)> {
    let samples = forest
        .root_durations(prefix)
        .into_iter()
        .map(|(trace, _, d)| (trace, d))
        .collect();
    exemplars(samples)
        .into_iter()
        .map(|e| {
            let path = forest.get(e.trace).and_then(critical_path);
            (e, path)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctelemetry::{SpanContext, Telemetry};

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    /// root [0,10]; queue [0,2]; backend [2,9] with forward [3,8];
    /// overlapping speculative child [1,5] must lose to backend.
    fn build() -> TraceForest {
        let t = Telemetry::shared();
        let h = t.handle();
        let root = SpanContext::root(TraceId::derive(7, 1, 0));
        let mut g = h.span_guard("srv", "request/get", ms(0), root);
        g.child_span("queue", ms(0), ms(2));
        let backend = g.child_ctx();
        g.child_span("speculative", ms(1), ms(5));
        h.span_in("srv", "backend", ms(2), ms(9), backend);
        h.span_in("srv", "forward", ms(3), ms(8), backend.child(0));
        g.finish(ms(10));
        TraceForest::from_telemetry(&t)
    }

    #[test]
    fn path_partitions_root_interval_exactly() {
        let f = build();
        let p = critical_path(&f.traces[0]).unwrap();
        assert_eq!(p.total(), SimDuration::from_millis(10));
        // Segments are contiguous and inside the root window.
        let mut at = ms(0);
        for s in &p.segments {
            assert_eq!(s.start, at);
            at = s.end;
        }
        assert_eq!(at, ms(10));
    }

    #[test]
    fn path_prefers_latest_ending_children_and_descends() {
        let f = build();
        let p = critical_path(&f.traces[0]).unwrap();
        let names: Vec<&str> = p.segments.iter().map(|s| s.name.as_str()).collect();
        let kinds: Vec<SegmentKind> = p.segments.iter().map(|s| s.kind).collect();
        // queue [0,2] -> backend self [2,3] -> forward [3,8] ->
        // backend self [8,9] -> root self [9,10]; speculative excluded.
        assert_eq!(
            names,
            ["queue", "backend", "forward", "backend", "request/get"]
        );
        assert_eq!(
            kinds,
            [
                SegmentKind::Span,
                SegmentKind::SelfTime,
                SegmentKind::Span,
                SegmentKind::SelfTime,
                SegmentKind::SelfTime
            ]
        );
        assert!(p.render().contains("forward 5000us"));
    }

    #[test]
    fn childless_root_is_single_span_segment() {
        let t = Telemetry::shared();
        let h = t.handle();
        h.span_in(
            "srv",
            "request/put",
            ms(0),
            ms(1),
            SpanContext::root(TraceId::derive(1, 1, 0)),
        );
        let f = TraceForest::from_telemetry(&t);
        let p = critical_path(&f.traces[0]).unwrap();
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].kind, SegmentKind::Span);
        assert_eq!(p.total(), SimDuration::from_millis(1));
    }

    #[test]
    fn zero_length_root_yields_zero_total() {
        let t = Telemetry::shared();
        let h = t.handle();
        h.span_in(
            "srv",
            "request/shed",
            ms(4),
            ms(4),
            SpanContext::root(TraceId::derive(2, 1, 0)),
        );
        let f = TraceForest::from_telemetry(&t);
        let p = critical_path(&f.traces[0]).unwrap();
        assert_eq!(p.total(), SimDuration::ZERO);
    }

    #[test]
    fn exemplars_use_nearest_rank() {
        let samples: Vec<(TraceId, f64)> = (0..100).map(|i| (TraceId(i), (i + 1) as f64)).collect();
        let ex = exemplars(samples);
        assert_eq!(ex[0].label, "p50");
        assert_eq!(ex[0].value, 50.0);
        assert_eq!(ex[1].label, "p99");
        assert_eq!(ex[1].value, 99.0);
        assert_eq!(ex[2].label, "max");
        assert_eq!(ex[2].value, 100.0);
        assert!(exemplars(Vec::new()).is_empty());
    }

    #[test]
    fn exemplar_paths_pair_percentiles_with_paths() {
        let f = build();
        let pairs = exemplar_paths(&f, "request/");
        assert_eq!(pairs.len(), 3);
        for (e, p) in &pairs {
            assert_eq!(e.trace, f.traces[0].trace);
            assert!(p.is_some());
        }
    }
}
