//! Span-tree assembly: flat [`TraceRecord`]s → per-trace trees.
//!
//! Only spans carrying a [`SpanContext`] participate — context-less spans
//! (system annotations like fault-outage windows) are collected separately
//! in [`TraceForest::unattributed`] and never make a trace incomplete.
//! Within a trace, children link to parents by span id; a span whose
//! parent id is absent from the trace is an **orphan**, which the
//! acceptance suite requires never to happen for request traces.

use std::collections::BTreeMap;

use sctelemetry::{SpanContext, SpanId, SpanRecord, Telemetry, TraceId, TraceRecord};
use simclock::SimTime;

/// One span plus the indices of its children (into [`TraceTree::spans`]).
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The recorded span. Its `ctx` is always `Some` inside a tree.
    pub record: SpanRecord,
    /// Child indices, sorted by `(start, name, span id)`.
    pub children: Vec<usize>,
}

impl SpanNode {
    /// The span's causal context.
    pub fn ctx(&self) -> SpanContext {
        self.record.ctx.expect("tree nodes always carry context")
    }
}

/// All spans of one trace, linked into a tree.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id.
    pub trace: TraceId,
    /// Arena of nodes; indices are stable handles.
    pub spans: Vec<SpanNode>,
    /// Indices of spans with no parent (a complete trace has exactly one).
    pub roots: Vec<usize>,
    /// Indices of spans whose recorded parent id is missing from the trace.
    pub orphans: Vec<usize>,
}

impl TraceTree {
    /// The single root span, if the trace is well-formed.
    pub fn root(&self) -> Option<&SpanNode> {
        match self.roots.as_slice() {
            [r] => Some(&self.spans[*r]),
            _ => None,
        }
    }

    /// Whether the trace has exactly one root and no orphans.
    pub fn is_complete(&self) -> bool {
        self.roots.len() == 1 && self.orphans.is_empty()
    }

    /// Root duration in (simulated) seconds; 0 without a single root.
    pub fn duration_s(&self) -> f64 {
        self.root().map(|r| r.record.duration_s()).unwrap_or(0.0)
    }

    /// Root start time (trace start); `SimTime::ZERO` without a root.
    pub fn start(&self) -> SimTime {
        self.root().map(|r| r.record.start).unwrap_or(SimTime::ZERO)
    }
}

/// Every trace assembled from one recorder, plus the context-less spans.
#[derive(Debug, Clone, Default)]
pub struct TraceForest {
    /// Traces in deterministic `(root start, trace id)` order.
    pub traces: Vec<TraceTree>,
    /// Spans recorded without causal context (outside any trace).
    pub unattributed: Vec<SpanRecord>,
}

impl TraceForest {
    /// Assembles trees from a flat record slice (events are ignored here;
    /// the SLO adapters consume them separately).
    pub fn from_records(records: &[TraceRecord]) -> TraceForest {
        let mut by_trace: BTreeMap<TraceId, Vec<SpanRecord>> = BTreeMap::new();
        let mut unattributed = Vec::new();
        for r in records {
            let TraceRecord::Span(s) = r else { continue };
            match s.ctx {
                Some(ctx) => by_trace.entry(ctx.trace).or_default().push(s.clone()),
                None => unattributed.push(s.clone()),
            }
        }
        let mut traces = Vec::with_capacity(by_trace.len());
        for (trace, mut spans) in by_trace {
            // Deterministic arena order regardless of recording order.
            spans.sort_by(|a, b| {
                a.start
                    .cmp(&b.start)
                    .then_with(|| a.name.cmp(&b.name))
                    .then_with(|| a.ctx.unwrap().span.0.cmp(&b.ctx.unwrap().span.0))
            });
            let index_of: BTreeMap<SpanId, usize> = spans
                .iter()
                .enumerate()
                .map(|(i, s)| (s.ctx.unwrap().span, i))
                .collect();
            let mut nodes: Vec<SpanNode> = spans
                .into_iter()
                .map(|record| SpanNode {
                    record,
                    children: Vec::new(),
                })
                .collect();
            let mut roots = Vec::new();
            let mut orphans = Vec::new();
            for i in 0..nodes.len() {
                match nodes[i].ctx().parent {
                    None => roots.push(i),
                    Some(p) => match index_of.get(&p) {
                        Some(&pi) => nodes[pi].children.push(i),
                        None => orphans.push(i),
                    },
                }
            }
            traces.push(TraceTree {
                trace,
                spans: nodes,
                roots,
                orphans,
            });
        }
        traces.sort_by(|a, b| {
            a.start()
                .cmp(&b.start())
                .then_with(|| a.trace.cmp(&b.trace))
        });
        TraceForest {
            traces,
            unattributed,
        }
    }

    /// Assembles trees from a [`Telemetry`] recorder's trace buffer.
    pub fn from_telemetry(telemetry: &Telemetry) -> TraceForest {
        Self::from_records(&telemetry.trace())
    }

    /// The tree of `trace`, if recorded.
    pub fn get(&self, trace: TraceId) -> Option<&TraceTree> {
        self.traces.iter().find(|t| t.trace == trace)
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no traces were assembled.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Root spans whose name starts with `prefix`, as
    /// `(trace id, start, duration seconds)` — the raw material for
    /// exemplars and SLO streams.
    pub fn root_durations(&self, prefix: &str) -> Vec<(TraceId, SimTime, f64)> {
        self.traces
            .iter()
            .filter_map(|t| {
                let root = t.root()?;
                root.record
                    .name
                    .starts_with(prefix)
                    .then(|| (t.trace, root.record.start, root.record.duration_s()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_demo() -> std::sync::Arc<Telemetry> {
        let t = Telemetry::shared();
        let h = t.handle();
        let root = SpanContext::root(TraceId::derive(42, 1, 0));
        let mut g = h.span_guard("srv", "request/get", SimTime::ZERO, root);
        g.child_span("queue", SimTime::ZERO, SimTime::from_millis(2));
        g.child_span("backend", SimTime::from_millis(2), SimTime::from_millis(5));
        g.finish(SimTime::from_millis(5));
        h.span("sys", "outage", SimTime::ZERO, SimTime::from_secs(1));
        t
    }

    #[test]
    fn assembles_complete_tree_and_separates_unattributed() {
        let f = TraceForest::from_telemetry(&record_demo());
        assert_eq!(f.len(), 1);
        assert_eq!(f.unattributed.len(), 1);
        let tree = &f.traces[0];
        assert!(tree.is_complete());
        let root = tree.root().unwrap();
        assert_eq!(root.record.name, "request/get");
        assert_eq!(root.children.len(), 2);
        assert!((tree.duration_s() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn missing_parent_is_an_orphan() {
        let t = Telemetry::shared();
        let h = t.handle();
        let root = SpanContext::root(TraceId::derive(1, 1, 0));
        // Record a grandchild whose parent (the child) is never recorded.
        let child = root.child(0);
        h.span_in("s", "root", SimTime::ZERO, SimTime::from_millis(1), root);
        h.span_in(
            "s",
            "grandchild",
            SimTime::ZERO,
            SimTime::from_millis(1),
            child.child(0),
        );
        let f = TraceForest::from_telemetry(&t);
        assert_eq!(f.traces[0].orphans.len(), 1);
        assert!(!f.traces[0].is_complete());
    }

    #[test]
    fn root_durations_filters_by_prefix() {
        let f = TraceForest::from_telemetry(&record_demo());
        assert_eq!(f.root_durations("request/").len(), 1);
        assert!(f.root_durations("job/").is_empty());
    }
}
