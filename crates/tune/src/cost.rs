//! Seeded analytic cost model — the default candidate scorer.
//!
//! The model prices a schedule in *model nanoseconds*: nominal FLOP and
//! byte-stream costs for the useful work, a fixed dispatch charge per scpar
//! task, and a round-robin assignment of tasks to workers (the fan-out
//! finishes when the busiest worker does). It is a caricature of the real
//! machine, and that is the point: the same inputs produce the same scores
//! on every host, so CI can regenerate and verify the committed table
//! bit-for-bit. Hosts that want real numbers run `tune_gen --measure`
//! instead (median-of-N wall clock) and commit the measured winners.
//!
//! The `seed` feeds a parts-per-billion multiplicative jitter whose only
//! job is to make *exact* score ties astronomically unlikely while leaving
//! every meaningful comparison untouched; the final tie-break (smaller
//! candidate wins) is explicit in the generator regardless.

use crate::key::{KernelId, TuneKey};

/// Dispatch cost of one task submitted to the scpar pool, model ns.
const DISPATCH_NS: f64 = 20_000.0;
/// Loop/closure overhead per task on the inline (serial) path, model ns.
const SERIAL_TASK_NS: f64 = 200.0;
/// One f32 FLOP, model ns (≈2 GFLOP/s scalar).
const FLOP32_NS: f64 = 0.5;
/// One f64 FLOP, model ns.
const FLOP64_NS: f64 = 1.0;
/// One streamed byte, model ns (≈16 GB/s).
const BYTE_NS: f64 = 0.0625;
/// Per-row inference cost proxy, model ns per input element: stands in
/// for the hidden layers the key cannot see.
const PREDICT_ROW_FACTOR_NS: f64 = 128.0;
/// Tensor assembly cost per predict chunk, model ns.
const PREDICT_TASK_NS: f64 = 512.0;
/// Partial-sum allocation cost per k-means task, model ns per k·dim slot.
const KMEANS_ALLOC_NS: f64 = 8.0;
/// Fixed cost of waking one micro-batch flush, model ns.
const FLUSH_BASE_NS: f64 = 100_000.0;
/// Queue-fill wait per additional pending row in a flush, model ns.
const FILL_WAIT_NS: f64 = 300.0;

/// Deterministic analytic scorer for one `(TuneKey, candidate)` pair.
///
/// Lower scores are better. See the module docs for what the model
/// charges; see [`crate::candidates`] for the ladders it ranks.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    seed: u64,
}

impl CostModel {
    /// A model whose tie-breaking jitter is derived from `seed`.
    pub fn new(seed: u64) -> CostModel {
        CostModel { seed }
    }

    /// The seed this model was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Model cost (ns) of running `key`'s kernel with the candidate value.
    ///
    /// Mirrors the real code paths: one inline call when the schedule
    /// collapses to a single task (a panel at least as tall as the matrix
    /// takes the serial branch), round-robin fan-out otherwise.
    pub fn score(&self, key: &TuneKey, candidate: usize) -> f64 {
        let c = candidate.max(1) as u64;
        let dims = key.dims();
        let threads = key.threads();
        let base = match key.kernel() {
            KernelId::MatmulF32 | KernelId::MatmulF64 => {
                let (m, k, n) = (dims[0], dims[1], dims[2]);
                let (flop, esize) = if key.kernel() == KernelId::MatmulF32 {
                    (FLOP32_NS, 4.0)
                } else {
                    (FLOP64_NS, 8.0)
                };
                let per_row = 2.0 * (k * n) as f64 * flop;
                // Every task streams the whole B matrix.
                let per_task = (k * n) as f64 * esize * BYTE_NS;
                fanout_ns(m, c, threads, per_row, per_task)
            }
            KernelId::Predict => {
                let (rows, row_elems) = (dims[0], dims[1]);
                let per_row = row_elems as f64 * PREDICT_ROW_FACTOR_NS;
                fanout_ns(rows, c, threads, per_row, PREDICT_TASK_NS)
            }
            KernelId::Kmeans => {
                let (points, dim, k) = (dims[0], dims[1], dims[2]);
                let cells = points.div_ceil(256).max(1);
                let per_cell = 256.0 * 3.0 * (dim * k) as f64 * FLOP64_NS;
                let per_task = (dim * k) as f64 * KMEANS_ALLOC_NS;
                fanout_ns(cells, c, threads, per_cell, per_task)
            }
            KernelId::MicroBatch => {
                // Amortized per-request cost: flush overhead spread over
                // the batch, the row's own work, and the expected wait for
                // the batch to fill.
                let params = dims[0] as f64;
                let b = c as f64;
                let flush = FLUSH_BASE_NS + params * 0.25;
                flush / b + 2.0 * params * FLOP32_NS + FILL_WAIT_NS * (b - 1.0) / 2.0
            }
        };
        base * (1.0 + self.jitter(key, candidate) * 1e-9)
    }

    /// Seeded jitter in `[0, 1)` for `(key, candidate)`.
    fn jitter(&self, key: &TuneKey, candidate: usize) -> f64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the canonical key
        for b in key.canonical().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let z = splitmix64(self.seed ^ h ^ (candidate as u64).wrapping_mul(0x9e37));
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Model time of fanning `units` of work out in `chunk`-unit tasks over
/// `threads` round-robin workers.
fn fanout_ns(units: u64, chunk: u64, threads: u64, per_unit_ns: f64, per_task_ns: f64) -> f64 {
    let chunk = chunk.max(1);
    let units = units.max(1);
    let tasks = units.div_ceil(chunk);
    if threads <= 1 || tasks <= 1 {
        // Inline path: no pool dispatch. Multi-task serial execution (the
        // k-means chunk loop) still pays a small per-task loop cost.
        let loop_cost = if tasks > 1 {
            SERIAL_TASK_NS * tasks as f64
        } else {
            0.0
        };
        return units as f64 * per_unit_ns + per_task_ns * tasks as f64 + loop_cost;
    }
    let mut worker = vec![0.0f64; threads as usize];
    let mut remaining = units;
    let mut i = 0usize;
    while remaining > 0 {
        let u = remaining.min(chunk);
        worker[i % threads as usize] += DISPATCH_NS + per_task_ns + u as f64 * per_unit_ns;
        remaining -= u;
        i += 1;
    }
    worker.iter().copied().fold(0.0, f64::max)
}

/// splitmix64 step, the repo's stock seeding mixer.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::candidates;

    fn best(model: &CostModel, key: &TuneKey) -> usize {
        candidates(key.kernel())
            .iter()
            .copied()
            .min_by(|&a, &b| {
                model
                    .score(key, a)
                    .total_cmp(&model.score(key, b))
                    .then(a.cmp(&b))
            })
            .unwrap()
    }

    #[test]
    fn scores_are_deterministic_per_seed() {
        let key = TuneKey::matmul_f32(512, 512, 512, 4, "any");
        let a = CostModel::new(42);
        let b = CostModel::new(42);
        assert_eq!(a.score(&key, 64).to_bits(), b.score(&key, 64).to_bits());
        // A different seed moves only the ppb jitter, never the ranking.
        let c = CostModel::new(7);
        assert_eq!(best(&a, &key), best(&c, &key));
    }

    #[test]
    fn overhead_dominated_shapes_prefer_tall_panels() {
        // 8192×16 times 16×16 at two threads: per-task work is tiny, so
        // the dispatch charge dominates and the tallest panel must win.
        let model = CostModel::new(42);
        let key = TuneKey::matmul_f64(8192, 16, 16, 2, "any");
        assert_eq!(best(&model, &key), 256);
    }

    #[test]
    fn balanced_square_shapes_prefer_even_fanout() {
        // 512³ on 4 threads: 4 tasks of 128 rows fill every worker with
        // one dispatch each — finer panels only add dispatch, and 256-row
        // panels idle half the pool.
        let model = CostModel::new(42);
        let key = TuneKey::matmul_f32(512, 512, 512, 4, "any");
        assert_eq!(best(&model, &key), 128);
    }

    #[test]
    fn serial_kmeans_prefers_coarse_tasks() {
        let model = CostModel::new(42);
        let key = TuneKey::kmeans(10_000, 8, 16, 1);
        assert_eq!(best(&model, &key), 16);
    }

    #[test]
    fn micro_batch_optimum_is_interior() {
        let model = CostModel::new(42);
        let key = TuneKey::micro_batch(41_608);
        let b = best(&model, &key);
        let ladder = candidates(KernelId::MicroBatch);
        assert_ne!(b, ladder[0], "flush amortization should beat batch=8");
        assert_ne!(b, *ladder.last().unwrap(), "fill wait should cap the batch");
    }
}
