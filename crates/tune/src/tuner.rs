//! The run-time handle kernels consult, plus the `SCTUNE` environment
//! plumbing.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::key::TuneKey;
use crate::table::{Lookup, TuneError, TuningTable};

/// Env var switching the tuner on: unset, empty, `0`, or `off` disable it;
/// `1`, `on`, `table`, or `measure` enable table-driven scheduling.
/// (`measure` additionally tells `tune_gen` to score by wall clock; at
/// run time it behaves like `table`.)
pub const MODE_ENV: &str = "SCTUNE";

/// Env var overriding the table path (default [`DEFAULT_TABLE_PATH`]).
pub const TABLE_ENV: &str = "SCTUNE_TABLE";

/// Default table location, relative to the working directory.
pub const DEFAULT_TABLE_PATH: &str = "tuning_table.json";

/// How a decision's value was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionSource {
    /// Exact table hit.
    Exact,
    /// Donated by the nearest same-kernel entry (its canonical key).
    Nearest(String),
    /// No same-kernel entry; the built-in constant was used.
    Default,
}

impl DecisionSource {
    /// Short label for reports: `exact`, `nearest`, or `default`.
    pub fn label(&self) -> &'static str {
        match self {
            DecisionSource::Exact => "exact",
            DecisionSource::Nearest(_) => "nearest",
            DecisionSource::Default => "default",
        }
    }
}

/// One recorded scheduling decision: which config actually ran for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Canonical tune key the kernel asked about.
    pub key: String,
    /// The kernel's parameter name.
    pub param: &'static str,
    /// The value the kernel ran with.
    pub value: usize,
    /// Where the value came from.
    pub source: DecisionSource,
}

#[derive(Debug)]
struct TunerInner {
    table: TuningTable,
    /// canonical key → decision, deduplicated; BTreeMap so
    /// [`Tuner::decisions`] is sorted and thread-schedule-independent.
    decisions: Mutex<std::collections::BTreeMap<String, Decision>>,
}

/// Cheap cloneable handle serving tuned schedule parameters.
///
/// A disabled tuner (the default everywhere) answers every query with the
/// caller's built-in constant and records nothing — the pre-tuning
/// behavior, bit for bit. An enabled tuner resolves exact → nearest →
/// constant against its [`TuningTable`] and logs each distinct decision
/// for the perf observatory ([`Tuner::decisions`]).
///
/// # Examples
///
/// ```
/// use sctune::{TuneKey, Tuner, TuningTable};
///
/// let mut table = TuningTable::empty();
/// table.insert(TuneKey::predict(2048, 64, 4), 128);
/// let tuner = Tuner::from_table(table);
/// assert_eq!(tuner.predict_chunk_rows(2048, 64, 4, 32), 128);
///
/// let off = Tuner::disabled();
/// assert_eq!(off.predict_chunk_rows(2048, 64, 4, 32), 32);
/// assert!(off.decisions().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tuner {
    inner: Option<Arc<TunerInner>>,
}

impl Tuner {
    /// The no-op tuner: every lookup returns the caller's default.
    pub fn disabled() -> Tuner {
        Tuner { inner: None }
    }

    /// A tuner serving (and recording decisions against) `table`.
    pub fn from_table(table: TuningTable) -> Tuner {
        Tuner {
            inner: Some(Arc::new(TunerInner {
                table,
                decisions: Mutex::new(std::collections::BTreeMap::new()),
            })),
        }
    }

    /// Environment-driven construction; see [`MODE_ENV`] / [`TABLE_ENV`].
    ///
    /// A missing table file yields an enabled tuner over an *empty* table
    /// (every kernel on its constant) — committing a table is optional.
    /// Any other load error is reported on stderr and disables the tuner
    /// rather than panicking; use [`TuningTable::load`] directly for the
    /// typed error.
    pub fn from_env() -> Tuner {
        let mode = std::env::var(MODE_ENV).ok();
        if !mode_enabled(mode.as_deref()) {
            return Tuner::disabled();
        }
        let path = std::env::var(TABLE_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from(DEFAULT_TABLE_PATH));
        Tuner::from_table_path(&path)
    }

    /// An enabled tuner over the table at `path`, with the same missing-file
    /// and load-error policy as [`Tuner::from_env`].
    pub fn from_table_path(path: &Path) -> Tuner {
        match TuningTable::load(path) {
            Ok(table) => Tuner::from_table(table),
            Err(TuneError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                Tuner::from_table(TuningTable::empty())
            }
            Err(e) => {
                eprintln!("sctune: ignoring {}: {e}", path.display());
                Tuner::disabled()
            }
        }
    }

    /// Whether the tuner consults a table at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Every distinct decision made so far, sorted by canonical key.
    pub fn decisions(&self) -> Vec<Decision> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .decisions
                .lock()
                .map(|d| d.values().cloned().collect())
                .unwrap_or_default(),
        }
    }

    /// Core lookup: exact → nearest → `default`, with the decision
    /// recorded once per canonical key. Values are clamped to ≥ 1.
    fn pick(&self, key: &TuneKey, default: usize) -> usize {
        let Some(inner) = &self.inner else {
            return default;
        };
        let (value, source) = match inner.table.lookup(key) {
            Lookup::Exact(v) => (v, DecisionSource::Exact),
            Lookup::Nearest { value, donor } => (value, DecisionSource::Nearest(donor)),
            Lookup::Miss => (default, DecisionSource::Default),
        };
        let value = value.max(1);
        if let Ok(mut decisions) = inner.decisions.lock() {
            let canon = key.canonical();
            decisions.entry(canon.clone()).or_insert(Decision {
                key: canon,
                param: key.kernel().param(),
                value,
                source,
            });
        }
        value
    }

    /// Tuned `panel_rows` for an f32 `[m,k] × [k,n]` matmul.
    pub fn matmul_f32_panel_rows(
        &self,
        m: usize,
        k: usize,
        n: usize,
        threads: usize,
        isa: &str,
        default: usize,
    ) -> usize {
        self.pick(&TuneKey::matmul_f32(m, k, n, threads, isa), default)
    }

    /// Tuned `panel_rows` for an f64 `[m,k] × [k,n]` matmul.
    pub fn matmul_f64_panel_rows(
        &self,
        m: usize,
        k: usize,
        n: usize,
        threads: usize,
        isa: &str,
        default: usize,
    ) -> usize {
        self.pick(&TuneKey::matmul_f64(m, k, n, threads, isa), default)
    }

    /// Tuned `chunk_rows` for batched inference.
    pub fn predict_chunk_rows(
        &self,
        rows: usize,
        row_elems: usize,
        threads: usize,
        default: usize,
    ) -> usize {
        self.pick(&TuneKey::predict(rows, row_elems, threads), default)
    }

    /// Tuned `cells_per_task` for k-means (cells are fixed 256-point
    /// accumulation units; the fold order never depends on this value).
    pub fn kmeans_cells_per_task(
        &self,
        points: usize,
        dim: usize,
        k: usize,
        threads: usize,
        default: usize,
    ) -> usize {
        self.pick(&TuneKey::kmeans(points, dim, k, threads), default)
    }

    /// Tuned `max_batch` for a micro-batcher serving a `params`-parameter
    /// model. Thread-free by design: the same batch size must be chosen
    /// at every `SCPAR_THREADS` so flush composition (and telemetry) stay
    /// byte-identical across thread counts.
    pub fn micro_batch_max_batch(&self, params: usize, default: usize) -> usize {
        self.pick(&TuneKey::micro_batch(params), default)
    }
}

/// Whether an `SCTUNE` value enables the tuner. Pure, for testability:
/// `None`, `""`, `"0"`, and `"off"` (any case) disable; `"1"`, `"on"`,
/// `"table"`, and `"measure"` enable; anything else disables.
pub fn mode_enabled(value: Option<&str>) -> bool {
    match value.map(|v| v.trim().to_ascii_lowercase()) {
        None => false,
        Some(v) => matches!(v.as_str(), "1" | "on" | "table" | "measure"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TuningTable {
        let mut t = TuningTable::empty();
        t.insert(TuneKey::matmul_f32(4096, 16, 16, 2, "any"), 256);
        t.insert(TuneKey::kmeans(10_000, 8, 16, 4), 8);
        t
    }

    #[test]
    fn disabled_tuner_returns_defaults_and_records_nothing() {
        let t = Tuner::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.matmul_f32_panel_rows(4096, 16, 16, 2, "avx2", 32), 32);
        assert!(t.decisions().is_empty());
    }

    #[test]
    fn enabled_tuner_resolves_and_records_each_source() {
        let t = Tuner::from_table(table());
        // Exact (isa "any" is an exact string match on the canonical key).
        assert_eq!(t.matmul_f32_panel_rows(4096, 16, 16, 2, "any", 32), 256);
        // Nearest: different shape, same kernel.
        assert_eq!(t.matmul_f32_panel_rows(2048, 16, 16, 2, "any", 32), 256);
        // Default: kernel with no entries.
        assert_eq!(t.predict_chunk_rows(100, 8, 2, 32), 32);
        let ds = t.decisions();
        assert_eq!(ds.len(), 3);
        let by_key: std::collections::BTreeMap<_, _> =
            ds.iter().map(|d| (d.key.as_str(), d)).collect();
        assert_eq!(
            by_key["matmul_f32/m4096/k16/n16/t2/any"].source,
            DecisionSource::Exact
        );
        assert!(matches!(
            by_key["matmul_f32/m2048/k16/n16/t2/any"].source,
            DecisionSource::Nearest(_)
        ));
        assert_eq!(by_key["predict/r100/e8/t2"].source, DecisionSource::Default);
    }

    #[test]
    fn decisions_deduplicate_per_key() {
        let t = Tuner::from_table(table());
        for _ in 0..5 {
            t.kmeans_cells_per_task(10_000, 8, 16, 4, 1);
        }
        assert_eq!(t.decisions().len(), 1);
    }

    #[test]
    fn mode_parsing_matches_docs() {
        for on in ["1", "on", "table", "measure", "ON", " table "] {
            assert!(mode_enabled(Some(on)), "{on:?} should enable");
        }
        for off in [None, Some(""), Some("0"), Some("off"), Some("bogus")] {
            assert!(!mode_enabled(off), "{off:?} should disable");
        }
    }

    #[test]
    fn from_table_path_tolerates_missing_file() {
        let t = Tuner::from_table_path(Path::new("/nonexistent/tuning_table.json"));
        assert!(t.is_enabled(), "missing file means empty table, not off");
        assert_eq!(t.predict_chunk_rows(64, 8, 4, 32), 32);
    }
}
