//! The committed tuning table: load, validate, save, and look up.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use serde_json::{json, Map, Value};

use crate::key::TuneKey;

/// Schema version stamped into `tuning_table.json`.
pub const TABLE_SCHEMA_VERSION: u64 = 1;

/// Largest parameter value a table entry may carry. Generous — every
/// ladder tops out far below it — but it keeps a corrupted entry from
/// requesting a multi-gigabyte chunk.
pub const MAX_PARAM_VALUE: u64 = 1 << 20;

/// Typed loader/validation errors. The loader never panics: a malformed
/// or unknown-kernel entry is reported with enough context to fix the
/// table by hand.
#[derive(Debug)]
pub enum TuneError {
    /// Reading the file failed (missing file included; callers that want
    /// to tolerate absence check `io.kind() == NotFound`).
    Io(std::io::Error),
    /// The file is not valid JSON.
    Parse(String),
    /// The document shape is wrong (missing or non-object `entries`, unknown
    /// top-level field, wrong `schema_version` type, …).
    Malformed(String),
    /// `schema_version` differs from [`TABLE_SCHEMA_VERSION`].
    SchemaVersion {
        /// The version the file declared.
        found: u64,
    },
    /// An entry key names a kernel this build does not know.
    UnknownKernel {
        /// The offending key string.
        key: String,
    },
    /// An entry key does not parse as a canonical [`TuneKey`].
    BadKey {
        /// The offending key string.
        key: String,
    },
    /// An entry carries a parameter name other than its kernel's.
    UnknownParam {
        /// The entry's key string.
        key: String,
        /// The unexpected parameter name.
        param: String,
    },
    /// A parameter value is not an integer in `1..=MAX_PARAM_VALUE`.
    BadValue {
        /// The entry's key string.
        key: String,
        /// The rejected value, rendered as JSON.
        value: String,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Io(e) => write!(f, "tuning table I/O error: {e}"),
            TuneError::Parse(msg) => write!(f, "tuning table is not valid JSON: {msg}"),
            TuneError::Malformed(msg) => write!(f, "tuning table malformed: {msg}"),
            TuneError::SchemaVersion { found } => write!(
                f,
                "tuning table schema_version {found} (this build expects {TABLE_SCHEMA_VERSION})"
            ),
            TuneError::UnknownKernel { key } => {
                write!(f, "tuning table entry {key:?} names an unknown kernel")
            }
            TuneError::BadKey { key } => {
                write!(f, "tuning table entry {key:?} is not a canonical tune key")
            }
            TuneError::UnknownParam { key, param } => write!(
                f,
                "tuning table entry {key:?} has unknown parameter {param:?}"
            ),
            TuneError::BadValue { key, value } => write!(
                f,
                "tuning table entry {key:?} has bad value {value} (want an integer in 1..={MAX_PARAM_VALUE})"
            ),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<std::io::Error> for TuneError {
    fn from(e: std::io::Error) -> Self {
        TuneError::Io(e)
    }
}

/// Result of a table lookup, before falling back to the built-in constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The exact canonical key is in the table.
    Exact(usize),
    /// No exact entry; the closest same-kernel entry donated its value.
    Nearest {
        /// The donated parameter value.
        value: usize,
        /// Canonical key of the donating entry.
        donor: String,
    },
    /// The table has no entry for this kernel at all.
    Miss,
}

/// A validated set of `(TuneKey, value)` winners plus provenance metadata.
///
/// The JSON form is deliberately boring — sorted keys, two-space indent,
/// one value per entry — so diffs read like a changelog of scheduling
/// decisions:
///
/// ```json
/// {
///   "entries": {
///     "matmul_f64/m8192/k16/n16/t2/any": { "panel_rows": 256 }
///   },
///   "generated_by": "tune_gen",
///   "mode": "cost-model",
///   "schema_version": 1,
///   "seed": 42
/// }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuningTable {
    /// canonical key string → (parsed key, winning value).
    entries: BTreeMap<String, (TuneKey, usize)>,
    /// Tool that wrote the table (`tune_gen`), if recorded.
    pub generated_by: Option<String>,
    /// `cost-model` or `measure`, if recorded.
    pub mode: Option<String>,
    /// Cost-model seed, if recorded.
    pub seed: Option<u64>,
}

impl TuningTable {
    /// A table with no entries: every lookup misses, every kernel runs on
    /// its built-in constant.
    pub fn empty() -> TuningTable {
        TuningTable::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) a winner.
    pub fn insert(&mut self, key: TuneKey, value: usize) {
        self.entries.insert(key.canonical(), (key, value));
    }

    /// Iterates `(canonical key, value)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.entries.iter().map(|(k, (_, v))| (k.as_str(), *v))
    }

    /// Exact → nearest lookup. Nearest considers same-kernel entries only,
    /// ranked by [`TuneKey::distance`] with ties broken by canonical key
    /// order — fully deterministic for a given table.
    pub fn lookup(&self, key: &TuneKey) -> Lookup {
        if let Some((_, v)) = self.entries.get(&key.canonical()) {
            return Lookup::Exact(*v);
        }
        let mut best: Option<(f64, &str, usize)> = None;
        for (canon, (entry_key, value)) in &self.entries {
            if entry_key.kernel() != key.kernel() {
                continue;
            }
            let d = key.distance(entry_key);
            let better = match &best {
                None => true,
                // Strict `<` on equal distance keeps the lexicographically
                // smallest canonical key (BTreeMap iterates in order).
                Some((bd, _, _)) => d < *bd,
            };
            if better {
                best = Some((d, canon.as_str(), *value));
            }
        }
        match best {
            Some((_, donor, value)) => Lookup::Nearest {
                value,
                donor: donor.to_string(),
            },
            None => Lookup::Miss,
        }
    }

    /// Parses and validates a table from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`TuneError`] on syntax errors, wrong document shape,
    /// wrong schema version, unknown kernels, unknown parameter names, or
    /// out-of-range values. Never panics.
    pub fn from_json(text: &str) -> Result<TuningTable, TuneError> {
        let doc: Value = serde_json::from_str(text).map_err(|e| TuneError::Parse(e.to_string()))?;
        let doc = doc
            .as_object()
            .ok_or_else(|| TuneError::Malformed("top level is not an object".into()))?;
        for field in doc.keys() {
            if !matches!(
                field.as_str(),
                "entries" | "generated_by" | "mode" | "schema_version" | "seed"
            ) {
                return Err(TuneError::Malformed(format!(
                    "unknown top-level field {field:?}"
                )));
            }
        }
        match doc.get("schema_version") {
            None => return Err(TuneError::Malformed("missing schema_version".into())),
            Some(v) => match v.as_u64() {
                Some(TABLE_SCHEMA_VERSION) => {}
                Some(found) => return Err(TuneError::SchemaVersion { found }),
                None => {
                    return Err(TuneError::Malformed(
                        "schema_version is not an integer".into(),
                    ))
                }
            },
        }
        let mut table = TuningTable {
            generated_by: optional_string(doc, "generated_by")?,
            mode: optional_string(doc, "mode")?,
            seed: match doc.get("seed") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| TuneError::Malformed("seed is not an integer".into()))?,
                ),
            },
            ..TuningTable::default()
        };
        let entries = doc
            .get("entries")
            .ok_or_else(|| TuneError::Malformed("missing entries object".into()))?
            .as_object()
            .ok_or_else(|| TuneError::Malformed("entries is not an object".into()))?;
        for (key_str, entry) in entries.iter() {
            let key = parse_entry_key(key_str)?;
            let obj = entry.as_object().ok_or_else(|| {
                TuneError::Malformed(format!("entry {key_str:?} is not an object"))
            })?;
            let param = key.kernel().param();
            if obj.len() != 1 {
                return Err(TuneError::Malformed(format!(
                    "entry {key_str:?} must have exactly the {param:?} parameter"
                )));
            }
            let (name, raw) = obj.iter().next().expect("len checked");
            if name != param {
                return Err(TuneError::UnknownParam {
                    key: key_str.clone(),
                    param: name.clone(),
                });
            }
            let value = raw
                .as_u64()
                .filter(|v| (1..=MAX_PARAM_VALUE).contains(v))
                .ok_or_else(|| TuneError::BadValue {
                    key: key_str.clone(),
                    value: serde_json::to_string(raw).unwrap_or_default(),
                })?;
            table.entries.insert(key_str.clone(), (key, value as usize));
        }
        Ok(table)
    }

    /// Loads and validates a table file.
    ///
    /// # Errors
    ///
    /// [`TuneError::Io`] when the file cannot be read (including when it
    /// does not exist — [`crate::Tuner::from_env`] is the layer that
    /// tolerates absence), otherwise as [`TuningTable::from_json`].
    pub fn load(path: &Path) -> Result<TuningTable, TuneError> {
        let text = std::fs::read_to_string(path)?;
        TuningTable::from_json(&text)
    }

    /// The canonical JSON text: sorted keys, two-space indent, trailing
    /// newline. Loading a file and re-serializing it with this function
    /// must reproduce the file byte-for-byte — CI checks exactly that.
    pub fn to_json_string(&self) -> String {
        let mut entries = Map::new();
        for (canon, (key, value)) in &self.entries {
            let mut obj = Map::new();
            obj.insert(key.kernel().param().to_string(), json!(*value as u64));
            entries.insert(canon.clone(), Value::Object(obj));
        }
        let mut doc = Map::new();
        doc.insert("entries".into(), Value::Object(entries));
        if let Some(g) = &self.generated_by {
            doc.insert("generated_by".into(), json!(g));
        }
        if let Some(m) = &self.mode {
            doc.insert("mode".into(), json!(m));
        }
        doc.insert("schema_version".into(), json!(TABLE_SCHEMA_VERSION));
        if let Some(s) = self.seed {
            doc.insert("seed".into(), json!(s));
        }
        serde_json::to_string_pretty(&Value::Object(doc)).unwrap_or_default() + "\n"
    }

    /// Writes [`TuningTable::to_json_string`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

fn optional_string(doc: &Map<String, Value>, field: &str) -> Result<Option<String>, TuneError> {
    match doc.get(field) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| TuneError::Malformed(format!("{field} is not a string"))),
    }
}

/// Parses an entry key, distinguishing "unknown kernel" from "malformed".
fn parse_entry_key(key_str: &str) -> Result<TuneKey, TuneError> {
    match TuneKey::parse(key_str) {
        Some(key) => Ok(key),
        None => {
            let kernel = key_str.split('/').next().unwrap_or("");
            if crate::key::KernelId::parse(kernel).is_none() {
                Err(TuneError::UnknownKernel {
                    key: key_str.to_string(),
                })
            } else {
                Err(TuneError::BadKey {
                    key: key_str.to_string(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> TuningTable {
        let mut t = TuningTable {
            generated_by: Some("tune_gen".into()),
            mode: Some("cost-model".into()),
            seed: Some(42),
            ..TuningTable::default()
        };
        t.insert(TuneKey::matmul_f64(8192, 16, 16, 2, "any"), 256);
        t.insert(TuneKey::matmul_f64(512, 512, 512, 4, "any"), 128);
        t.insert(TuneKey::predict(2048, 64, 8), 64);
        t
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let t = small_table();
        let text = t.to_json_string();
        let back = TuningTable::from_json(&text).expect("own output parses");
        assert_eq!(back, t);
        assert_eq!(back.to_json_string(), text, "round trip is byte-identical");
    }

    #[test]
    fn exact_lookup_hits() {
        let t = small_table();
        assert_eq!(
            t.lookup(&TuneKey::matmul_f64(8192, 16, 16, 2, "any")),
            Lookup::Exact(256)
        );
    }

    #[test]
    fn nearest_lookup_picks_closest_same_kernel_entry() {
        let t = small_table();
        // Close to the tall-skinny entry, far from the square one.
        match t.lookup(&TuneKey::matmul_f64(4096, 16, 16, 2, "avx2")) {
            Lookup::Nearest { value, donor } => {
                assert_eq!(value, 256);
                assert_eq!(donor, "matmul_f64/m8192/k16/n16/t2/any");
            }
            other => panic!("expected nearest, got {other:?}"),
        }
        // Square shapes land on the square entry even across thread counts.
        match t.lookup(&TuneKey::matmul_f64(512, 512, 512, 8, "any")) {
            Lookup::Nearest { value, .. } => assert_eq!(value, 128),
            other => panic!("expected nearest, got {other:?}"),
        }
    }

    #[test]
    fn lookup_misses_kernels_without_entries() {
        let t = small_table();
        assert_eq!(t.lookup(&TuneKey::micro_batch(100)), Lookup::Miss);
        assert_eq!(
            t.lookup(&TuneKey::matmul_f32(512, 512, 512, 4, "any")),
            Lookup::Miss,
            "f32 and f64 matmuls are distinct kernels"
        );
    }

    #[test]
    fn nearest_tie_breaks_on_canonical_order() {
        let mut t = TuningTable::default();
        // Two entries equidistant from the probe (threads 1 and 4 around
        // a probe at 2): the lexicographically smaller key must win.
        t.insert(TuneKey::predict(100, 8, 1), 16);
        t.insert(TuneKey::predict(100, 8, 4), 128);
        match t.lookup(&TuneKey::predict(100, 8, 2)) {
            Lookup::Nearest { value, donor } => {
                assert_eq!(donor, "predict/r100/e8/t1");
                assert_eq!(value, 16);
            }
            other => panic!("expected nearest, got {other:?}"),
        }
    }

    #[test]
    fn loader_rejects_malformed_documents_with_typed_errors() {
        type ErrCheck = fn(&TuneError) -> bool;
        let cases: &[(&str, ErrCheck)] = &[
            ("{", |e| matches!(e, TuneError::Parse(_))),
            ("[1,2]", |e| matches!(e, TuneError::Malformed(_))),
            (r#"{"entries": {}}"#, |e| {
                matches!(e, TuneError::Malformed(_))
            }),
            (r#"{"entries": {}, "schema_version": 99}"#, |e| {
                matches!(e, TuneError::SchemaVersion { found: 99 })
            }),
            (r#"{"entries": 3, "schema_version": 1}"#, |e| {
                matches!(e, TuneError::Malformed(_))
            }),
            (r#"{"entries": {}, "schema_version": 1, "bogus": 1}"#, |e| {
                matches!(e, TuneError::Malformed(_))
            }),
            (
                r#"{"entries": {"conv2d/m1/k1/n1/t1/any": {"panel_rows": 8}}, "schema_version": 1}"#,
                |e| matches!(e, TuneError::UnknownKernel { .. }),
            ),
            (
                r#"{"entries": {"matmul_f32/m1/k1": {"panel_rows": 8}}, "schema_version": 1}"#,
                |e| matches!(e, TuneError::BadKey { .. }),
            ),
            (
                r#"{"entries": {"predict/r8/e8/t1": {"panel_rows": 8}}, "schema_version": 1}"#,
                |e| matches!(e, TuneError::UnknownParam { .. }),
            ),
            (
                r#"{"entries": {"predict/r8/e8/t1": {"chunk_rows": 0}}, "schema_version": 1}"#,
                |e| matches!(e, TuneError::BadValue { .. }),
            ),
            (
                r#"{"entries": {"predict/r8/e8/t1": {"chunk_rows": 9999999999}}, "schema_version": 1}"#,
                |e| matches!(e, TuneError::BadValue { .. }),
            ),
            (
                r#"{"entries": {"predict/r8/e8/t1": 32}, "schema_version": 1}"#,
                |e| matches!(e, TuneError::Malformed(_)),
            ),
        ];
        for (text, check) in cases {
            match TuningTable::from_json(text) {
                Ok(_) => panic!("accepted {text}"),
                Err(e) => assert!(check(&e), "wrong error for {text}: {e}"),
            }
        }
    }

    #[test]
    fn load_surfaces_missing_file_as_io_not_found() {
        let err = TuningTable::load(Path::new("/nonexistent/tuning_table.json"))
            .expect_err("missing file");
        match err {
            TuneError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
