//! Wall-clock measurement helpers for `tune_gen --measure`.
//!
//! Measurement is inherently host-specific and non-reproducible, so it
//! never happens at kernel run time — only in the generator, whose output
//! (the table) is then committed and reproducible. The estimator of
//! choice is the median of N runs: robust to the occasional scheduler
//! hiccup without the bias of taking the minimum.

/// Default sample count for [`median_of`]-based scoring.
pub const DEFAULT_SAMPLES: usize = 5;

/// Runs `f` once as a warm-up, then `samples` timed times, and returns the
/// median wall-clock seconds. `samples` is clamped to ≥ 1.
///
/// # Examples
///
/// ```
/// let s = sctune::measure::median_of(3, || std::hint::black_box(2u64 + 2));
/// assert!(s >= 0.0);
/// ```
pub fn median_of<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let samples = samples.max(1);
    std::hint::black_box(f()); // warm-up: pools spawn, caches fill
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive_and_positive() {
        let mut calls = 0u32;
        let m = median_of(5, || {
            calls += 1;
            std::thread::yield_now();
        });
        assert_eq!(calls, 6, "warm-up plus five samples");
        assert!(m >= 0.0);
    }

    #[test]
    fn zero_samples_clamps_to_one() {
        let m = median_of(0, || ());
        assert!(m >= 0.0);
    }
}
