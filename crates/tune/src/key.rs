//! Tune keys: one canonical name per (kernel, problem shape) pair.

use std::fmt;

/// The tunable kernels and their schedule parameter.
///
/// | kernel | parameter | what it moves |
/// |---|---|---|
/// | `matmul_f32` | `panel_rows` | rows per scpar task in `Tensor::matmul_ctx` |
/// | `matmul_f64` | `panel_rows` | rows per scpar task in `Mat::matmul_ctx` |
/// | `predict` | `chunk_rows` | rows per scpar task in `Sequential::predict_ctx` |
/// | `kmeans` | `cells_per_task` | 256-point accumulation cells per scpar task |
/// | `micro_batch` | `max_batch` | distinct rows per `MicroBatcher` flush |
///
/// Every parameter is schedule-only: it regroups independent work without
/// changing any per-element operation order, so any value is bit-safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelId {
    /// f32 row-panel matmul (`scneural::Tensor`).
    MatmulF32,
    /// f64 row-panel matmul (`scneural::linalg::Mat`).
    MatmulF64,
    /// Batched inference chunking (`Sequential::predict_ctx`).
    Predict,
    /// k-means accumulation-cell grouping (`sccompute::kmeans_ctx`).
    Kmeans,
    /// Micro-batcher flush size (`scserve::MicroBatcher`).
    MicroBatch,
}

impl KernelId {
    /// All kernels, in canonical-name order.
    pub const ALL: [KernelId; 5] = [
        KernelId::Kmeans,
        KernelId::MatmulF32,
        KernelId::MatmulF64,
        KernelId::MicroBatch,
        KernelId::Predict,
    ];

    /// Canonical kernel name (the first `/`-segment of a key).
    pub fn name(self) -> &'static str {
        match self {
            KernelId::MatmulF32 => "matmul_f32",
            KernelId::MatmulF64 => "matmul_f64",
            KernelId::Predict => "predict",
            KernelId::Kmeans => "kmeans",
            KernelId::MicroBatch => "micro_batch",
        }
    }

    /// Parses a canonical kernel name.
    pub fn parse(name: &str) -> Option<KernelId> {
        KernelId::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Name of the kernel's single tunable parameter.
    pub fn param(self) -> &'static str {
        match self {
            KernelId::MatmulF32 | KernelId::MatmulF64 => "panel_rows",
            KernelId::Predict => "chunk_rows",
            KernelId::Kmeans => "cells_per_task",
            KernelId::MicroBatch => "max_batch",
        }
    }

    /// One-letter prefixes of the key's dimension segments, in order.
    fn dim_tags(self) -> &'static [char] {
        match self {
            KernelId::MatmulF32 | KernelId::MatmulF64 => &['m', 'k', 'n'],
            KernelId::Predict => &['r', 'e'], // rows, elements per row
            KernelId::Kmeans => &['p', 'd', 'k'], // points, dim, clusters
            KernelId::MicroBatch => &['w'],   // model weight (parameter) count
        }
    }

    /// Whether the key carries a thread-count segment. The micro-batcher
    /// key does not: its batch size shapes flush composition (visible in
    /// telemetry), so the choice must be identical at every thread count.
    fn keyed_on_threads(self) -> bool {
        !matches!(self, KernelId::MicroBatch)
    }

    /// Whether the key carries an ISA segment. Only the matmuls dispatch
    /// on the context ISA; the other kernels chunk rows/cells identically
    /// on every backend.
    fn keyed_on_isa(self) -> bool {
        matches!(self, KernelId::MatmulF32 | KernelId::MatmulF64)
    }
}

/// Candidate ladder for a kernel's parameter — the bounded space the
/// generator scores and the only values a sane table contains. (The
/// loader accepts any positive value; bit-safety never depends on the
/// ladder, only quality does.)
pub fn candidates(kernel: KernelId) -> &'static [usize] {
    match kernel {
        KernelId::MatmulF32 | KernelId::MatmulF64 => &[8, 16, 32, 64, 128, 256],
        KernelId::Predict => &[8, 16, 32, 64, 128, 256],
        KernelId::Kmeans => &[1, 2, 4, 8, 16],
        KernelId::MicroBatch => &[8, 16, 32, 64, 128],
    }
}

/// One problem shape for one kernel: the unit the table is keyed on.
///
/// The canonical string form is what `tuning_table.json` stores, e.g.
/// `matmul_f32/m512/k512/n512/t4/avx2` or `kmeans/p10000/d8/k16/t4`.
/// An ISA segment of `any` matches every backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneKey {
    kernel: KernelId,
    dims: Vec<u64>,
    threads: u64,
    isa: String,
}

impl TuneKey {
    /// Key for an f32 `[m,k] × [k,n]` matmul at a thread count and ISA.
    pub fn matmul_f32(m: usize, k: usize, n: usize, threads: usize, isa: &str) -> TuneKey {
        TuneKey {
            kernel: KernelId::MatmulF32,
            dims: vec![m as u64, k as u64, n as u64],
            threads: threads.max(1) as u64,
            isa: isa.to_string(),
        }
    }

    /// Key for an f64 `[m,k] × [k,n]` matmul at a thread count and ISA.
    pub fn matmul_f64(m: usize, k: usize, n: usize, threads: usize, isa: &str) -> TuneKey {
        TuneKey {
            kernel: KernelId::MatmulF64,
            dims: vec![m as u64, k as u64, n as u64],
            threads: threads.max(1) as u64,
            isa: isa.to_string(),
        }
    }

    /// Key for batched inference over `rows` rows of `row_elems` inputs.
    pub fn predict(rows: usize, row_elems: usize, threads: usize) -> TuneKey {
        TuneKey {
            kernel: KernelId::Predict,
            dims: vec![rows as u64, row_elems as u64],
            threads: threads.max(1) as u64,
            isa: "any".to_string(),
        }
    }

    /// Key for k-means over `points` points of dimension `dim` with `k`
    /// clusters.
    pub fn kmeans(points: usize, dim: usize, k: usize, threads: usize) -> TuneKey {
        TuneKey {
            kernel: KernelId::Kmeans,
            dims: vec![points as u64, dim as u64, k as u64],
            threads: threads.max(1) as u64,
            isa: "any".to_string(),
        }
    }

    /// Key for the micro-batcher serving a model of `params` trainable
    /// scalars. Deliberately thread-free: batch size shapes telemetry, so
    /// it must not vary with `SCPAR_THREADS`.
    pub fn micro_batch(params: usize) -> TuneKey {
        TuneKey {
            kernel: KernelId::MicroBatch,
            dims: vec![params as u64],
            threads: 1,
            isa: "any".to_string(),
        }
    }

    /// The kernel this key names.
    pub fn kernel(&self) -> KernelId {
        self.kernel
    }

    /// The shape dimensions, in the kernel's canonical order.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// The thread count (1 for thread-free kernels).
    pub fn threads(&self) -> u64 {
        self.threads
    }

    /// The ISA segment (`any` when the kernel is ISA-free).
    pub fn isa(&self) -> &str {
        &self.isa
    }

    /// The canonical string form used in `tuning_table.json`.
    pub fn canonical(&self) -> String {
        let mut s = self.kernel.name().to_string();
        for (tag, d) in self.kernel.dim_tags().iter().zip(&self.dims) {
            s.push('/');
            s.push(*tag);
            s.push_str(&d.to_string());
        }
        if self.kernel.keyed_on_threads() {
            s.push_str(&format!("/t{}", self.threads));
        }
        if self.kernel.keyed_on_isa() {
            s.push('/');
            s.push_str(&self.isa);
        }
        s
    }

    /// Parses a canonical key string. Returns `None` on an unknown kernel
    /// or malformed segments (the table loader maps that to a typed
    /// [`crate::TuneError`]).
    pub fn parse(s: &str) -> Option<TuneKey> {
        let mut parts = s.split('/');
        let kernel = KernelId::parse(parts.next()?)?;
        let mut dims = Vec::with_capacity(kernel.dim_tags().len());
        for tag in kernel.dim_tags() {
            let seg = parts.next()?;
            let rest = seg.strip_prefix(*tag)?;
            dims.push(rest.parse::<u64>().ok()?);
        }
        let threads = if kernel.keyed_on_threads() {
            let seg = parts.next()?;
            let rest = seg.strip_prefix('t')?;
            let t = rest.parse::<u64>().ok()?;
            if t == 0 {
                return None;
            }
            t
        } else {
            1
        };
        let isa = if kernel.keyed_on_isa() {
            let seg = parts.next()?;
            if seg.is_empty() {
                return None;
            }
            seg.to_string()
        } else {
            "any".to_string()
        };
        if parts.next().is_some() {
            return None;
        }
        Some(TuneKey {
            kernel,
            dims,
            threads,
            isa,
        })
    }

    /// Shape distance to another key of the **same kernel**: the sum of
    /// per-dimension log2 gaps, plus a log2 thread gap, plus a penalty
    /// when both keys pin a concrete ISA and they differ (`any` matches
    /// everything for free). Smaller is closer; ties are broken by
    /// canonical-string order in the table lookup, so nearest-key
    /// fallback is fully deterministic.
    pub fn distance(&self, other: &TuneKey) -> f64 {
        debug_assert_eq!(self.kernel, other.kernel);
        let lg = |v: u64| ((v + 1) as f64).log2();
        let mut d: f64 = self
            .dims
            .iter()
            .zip(&other.dims)
            .map(|(&a, &b)| (lg(a) - lg(b)).abs())
            .sum();
        d += (lg(self.threads) - lg(other.threads)).abs();
        if self.isa != "any" && other.isa != "any" && self.isa != other.isa {
            d += 0.5;
        }
        d
    }
}

impl fmt::Display for TuneKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_round_trips_every_kernel() {
        let keys = [
            TuneKey::matmul_f32(512, 64, 32, 4, "avx2"),
            TuneKey::matmul_f64(8192, 16, 16, 2, "any"),
            TuneKey::predict(2048, 64, 8),
            TuneKey::kmeans(10_000, 8, 16, 4),
            TuneKey::micro_batch(41_608),
        ];
        for key in keys {
            let s = key.canonical();
            let back = TuneKey::parse(&s).unwrap_or_else(|| panic!("parse {s}"));
            assert_eq!(back, key, "{s}");
        }
    }

    #[test]
    fn canonical_forms_are_stable() {
        assert_eq!(
            TuneKey::matmul_f32(512, 64, 32, 4, "avx2").canonical(),
            "matmul_f32/m512/k64/n32/t4/avx2"
        );
        assert_eq!(
            TuneKey::predict(2048, 64, 8).canonical(),
            "predict/r2048/e64/t8"
        );
        assert_eq!(
            TuneKey::kmeans(10_000, 8, 16, 4).canonical(),
            "kmeans/p10000/d8/k16/t4"
        );
        assert_eq!(TuneKey::micro_batch(100).canonical(), "micro_batch/w100");
    }

    #[test]
    fn parse_rejects_malformed_keys() {
        for bad in [
            "",
            "conv2d/m1/k1/n1/t1/any",       // unknown kernel
            "matmul_f32/m1/k1/n1",          // missing threads + isa
            "matmul_f32/m1/k1/n1/t0/any",   // zero threads
            "matmul_f32/x1/k1/n1/t1/any",   // wrong dim tag
            "matmul_f32/m1/k1/n1/t1/any/z", // trailing segment
            "predict/r8/e8/t2/any",         // isa on an isa-free kernel
            "micro_batch/w8/t2",            // threads on a thread-free kernel
            "kmeans/p8/d2/kx/t1",           // non-numeric dim
        ] {
            assert!(TuneKey::parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn distance_prefers_closer_shapes_and_any_isa() {
        let q = TuneKey::matmul_f32(4096, 16, 16, 2, "avx2");
        let near = TuneKey::matmul_f32(2048, 16, 16, 2, "any");
        let far = TuneKey::matmul_f32(64, 512, 512, 8, "any");
        assert!(q.distance(&near) < q.distance(&far));
        let other_isa = TuneKey::matmul_f32(2048, 16, 16, 2, "neon");
        assert!(q.distance(&near) < q.distance(&other_isa));
    }

    #[test]
    fn every_kernel_has_a_nonempty_ladder() {
        for k in KernelId::ALL {
            assert!(!candidates(k).is_empty());
            assert!(candidates(k).iter().all(|&c| c >= 1));
        }
    }
}
