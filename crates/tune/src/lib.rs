//! Deterministic kernel autotuning.
//!
//! scneural/scpar/scserve historically hard-coded their schedule constants
//! (`MATMUL_PANEL_ROWS = 32`, `BATCH_CHUNK_ROWS = 32`,
//! `KMEANS_CHUNK_POINTS = 256`, `max_batch = 32`) — numbers picked on one
//! machine. This crate turns each of them into an audited, per-hardware
//! decision procedure in three pieces:
//!
//! * a [`TuneKey`] naming one problem shape (kernel id + dimensions +
//!   thread count + ISA where it matters),
//! * a bounded candidate ladder per kernel ([`candidates`]), scored either
//!   by the seeded analytic [`CostModel`] (default, reproducible anywhere)
//!   or by live median-of-N measurement ([`measure::median_of`], used by
//!   the `tune_gen --measure` generator),
//! * a committed, human-diffable [`TuningTable`] (`tuning_table.json`)
//!   whose winners a [`Tuner`] serves at run time with exact → nearest-key
//!   → built-in-constant fallback.
//!
//! **Determinism contract.** Every tunable in this crate is a *schedule*
//! parameter: it moves task boundaries on the scpar pool but never the
//! per-element IEEE-754 operation sequence. Row panels and batch chunks
//! partition independent rows; k-means task granularity groups fixed
//! 256-point accumulation cells whose partials fold in cell order; the
//! micro-batcher's batch size only regroups independently-computed rows.
//! So any table entry — including an adversarial one — yields bit-identical
//! kernel outputs, and the same table gives the same schedule on every
//! host. Work accounting in the kernels stays pinned to the nominal
//! constants, which keeps profiles and Prometheus text byte-identical
//! whether tuning is on or off.
//!
//! The tuner is opt-in: [`Tuner::from_env`] reads `SCTUNE`
//! (unset/`0`/`off` → disabled) and `SCTUNE_TABLE` (default
//! `./tuning_table.json`; a missing file falls back to constants).
//!
//! # Examples
//!
//! Look up a tuned matmul panel with a fallback default:
//!
//! ```
//! use sctune::{TuneKey, Tuner, TuningTable};
//!
//! let json = r#"{
//!   "entries": { "matmul_f32/m4096/k16/n16/t2/any": { "panel_rows": 256 } },
//!   "schema_version": 1
//! }"#;
//! let table = TuningTable::from_json(json)?;
//! let tuner = Tuner::from_table(table);
//!
//! // Exact hit.
//! assert_eq!(tuner.matmul_f32_panel_rows(4096, 16, 16, 2, "avx2", 32), 256);
//! // Nearest-key fallback: same kernel, closest shape.
//! assert_eq!(tuner.matmul_f32_panel_rows(2048, 16, 16, 2, "avx2", 32), 256);
//! // No entry for another kernel: the built-in constant.
//! assert_eq!(tuner.predict_chunk_rows(64, 8, 2, 32), 32);
//! # Ok::<(), sctune::TuneError>(())
//! ```
//!
//! Score candidates with the cost model the way `tune_gen` does:
//!
//! ```
//! use sctune::{candidates, CostModel, KernelId, TuneKey};
//!
//! let key = TuneKey::matmul_f64(8192, 16, 16, 2, "any");
//! let model = CostModel::new(42);
//! let ladder = candidates(KernelId::MatmulF64);
//! let best = ladder
//!     .iter()
//!     .copied()
//!     .min_by(|&a, &b| {
//!         model
//!             .score(&key, a)
//!             .total_cmp(&model.score(&key, b))
//!             .then(a.cmp(&b))
//!     })
//!     .unwrap();
//! assert!(ladder.contains(&best));
//! ```

mod cost;
mod key;
mod table;
mod tuner;

pub mod measure;

pub use cost::CostModel;
pub use key::{candidates, KernelId, TuneKey};
pub use table::{Lookup, TuneError, TuningTable, MAX_PARAM_VALUE, TABLE_SCHEMA_VERSION};
pub use tuner::{
    mode_enabled, Decision, DecisionSource, Tuner, DEFAULT_TABLE_PATH, MODE_ENV, TABLE_ENV,
};
