//! Property tests for social-graph invariants.

use proptest::prelude::*;
use scsocial::{PersonId, SocialGraph};
use std::collections::HashSet;

fn random_graph(edges: &[(u8, u8)]) -> SocialGraph {
    let mut g = SocialGraph::new();
    for &(a, b) in edges {
        g.add_edge(PersonId(a as u32), PersonId(b as u32));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Symmetry: b ∈ N(a) ⟺ a ∈ N(b).
    #[test]
    fn adjacency_is_symmetric(edges in proptest::collection::vec((0u8..40, 0u8..40), 0..80)) {
        let g = random_graph(&edges);
        for &(a, b) in &edges {
            let (a, b) = (PersonId(a as u32), PersonId(b as u32));
            if a != b {
                prop_assert!(g.has_edge(a, b));
                prop_assert!(g.has_edge(b, a));
            }
        }
    }

    /// First- and second-degree sets are disjoint and exclude the seed.
    #[test]
    fn degree_sets_disjoint(
        edges in proptest::collection::vec((0u8..30, 0u8..30), 1..80),
        seed in 0u8..30,
    ) {
        let g = random_graph(&edges);
        let p = PersonId(seed as u32);
        let first: HashSet<PersonId> = g.first_degree(p).into_iter().collect();
        let second: HashSet<PersonId> = g.second_degree(p).into_iter().collect();
        prop_assert!(first.is_disjoint(&second));
        prop_assert!(!first.contains(&p));
        prop_assert!(!second.contains(&p));
    }

    /// within_degree(p, 2) = first ∪ second, for any graph.
    #[test]
    fn within_two_is_union(
        edges in proptest::collection::vec((0u8..25, 0u8..25), 1..70),
        seed in 0u8..25,
    ) {
        let g = random_graph(&edges);
        let p = PersonId(seed as u32);
        let mut union: Vec<PersonId> = g.first_degree(p);
        union.extend(g.second_degree(p));
        union.sort_unstable();
        prop_assert_eq!(g.within_degree(p, 2), union);
    }

    /// within_degree is monotone in k.
    #[test]
    fn within_degree_monotone(
        edges in proptest::collection::vec((0u8..25, 0u8..25), 1..70),
        seed in 0u8..25,
    ) {
        let g = random_graph(&edges);
        let p = PersonId(seed as u32);
        let mut last = 0usize;
        for k in 1..=4 {
            let n = g.within_degree(p, k).len();
            prop_assert!(n >= last, "k={k}");
            last = n;
        }
    }

    /// Sum of degrees = 2 × edges (handshake lemma).
    #[test]
    fn handshake_lemma(edges in proptest::collection::vec((0u8..40, 0u8..40), 0..100)) {
        let g = random_graph(&edges);
        let degree_sum: usize = (0..40u32).map(|i| g.degree(PersonId(i))).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Second-degree via BFS matches brute-force distance computation.
    #[test]
    fn second_degree_matches_brute_force(
        edges in proptest::collection::vec((0u8..15, 0u8..15), 1..40),
        seed in 0u8..15,
    ) {
        let g = random_graph(&edges);
        let p = PersonId(seed as u32);
        // Brute force: distance-2 = reachable in exactly 2 steps.
        let first: HashSet<PersonId> = g.first_degree(p).into_iter().collect();
        let mut brute: HashSet<PersonId> = HashSet::new();
        for f in &first {
            for n in g.first_degree(*f) {
                if n != p && !first.contains(&n) {
                    brute.insert(n);
                }
            }
        }
        let got: HashSet<PersonId> = g.second_degree(p).into_iter().collect();
        prop_assert_eq!(got, brute);
    }
}
