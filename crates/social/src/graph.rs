//! The social graph and k-degree expansion.

use std::collections::{HashMap, HashSet, VecDeque};

/// Identifier of a person in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PersonId(pub u32);

impl std::fmt::Display for PersonId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{:05}", self.0)
    }
}

/// Aggregate statistics of a graph (the §IV-B numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// People in the graph.
    pub people: usize,
    /// Undirected edges.
    pub edges: usize,
    /// Mean first-degree network size over the given subset.
    pub mean_first_degree: f64,
    /// Mean exactly-second-degree count over the given subset.
    pub mean_second_degree: f64,
}

/// An undirected social graph: nodes are people, edges are relationships
/// detected from co-offense records and known affiliations.
///
/// # Examples
///
/// ```
/// use scsocial::{PersonId, SocialGraph};
///
/// let mut g = SocialGraph::new();
/// g.add_edge(PersonId(1), PersonId(2));
/// g.add_edge(PersonId(2), PersonId(3));
/// assert_eq!(g.first_degree(PersonId(1)), vec![PersonId(2)]);
/// assert_eq!(g.second_degree(PersonId(1)), vec![PersonId(3)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SocialGraph {
    adjacency: HashMap<PersonId, HashSet<PersonId>>,
    edges: usize,
}

impl SocialGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures a node exists (isolated people are valid).
    pub fn add_person(&mut self, p: PersonId) {
        self.adjacency.entry(p).or_default();
    }

    /// Adds an undirected edge (idempotent; self-loops ignored).
    pub fn add_edge(&mut self, a: PersonId, b: PersonId) {
        if a == b {
            return;
        }
        let inserted = self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        if inserted {
            self.edges += 1;
        }
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, a: PersonId, b: PersonId) -> bool {
        self.adjacency.get(&a).is_some_and(|n| n.contains(&b))
    }

    /// Number of people.
    pub fn person_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Degree of a person (0 if unknown).
    pub fn degree(&self, p: PersonId) -> usize {
        self.adjacency.get(&p).map_or(0, HashSet::len)
    }

    /// First-degree associates, sorted.
    pub fn first_degree(&self, p: PersonId) -> Vec<PersonId> {
        let mut out: Vec<PersonId> = self
            .adjacency
            .get(&p)
            .map(|n| n.iter().copied().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// People at exactly graph distance 2 (second-degree affiliates — "a
    /// relationship connection through a shared co-offender"), sorted.
    pub fn second_degree(&self, p: PersonId) -> Vec<PersonId> {
        let first: HashSet<PersonId> = self.adjacency.get(&p).cloned().unwrap_or_default();
        let mut second: HashSet<PersonId> = HashSet::new();
        for f in &first {
            if let Some(nn) = self.adjacency.get(f) {
                for &n in nn {
                    if n != p && !first.contains(&n) {
                        second.insert(n);
                    }
                }
            }
        }
        let mut out: Vec<PersonId> = second.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Everyone within graph distance `k` of `p` (excluding `p`), sorted.
    pub fn within_degree(&self, p: PersonId, k: usize) -> Vec<PersonId> {
        let mut seen: HashSet<PersonId> = HashSet::new();
        let mut queue: VecDeque<(PersonId, usize)> = VecDeque::new();
        seen.insert(p);
        queue.push_back((p, 0));
        let mut out = Vec::new();
        while let Some((cur, d)) = queue.pop_front() {
            if d == k {
                continue;
            }
            if let Some(neighbors) = self.adjacency.get(&cur) {
                for &n in neighbors {
                    if seen.insert(n) {
                        out.push(n);
                        queue.push_back((n, d + 1));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Computes mean first/second-degree sizes over `subset` (e.g. gang
    /// members only, as the paper reports).
    pub fn stats_over(&self, subset: &[PersonId]) -> NetworkStats {
        let n = subset.len().max(1) as f64;
        let first: f64 = subset.iter().map(|&p| self.degree(p) as f64).sum::<f64>() / n;
        let second: f64 = subset
            .iter()
            .map(|&p| self.second_degree(p).len() as f64)
            .sum::<f64>()
            / n;
        NetworkStats {
            people: self.person_count(),
            edges: self.edge_count(),
            mean_first_degree: first,
            mean_second_degree: second,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> SocialGraph {
        let mut g = SocialGraph::new();
        for i in 0..n.saturating_sub(1) {
            g.add_edge(PersonId(i), PersonId(i + 1));
        }
        g
    }

    #[test]
    fn edge_bookkeeping() {
        let mut g = SocialGraph::new();
        g.add_edge(PersonId(1), PersonId(2));
        g.add_edge(PersonId(2), PersonId(1)); // duplicate
        g.add_edge(PersonId(1), PersonId(1)); // self-loop ignored
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(PersonId(2), PersonId(1)));
        assert_eq!(g.degree(PersonId(1)), 1);
    }

    #[test]
    fn second_degree_excludes_first() {
        let g = path_graph(5); // 0-1-2-3-4
        assert_eq!(g.second_degree(PersonId(2)), vec![PersonId(0), PersonId(4)]);
        assert_eq!(g.first_degree(PersonId(2)), vec![PersonId(1), PersonId(3)]);
    }

    #[test]
    fn triangle_has_no_second_degree() {
        let mut g = SocialGraph::new();
        g.add_edge(PersonId(0), PersonId(1));
        g.add_edge(PersonId(1), PersonId(2));
        g.add_edge(PersonId(2), PersonId(0));
        assert!(g.second_degree(PersonId(0)).is_empty());
    }

    #[test]
    fn within_degree_bfs() {
        let g = path_graph(6); // 0-1-2-3-4-5
        assert_eq!(g.within_degree(PersonId(0), 1), vec![PersonId(1)]);
        assert_eq!(
            g.within_degree(PersonId(0), 3),
            vec![PersonId(1), PersonId(2), PersonId(3)]
        );
        assert_eq!(g.within_degree(PersonId(0), 99).len(), 5);
    }

    #[test]
    fn within_degree_matches_first_plus_second() {
        let g = path_graph(10);
        for i in 0..10 {
            let p = PersonId(i);
            let mut expect = g.first_degree(p);
            expect.extend(g.second_degree(p));
            expect.sort_unstable();
            assert_eq!(g.within_degree(p, 2), expect);
        }
    }

    #[test]
    fn unknown_person_is_isolated() {
        let g = SocialGraph::new();
        assert_eq!(g.degree(PersonId(9)), 0);
        assert!(g.first_degree(PersonId(9)).is_empty());
        assert!(g.second_degree(PersonId(9)).is_empty());
    }

    #[test]
    fn stats_over_subset() {
        let g = path_graph(4); // degrees: 1,2,2,1
        let stats = g.stats_over(&[PersonId(1), PersonId(2)]);
        assert_eq!(stats.mean_first_degree, 2.0);
        assert_eq!(stats.people, 4);
        assert_eq!(stats.edges, 3);
    }
}
