//! Synthetic gang-network generation calibrated to §IV-B.

use std::collections::HashMap;

use simclock::SeededRng;

use crate::graph::{NetworkStats, PersonId, SocialGraph};

/// A generated network: the relationship graph plus gang rosters.
#[derive(Debug, Clone)]
pub struct GangNetwork {
    graph: SocialGraph,
    gangs: Vec<Vec<PersonId>>,
    gang_of: HashMap<PersonId, usize>,
    population: u32,
}

impl GangNetwork {
    /// The relationship graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Number of gangs.
    pub fn gang_count(&self) -> usize {
        self.gangs.len()
    }

    /// Total gang members across all gangs.
    pub fn member_count(&self) -> usize {
        self.gangs.iter().map(Vec::len).sum()
    }

    /// Total population (members + civilians).
    pub fn population(&self) -> u32 {
        self.population
    }

    /// Roster of one gang.
    pub fn gang(&self, idx: usize) -> &[PersonId] {
        &self.gangs[idx]
    }

    /// All members, gang by gang.
    pub fn members(&self) -> Vec<PersonId> {
        self.gangs.iter().flatten().copied().collect()
    }

    /// The gang a person belongs to, if any.
    pub fn gang_of(&self, p: PersonId) -> Option<usize> {
        self.gang_of.get(&p).copied()
    }

    /// Whether a person is a known gang member.
    pub fn is_member(&self, p: PersonId) -> bool {
        self.gang_of.contains_key(&p)
    }

    /// Network statistics over the member subset — the numbers §IV-B quotes.
    pub fn member_stats(&self) -> NetworkStats {
        self.graph.stats_over(&self.members())
    }
}

/// Builder/generator for [`GangNetwork`]s.
///
/// # Examples
///
/// ```
/// use scsocial::GangNetworkGenerator;
///
/// let net = GangNetworkGenerator::baton_rouge(1).generate();
/// let stats = net.member_stats();
/// assert!((stats.mean_first_degree - 14.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct GangNetworkGenerator {
    gangs: usize,
    members: usize,
    civilians: usize,
    mean_degree: f64,
    intra_gang_fraction: f64,
    seed: u64,
}

impl GangNetworkGenerator {
    /// The paper's Baton Rouge configuration: 67 gangs, 982 members, mean
    /// first-degree ≈ 14, second-degree field ≈ 200.
    pub fn baton_rouge(seed: u64) -> Self {
        GangNetworkGenerator {
            gangs: 67,
            members: 982,
            civilians: 11_000,
            mean_degree: 14.0,
            intra_gang_fraction: 0.2,
            seed,
        }
    }

    /// Custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if gangs or members are zero, or members < gangs.
    pub fn custom(
        gangs: usize,
        members: usize,
        civilians: usize,
        mean_degree: f64,
        seed: u64,
    ) -> Self {
        assert!(
            gangs > 0 && members >= gangs,
            "need at least one member per gang"
        );
        GangNetworkGenerator {
            gangs,
            members,
            civilians,
            mean_degree,
            intra_gang_fraction: 0.2,
            seed,
        }
    }

    /// Overrides the fraction of member edges kept inside the own gang
    /// (higher clustering shrinks the second-degree field).
    pub fn intra_gang_fraction(mut self, f: f64) -> Self {
        self.intra_gang_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Generates the network.
    pub fn generate(&self) -> GangNetwork {
        let mut rng = SeededRng::new(self.seed);
        let population = (self.members + self.civilians) as u32;

        // Gang rosters: round-robin so sizes differ by at most one
        // (982 / 67 ≈ 14.7 members per gang).
        let mut gangs: Vec<Vec<PersonId>> = vec![Vec::new(); self.gangs];
        let mut gang_of = HashMap::new();
        for m in 0..self.members as u32 {
            let g = (m as usize) % self.gangs;
            gangs[g].push(PersonId(m));
            gang_of.insert(PersonId(m), g);
        }

        let mut graph = SocialGraph::new();
        for p in 0..population {
            graph.add_person(PersonId(p));
        }

        // Each person draws Poisson(mean_degree / 2) stubs; every stub is an
        // undirected edge, so expected degree ≈ mean_degree. Members route
        // `intra_gang_fraction` of their stubs inside the gang (co-offense
        // clustering), the rest uniformly across the city.
        let half = self.mean_degree / 2.0;
        for p in 0..population {
            let person = PersonId(p);
            let stubs = rng.poisson(half);
            for _ in 0..stubs {
                let target = match gang_of.get(&person) {
                    Some(&g) if rng.chance(self.intra_gang_fraction) && gangs[g].len() > 1 => {
                        // Random fellow gang member.
                        loop {
                            let t = gangs[g][rng.index(gangs[g].len())];
                            if t != person {
                                break t;
                            }
                        }
                    }
                    _ => PersonId(rng.next_bounded(population as u64) as u32),
                };
                graph.add_edge(person, target);
            }
        }

        GangNetwork {
            graph,
            gangs,
            gang_of,
            population,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baton_rouge_counts_match_paper() {
        let net = GangNetworkGenerator::baton_rouge(1).generate();
        assert_eq!(net.gang_count(), 67);
        assert_eq!(net.member_count(), 982);
    }

    #[test]
    fn mean_first_degree_near_14() {
        let net = GangNetworkGenerator::baton_rouge(2).generate();
        let stats = net.member_stats();
        assert!(
            (stats.mean_first_degree - 14.0).abs() < 1.5,
            "mean first degree {}",
            stats.mean_first_degree
        );
    }

    #[test]
    fn second_degree_field_near_200() {
        let net = GangNetworkGenerator::baton_rouge(3).generate();
        let stats = net.member_stats();
        assert!(
            (150.0..260.0).contains(&stats.mean_second_degree),
            "mean second degree {}",
            stats.mean_second_degree
        );
    }

    #[test]
    fn gang_sizes_balanced() {
        let net = GangNetworkGenerator::baton_rouge(4).generate();
        let sizes: Vec<usize> = (0..net.gang_count()).map(|g| net.gang(g).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "round-robin rosters: {min}..{max}");
    }

    #[test]
    fn membership_lookup() {
        let net = GangNetworkGenerator::baton_rouge(5).generate();
        let member = net.members()[0];
        assert!(net.is_member(member));
        assert!(net.gang_of(member).is_some());
        let civilian = PersonId(net.population() - 1);
        assert!(!net.is_member(civilian));
    }

    #[test]
    fn intra_gang_clustering_increases_same_gang_edges() {
        let low = GangNetworkGenerator::baton_rouge(6)
            .intra_gang_fraction(0.0)
            .generate();
        let high = GangNetworkGenerator::baton_rouge(6)
            .intra_gang_fraction(0.8)
            .generate();
        let same_gang_edges = |net: &GangNetwork| {
            let members = net.members();
            members
                .iter()
                .map(|&m| {
                    net.graph()
                        .first_degree(m)
                        .iter()
                        .filter(|&&n| net.gang_of(n) == net.gang_of(m) && net.is_member(n))
                        .count()
                })
                .sum::<usize>()
        };
        assert!(same_gang_edges(&high) > same_gang_edges(&low) * 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GangNetworkGenerator::baton_rouge(7).generate();
        let b = GangNetworkGenerator::baton_rouge(7).generate();
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        assert_eq!(a.member_stats(), b.member_stats());
    }

    #[test]
    fn custom_configuration() {
        let net = GangNetworkGenerator::custom(5, 50, 500, 8.0, 8).generate();
        assert_eq!(net.gang_count(), 5);
        assert_eq!(net.member_count(), 50);
        let stats = net.member_stats();
        assert!((stats.mean_first_degree - 8.0).abs() < 2.5);
    }
}
