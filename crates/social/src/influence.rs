//! Influence ranking and crew discovery on the criminal network.
//!
//! §IV-B's analytic goal is to "identify social relationships which
//! interconnect violent offenders and criminal group members" so
//! investigations can prioritize. On top of the co-offense graph this module
//! runs the graph-processing substrate (the paper's GraphX-style workloads,
//! §II-C2):
//!
//! - [`influence_ranking`]: PageRank over the relationship graph — who the
//!   network structurally revolves around.
//! - [`discover_crews`]: connected components over the *member-only*
//!   subgraph — data-driven crew discovery, compared against the known gang
//!   rosters.

use std::collections::HashMap;

use sccompute::graph::{connected_components, pagerank, PropertyGraph};
use sctelemetry::{SampleSummary, TelemetryHandle};

use crate::generator::GangNetwork;
use crate::graph::PersonId;

/// Metric name of the people-ranked counter.
pub const METRIC_RANKED: &str = "scsocial_influence_ranked_total";
/// Metric name of the exact PageRank-score histogram.
pub const METRIC_SCORE: &str = "scsocial_influence_score_ratio";

/// Builds the graph-processing view of the full relationship graph.
pub fn to_property_graph(network: &GangNetwork) -> PropertyGraph<()> {
    let mut g = PropertyGraph::new();
    for p in 0..network.population() {
        g.add_vertex(p as u64, ());
    }
    let graph = network.graph();
    for p in 0..network.population() {
        let person = PersonId(p);
        for n in graph.first_degree(person) {
            // first_degree is symmetric; add each undirected edge once.
            if n.0 > p {
                g.add_undirected_edge(p as u64, n.0 as u64, 1.0);
            }
        }
    }
    g
}

/// Member-only subgraph (civilian links removed) for crew discovery.
pub fn member_subgraph(network: &GangNetwork) -> PropertyGraph<()> {
    let mut g = PropertyGraph::new();
    let members = network.members();
    for &m in &members {
        g.add_vertex(m.0 as u64, ());
    }
    let graph = network.graph();
    for &m in &members {
        for n in graph.first_degree(m) {
            if network.is_member(n) && n.0 > m.0 {
                g.add_undirected_edge(m.0 as u64, n.0 as u64, 1.0);
            }
        }
    }
    g
}

/// The `top_k` most influential people by PageRank, with their scores and
/// gang membership, highest first.
pub fn influence_ranking(
    network: &GangNetwork,
    iterations: usize,
    top_k: usize,
) -> Vec<(PersonId, f64, Option<usize>)> {
    let g = to_property_graph(network);
    let ranks = pagerank(&g, iterations);
    let mut ranked: Vec<(PersonId, f64)> = ranks
        .into_iter()
        .map(|(id, r)| (PersonId(id as u32), r))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .take(top_k)
        .map(|(p, r)| (p, r, network.gang_of(p)))
        .collect()
}

/// Distribution of PageRank influence across the whole population, using the
/// shared nearest-rank percentile convention from [`sctelemetry::stats`].
/// When `telemetry` is attached, every score is also observed into the
/// [`METRIC_SCORE`] exact histogram and the population counted into
/// [`METRIC_RANKED`], so the returned summary is reproducible from a
/// registry snapshot. Returns `None` for an empty population.
pub fn influence_summary(
    network: &GangNetwork,
    iterations: usize,
    telemetry: &TelemetryHandle,
) -> Option<SampleSummary> {
    let g = to_property_graph(network);
    let ranks = pagerank(&g, iterations);
    let scores: Vec<f64> = ranks.into_values().collect();
    if telemetry.is_enabled() {
        telemetry.counter_add(
            METRIC_RANKED,
            "people ranked by influence",
            scores.len() as u64,
        );
        for &s in &scores {
            telemetry.observe_exact(METRIC_SCORE, "PageRank influence score", s);
        }
    }
    SampleSummary::from_sample(&scores)
}

/// Discovered crews: connected components of the member-only subgraph, as
/// `component label → members`, largest first.
pub fn discover_crews(network: &GangNetwork) -> Vec<Vec<PersonId>> {
    let g = member_subgraph(network);
    let cc = connected_components(&g);
    let mut groups: HashMap<u64, Vec<PersonId>> = HashMap::new();
    for (id, label) in cc {
        groups.entry(label).or_default().push(PersonId(id as u32));
    }
    let mut crews: Vec<Vec<PersonId>> = groups.into_values().collect();
    for crew in &mut crews {
        crew.sort_unstable();
    }
    crews.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    crews
}

/// How well discovered crews align with known gang rosters: for each crew of
/// size ≥ 2, the purity (largest same-gang fraction). Returns the mean
/// purity weighted by crew size.
pub fn crew_purity(network: &GangNetwork, crews: &[Vec<PersonId>]) -> f64 {
    let mut weighted = 0.0;
    let mut total = 0.0;
    for crew in crews.iter().filter(|c| c.len() >= 2) {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for &p in crew {
            if let Some(g) = network.gang_of(p) {
                *counts.entry(g).or_default() += 1;
            }
        }
        let max = counts.values().copied().max().unwrap_or(0);
        weighted += max as f64;
        total += crew.len() as f64;
    }
    if total == 0.0 {
        0.0
    } else {
        weighted / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GangNetworkGenerator;

    /// Small network with heavy intra-gang clustering so crews are
    /// discoverable.
    fn clustered_network(seed: u64) -> GangNetwork {
        GangNetworkGenerator::custom(4, 40, 100, 8.0, seed)
            .intra_gang_fraction(0.95)
            .generate()
    }

    #[test]
    fn property_graph_matches_social_graph() {
        let net = GangNetworkGenerator::custom(3, 12, 50, 6.0, 1).generate();
        let g = to_property_graph(&net);
        assert_eq!(g.vertex_count(), net.population() as usize);
        // Undirected edges doubled into directed edges.
        assert_eq!(g.edge_count(), 2 * net.graph().edge_count());
    }

    #[test]
    fn influence_ranking_returns_top_k() {
        let net = clustered_network(2);
        let top = influence_ranking(&net, 15, 10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1, "descending scores");
        }
        // High-degree members should outrank average civilians: the top
        // entry's degree is above the population mean.
        let top_degree = net.graph().degree(top[0].0);
        let mean_degree = 2.0 * net.graph().edge_count() as f64 / net.population() as f64;
        assert!(
            top_degree as f64 > mean_degree,
            "{top_degree} vs {mean_degree}"
        );
    }

    #[test]
    fn influence_summary_matches_registry_view() {
        let net = clustered_network(2);
        let t = sctelemetry::Telemetry::shared();
        let summary = influence_summary(&net, 15, &t.handle()).expect("non-empty population");
        assert_eq!(summary.count as u32, net.population());
        assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
        assert!(summary.p99 <= summary.max);

        let reg = t.registry();
        let ranked = reg.get(METRIC_RANKED).unwrap().as_counter().unwrap().get();
        assert_eq!(ranked, summary.count as u64);
        let snap = reg
            .get(METRIC_SCORE)
            .unwrap()
            .as_histogram()
            .unwrap()
            .snapshot();
        assert_eq!(snap.count, summary.count as u64);
        assert_eq!(
            snap.max, summary.max,
            "exact histogram reproduces the summary"
        );
        assert_eq!(snap.percentile(0.95), Some(summary.p95));
    }

    #[test]
    fn crews_cover_all_members() {
        let net = clustered_network(3);
        let crews = discover_crews(&net);
        let covered: usize = crews.iter().map(Vec::len).sum();
        assert_eq!(covered, net.member_count());
    }

    #[test]
    fn full_clustering_yields_pure_crews() {
        // With *all* member edges intra-gang there are no bridges, so
        // member-only components can never span gangs: purity is exactly 1.
        let net = GangNetworkGenerator::custom(4, 40, 100, 8.0, 4)
            .intra_gang_fraction(1.0)
            .generate();
        let crews = discover_crews(&net);
        let purity = crew_purity(&net, &crews);
        assert!((purity - 1.0).abs() < 1e-12, "purity {purity}");
    }

    #[test]
    fn bridge_edges_merge_components() {
        // A single inter-gang co-offense merges crews — exactly why the
        // paper layers tweet evidence on top of raw graph expansion.
        let p95 = crew_purity(
            &clustered_network(4),
            &discover_crews(&clustered_network(4)),
        );
        assert!(p95 <= 1.0);
    }

    #[test]
    fn no_clustering_merges_crews() {
        // With no intra-gang preference the member subgraph is sparse random:
        // crews do not align with rosters better than clustered ones.
        let clustered = clustered_network(5);
        let mixed = GangNetworkGenerator::custom(4, 40, 100, 8.0, 5)
            .intra_gang_fraction(0.0)
            .generate();
        let p_clustered = crew_purity(&clustered, &discover_crews(&clustered));
        let p_mixed = crew_purity(&mixed, &discover_crews(&mixed));
        assert!(
            p_clustered >= p_mixed,
            "clustered {p_clustered} vs mixed {p_mixed}"
        );
    }
}
