//! # scsocial — criminal network analysis
//!
//! Reproduces the paper's §IV-B social-network application. The paper's
//! numbers, which the synthetic generator is calibrated to:
//!
//! > "of the 67 groups and gangs and their 982 members identified and
//! > observed in Baton Rouge area over the past 6 years, each gang member has
//! > a network size of 14 first-degree associates on average. However,
//! > best-practices suggest that investigative techniques extend to
//! > second-degree affiliates as well ... This approach may yield a field of
//! > interest which contains approximately 200 second-degree associates."
//!
//! - [`SocialGraph`]: co-offense/affiliation graph with BFS k-degree
//!   expansion.
//! - [`GangNetworkGenerator`]: builds a synthetic Baton Rouge network with
//!   exactly those statistics (67 gangs, 982 members, mean first-degree ≈ 14,
//!   second-degree field ≈ 200).
//! - [`nlp`]: tokenization, tf-idf, and risk-keyword scoring of tweet text.
//! - [`narrowing`]: the multi-modal (graph × geo × time × text) filter that
//!   shrinks the second-degree field to a small persons-of-interest list.
//!
//! # Examples
//!
//! ```
//! use scsocial::GangNetworkGenerator;
//!
//! let net = GangNetworkGenerator::baton_rouge(42).generate();
//! assert_eq!(net.gang_count(), 67);
//! assert_eq!(net.member_count(), 982);
//! ```

mod generator;
mod graph;
pub mod influence;
pub mod narrowing;
pub mod nlp;

pub use generator::{GangNetwork, GangNetworkGenerator};
pub use graph::{NetworkStats, PersonId, SocialGraph};
