//! Text processing for tweet analysis (the paper's "NLP techniques to
//! capture textual features present in tweet text").

use std::collections::HashMap;

/// Lower-cases and splits text into alphanumeric tokens.
///
/// # Examples
///
/// ```
/// use scsocial::nlp::tokenize;
/// assert_eq!(tokenize("Beef on the BLOCK!"), vec!["beef", "on", "the", "block"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(String::from)
        .collect()
}

/// A tf-idf vectorizer fitted over a corpus.
#[derive(Debug, Clone)]
pub struct TfIdf {
    vocabulary: HashMap<String, usize>,
    idf: Vec<f64>,
}

impl TfIdf {
    /// Fits vocabulary and inverse document frequencies on a corpus.
    ///
    /// # Panics
    ///
    /// Panics on an empty corpus.
    pub fn fit(corpus: &[&str]) -> Self {
        assert!(!corpus.is_empty(), "empty corpus");
        let mut vocabulary: HashMap<String, usize> = HashMap::new();
        let mut doc_freq: Vec<usize> = Vec::new();
        for doc in corpus {
            let mut seen: Vec<usize> = Vec::new();
            for token in tokenize(doc) {
                let next = vocabulary.len();
                let idx = *vocabulary.entry(token).or_insert(next);
                if idx == doc_freq.len() {
                    doc_freq.push(0);
                }
                if !seen.contains(&idx) {
                    seen.push(idx);
                    doc_freq[idx] += 1;
                }
            }
        }
        let n = corpus.len() as f64;
        let idf = doc_freq
            .iter()
            .map(|&df| ((1.0 + n) / (1.0 + df as f64)).ln() + 1.0)
            .collect();
        TfIdf { vocabulary, idf }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocabulary.len()
    }

    /// Embeds a document as a dense tf-idf vector over the fitted
    /// vocabulary (out-of-vocabulary tokens ignored).
    pub fn transform(&self, text: &str) -> Vec<f64> {
        let mut vec = vec![0.0; self.vocabulary.len()];
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return vec;
        }
        for t in &tokens {
            if let Some(&idx) = self.vocabulary.get(t) {
                vec[idx] += 1.0;
            }
        }
        let len = tokens.len() as f64;
        for (i, v) in vec.iter_mut().enumerate() {
            *v = (*v / len) * self.idf[i];
        }
        vec
    }

    /// Cosine similarity between two documents under this vectorizer.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let va = self.transform(a);
        let vb = self.transform(b);
        let dot: f64 = va.iter().zip(&vb).map(|(x, y)| x * y).sum();
        let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// Scores text by the fraction of its tokens that are risk keywords
/// (violence-correlated vocabulary). Returns a value in `[0, 1]`.
pub fn risk_score(text: &str, risk_words: &[&str]) -> f64 {
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return 0.0;
    }
    let hits = tokens
        .iter()
        .filter(|t| risk_words.iter().any(|r| r == t))
        .count();
    hits as f64 / tokens.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_strips_punctuation() {
        assert_eq!(tokenize("Hello, world!"), vec!["hello", "world"]);
        assert!(tokenize("...").is_empty());
        assert_eq!(tokenize("a1 b2"), vec!["a1", "b2"]);
    }

    #[test]
    fn tfidf_downweights_common_words() {
        let corpus = ["the cat", "the dog", "the bird", "rare pangolin"];
        let model = TfIdf::fit(&corpus);
        let v = model.transform("the pangolin");
        let the_idx = *model.vocabulary.get("the").unwrap();
        let pangolin_idx = *model.vocabulary.get("pangolin").unwrap();
        assert!(v[pangolin_idx] > v[the_idx], "rare words weigh more");
    }

    #[test]
    fn similarity_bounds_and_identity() {
        let corpus = ["beef on the block", "lunch by the river", "smoke and ride"];
        let model = TfIdf::fit(&corpus);
        let s = model.similarity("beef on the block", "beef on the block");
        assert!((s - 1.0).abs() < 1e-9);
        let d = model.similarity("beef on the block", "lunch by the river");
        assert!((0.0..1.0).contains(&d));
        assert!(d < s);
    }

    #[test]
    fn oov_text_is_zero_vector() {
        let model = TfIdf::fit(&["known words"]);
        let v = model.transform("completely different");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(model.similarity("known", "different"), 0.0);
    }

    #[test]
    fn risk_score_fractions() {
        let risk = ["beef", "strap"];
        assert_eq!(risk_score("beef strap", &risk), 1.0);
        assert_eq!(risk_score("beef and lunch today", &risk), 0.25);
        assert_eq!(risk_score("sunny day", &risk), 0.0);
        assert_eq!(risk_score("", &risk), 0.0);
    }
}
