//! Multi-modal persons-of-interest narrowing (§IV-B).
//!
//! The paper: *"By combining the expansive field of second-degree associates
//! with geo-targeted tweets during the time frame of a violent incident, the
//! field of associates may be strategically narrowed to known associates who
//! might have been in the location of a criminal incident at the time of the
//! event."* [`Narrower::narrow`] implements exactly that layering: graph
//! expansion × geofence × time window × risk-vocabulary score.

use scdata::tweets::{Tweet, RISK_WORDS};
use scgeo::{GeoPoint, Geofence};
use simclock::{SimDuration, SimTime};

use crate::generator::GangNetwork;
use crate::graph::PersonId;
use crate::nlp::risk_score;

/// A violent incident to investigate.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Where it happened.
    pub location: GeoPoint,
    /// When it happened.
    pub time: SimTime,
    /// A person known to be involved (victim or suspect) — the seed of the
    /// graph expansion.
    pub seed_person: PersonId,
}

/// Tunable thresholds for the narrowing filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NarrowingConfig {
    /// Geofence radius around the incident in meters.
    pub radius_m: f64,
    /// Half-width of the time window around the incident.
    pub window: SimDuration,
    /// Minimum risk-vocabulary score for a tweet to count.
    pub min_risk_score: f64,
}

impl Default for NarrowingConfig {
    fn default() -> Self {
        NarrowingConfig {
            radius_m: 1_500.0,
            window: SimDuration::from_secs(2 * 3600),
            min_risk_score: 0.15,
        }
    }
}

/// Result of one narrowing run.
#[derive(Debug, Clone, PartialEq)]
pub struct NarrowingReport {
    /// First-degree associates of the seed.
    pub first_degree: usize,
    /// Second-degree affiliates (the "field of interest").
    pub field_of_interest: usize,
    /// Persons of interest after the multi-modal filter.
    pub persons_of_interest: Vec<PersonId>,
    /// `field_of_interest / persons_of_interest` (∞-safe: 0 when empty).
    pub reduction_factor: f64,
}

/// The narrowing engine: binds a gang network to a tweet corpus (tweets must
/// carry `user` handles of the form produced by [`person_handle`]).
#[derive(Debug)]
pub struct Narrower<'a> {
    network: &'a GangNetwork,
    tweets: &'a [Tweet],
    config: NarrowingConfig,
}

/// The Twitter handle associated with a person id ("we identify the Twitter
/// IDs of the first- and second-degree associates").
pub fn person_handle(p: PersonId) -> String {
    format!("user_{:05}", p.0)
}

/// Parses a handle back to a person id.
pub fn handle_to_person(handle: &str) -> Option<PersonId> {
    handle
        .strip_prefix("user_")
        .and_then(|s| s.parse().ok())
        .map(PersonId)
}

impl<'a> Narrower<'a> {
    /// Creates a narrower over a network and corpus.
    pub fn new(network: &'a GangNetwork, tweets: &'a [Tweet], config: NarrowingConfig) -> Self {
        Narrower {
            network,
            tweets,
            config,
        }
    }

    /// Whether a tweet falls inside the incident's space-time-risk envelope.
    fn tweet_matches(&self, tweet: &Tweet, incident: &Incident) -> bool {
        let fence = Geofence::circle(incident.location, self.config.radius_m);
        if !fence.contains(tweet.location) {
            return false;
        }
        let dt = tweet.time.as_micros().abs_diff(incident.time.as_micros());
        if dt > self.config.window.as_micros() {
            return false;
        }
        risk_score(&tweet.text, RISK_WORDS) >= self.config.min_risk_score
    }

    /// Runs the full §IV-B pipeline for one incident.
    pub fn narrow(&self, incident: &Incident) -> NarrowingReport {
        let graph = self.network.graph();
        let first = graph.first_degree(incident.seed_person);
        let field = graph.second_degree(incident.seed_person);

        // Candidate set: first- + second-degree associates.
        let mut candidates = first.clone();
        candidates.extend(&field);

        let mut poi: Vec<PersonId> = candidates
            .iter()
            .copied()
            .filter(|&p| {
                let handle = person_handle(p);
                self.tweets
                    .iter()
                    .any(|t| t.user == handle && self.tweet_matches(t, incident))
            })
            .collect();
        poi.sort_unstable();
        poi.dedup();

        let field_size = field.len();
        NarrowingReport {
            first_degree: first.len(),
            field_of_interest: field_size,
            reduction_factor: if poi.is_empty() {
                0.0
            } else {
                field_size as f64 / poi.len() as f64
            },
            persons_of_interest: poi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GangNetworkGenerator;
    use scdata::tweets::TweetGenerator;

    fn incident_at(net: &GangNetwork) -> Incident {
        Incident {
            location: GeoPoint::new(30.45, -91.18),
            time: SimTime::from_secs(10_000),
            seed_person: net.members()[0],
        }
    }

    /// Builds a corpus in which `guilty` associates tweeted riskily near the
    /// incident and everyone else tweeted benignly elsewhere/elsewhen.
    fn corpus(net: &GangNetwork, incident: &Incident, guilty: &[PersonId]) -> Vec<Tweet> {
        let mut gen = TweetGenerator::new(9);
        let mut tweets = Vec::new();
        for &g in guilty {
            tweets.push(gen.near_incident(
                &person_handle(g),
                incident.location,
                500.0,
                incident.time,
                30 * 60 * 1_000_000,
            ));
        }
        // Distractors: second-degree associates tweeting far away / long ago.
        let far = GeoPoint::new(30.60, -91.00);
        for &p in net
            .graph()
            .second_degree(incident.seed_person)
            .iter()
            .take(50)
        {
            tweets.push(gen.benign(&person_handle(p), far, SimTime::from_secs(500_000)));
        }
        tweets
    }

    #[test]
    fn narrows_to_guilty_associates() {
        let net = GangNetworkGenerator::baton_rouge(10).generate();
        let incident = incident_at(&net);
        // Pick three true second-degree associates as "guilty".
        let field = net.graph().second_degree(incident.seed_person);
        assert!(field.len() >= 3, "field {}", field.len());
        let guilty = [field[0], field[1], field[2]];
        let tweets = corpus(&net, &incident, &guilty);
        let narrower = Narrower::new(&net, &tweets, NarrowingConfig::default());
        let report = narrower.narrow(&incident);
        assert_eq!(report.persons_of_interest, {
            let mut g = guilty.to_vec();
            g.sort_unstable();
            g
        });
        assert!(
            report.reduction_factor > 10.0,
            "factor {}",
            report.reduction_factor
        );
    }

    #[test]
    fn field_matches_graph_second_degree() {
        let net = GangNetworkGenerator::baton_rouge(11).generate();
        let incident = incident_at(&net);
        let narrower = Narrower::new(&net, &[], NarrowingConfig::default());
        let report = narrower.narrow(&incident);
        assert_eq!(
            report.field_of_interest,
            net.graph().second_degree(incident.seed_person).len()
        );
        assert!(report.persons_of_interest.is_empty());
        assert_eq!(report.reduction_factor, 0.0);
    }

    #[test]
    fn far_away_tweets_excluded() {
        let net = GangNetworkGenerator::baton_rouge(12).generate();
        let incident = incident_at(&net);
        let field = net.graph().second_degree(incident.seed_person);
        let mut gen = TweetGenerator::new(13);
        // Risky tweet, right time, wrong place (10 km away).
        let tweets = vec![gen.risky(
            &person_handle(field[0]),
            incident.location.offset_m(10_000.0, 0.0),
            incident.time,
        )];
        let narrower = Narrower::new(&net, &tweets, NarrowingConfig::default());
        assert!(narrower.narrow(&incident).persons_of_interest.is_empty());
    }

    #[test]
    fn stale_tweets_excluded() {
        let net = GangNetworkGenerator::baton_rouge(14).generate();
        let incident = incident_at(&net);
        let field = net.graph().second_degree(incident.seed_person);
        let mut gen = TweetGenerator::new(15);
        // Risky tweet, right place, a day later.
        let tweets = vec![gen.risky(
            &person_handle(field[0]),
            incident.location,
            incident.time + SimDuration::from_secs(24 * 3600),
        )];
        let narrower = Narrower::new(&net, &tweets, NarrowingConfig::default());
        assert!(narrower.narrow(&incident).persons_of_interest.is_empty());
    }

    #[test]
    fn benign_text_excluded() {
        let net = GangNetworkGenerator::baton_rouge(16).generate();
        let incident = incident_at(&net);
        let field = net.graph().second_degree(incident.seed_person);
        let mut gen = TweetGenerator::new(17);
        // Right place, right time, harmless vocabulary.
        let tweets = vec![gen.benign(&person_handle(field[0]), incident.location, incident.time)];
        let narrower = Narrower::new(&net, &tweets, NarrowingConfig::default());
        assert!(narrower.narrow(&incident).persons_of_interest.is_empty());
    }

    #[test]
    fn strangers_never_surface() {
        // A guilty-looking tweet from someone outside the 2-degree field must
        // not appear (the field is the investigative scope).
        let net = GangNetworkGenerator::baton_rouge(18).generate();
        let incident = incident_at(&net);
        let stranger = PersonId(net.population() - 1);
        let mut gen = TweetGenerator::new(19);
        let tweets = vec![gen.near_incident(
            &person_handle(stranger),
            incident.location,
            300.0,
            incident.time,
            60 * 1_000_000,
        )];
        let narrower = Narrower::new(&net, &tweets, NarrowingConfig::default());
        let report = narrower.narrow(&incident);
        assert!(!report.persons_of_interest.contains(&stranger));
    }

    #[test]
    fn handle_roundtrip() {
        let p = PersonId(123);
        assert_eq!(handle_to_person(&person_handle(p)), Some(p));
        assert_eq!(handle_to_person("not_a_handle"), None);
    }
}
