//! The cluster facade: client API, placement, failures, re-replication.

use bytes::Bytes;
use scfault::{FaultEvent, FaultKind, FaultPlan};
use sctelemetry::{Report, TelemetryHandle};
use simclock::{SeededRng, SimDuration, SimTime, VirtualClock};

use crate::block::{Block, BlockId};
use crate::datanode::{DataNode, NodeId};
use crate::error::DfsError;
use crate::namenode::{FileMeta, NameNode};

/// Metric name of the block-writes counter (one per logical block).
pub const METRIC_BLOCK_WRITES: &str = "scdfs_block_writes_total";
/// Metric name of the replica-bytes-written counter.
pub const METRIC_WRITE_BYTES: &str = "scdfs_block_write_bytes_total";
/// Metric name of the successful block-reads counter.
pub const METRIC_BLOCK_READS: &str = "scdfs_block_reads_total";
/// Metric name of the replicas-created-by-repair counter.
pub const METRIC_REPLICATIONS: &str = "scdfs_replication_replicas_total";
/// Metric name of the corrupt-replicas-dropped-by-scrub counter.
pub const METRIC_SCRUBBED: &str = "scdfs_scrub_corrupt_replicas_total";
/// Metric name of the repair-MTTR histogram (seconds from first
/// under-replication to full replication, one sample per outage episode).
pub const METRIC_MTTR: &str = "scdfs_repair_mttr_seconds";

/// Aggregate cluster statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    /// Total datanodes.
    pub nodes: usize,
    /// Alive datanodes.
    pub alive_nodes: usize,
    /// Files in the namespace.
    pub files: usize,
    /// Distinct blocks tracked by the namenode.
    pub blocks: usize,
    /// Blocks with fewer alive replicas than the replication factor.
    pub under_replicated: usize,
    /// Blocks with zero alive replicas.
    pub lost: usize,
    /// Total replica bytes across alive nodes.
    pub used_bytes: usize,
}

impl Report for ClusterStats {
    fn kv(&self) -> Vec<(String, f64)> {
        vec![
            ("nodes".to_string(), self.nodes as f64),
            ("alive_nodes".to_string(), self.alive_nodes as f64),
            ("files".to_string(), self.files as f64),
            ("blocks".to_string(), self.blocks as f64),
            ("under_replicated".to_string(), self.under_replicated as f64),
            ("lost".to_string(), self.lost as f64),
            ("used_bytes".to_string(), self.used_bytes as f64),
        ]
    }
}

/// What happened across a [`DfsCluster::run_fault_plan`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// Fault events that took effect on this cluster.
    pub faults_applied: usize,
    /// Replicas created by re-replication over the run.
    pub replicas_repaired: usize,
    /// Corrupt replicas detected and dropped by the scrubber.
    pub corrupt_replicas_dropped: usize,
    /// Completed outage episodes (degraded → fully replicated again).
    pub repairs: usize,
    /// Mean time-to-repair across completed episodes, in sim-seconds.
    pub mttr_mean_s: f64,
    /// Worst time-to-repair across completed episodes, in sim-seconds.
    pub mttr_max_s: f64,
    /// Whether the cluster was still degraded when the horizon ran out.
    pub unrepaired_at_end: bool,
    /// Cluster statistics at the end of the run.
    pub final_stats: ClusterStats,
}

impl Report for RepairReport {
    fn kv(&self) -> Vec<(String, f64)> {
        vec![
            ("faults_applied".to_string(), self.faults_applied as f64),
            (
                "replicas_repaired".to_string(),
                self.replicas_repaired as f64,
            ),
            (
                "corrupt_replicas_dropped".to_string(),
                self.corrupt_replicas_dropped as f64,
            ),
            ("repairs".to_string(), self.repairs as f64),
            ("mttr_mean_s".to_string(), self.mttr_mean_s),
            ("mttr_max_s".to_string(), self.mttr_max_s),
            (
                "unrepaired_at_end".to_string(),
                if self.unrepaired_at_end { 1.0 } else { 0.0 },
            ),
            (
                "under_replicated".to_string(),
                self.final_stats.under_replicated as f64,
            ),
            ("lost".to_string(), self.final_stats.lost as f64),
        ]
    }
}

/// An HDFS-like cluster: one namenode plus `n` datanodes.
///
/// All operations are synchronous and deterministic under the construction
/// seed. See the crate docs for a usage example.
#[derive(Debug)]
pub struct DfsCluster {
    namenode: NameNode,
    datanodes: Vec<DataNode>,
    replication: usize,
    block_size: usize,
    clock: VirtualClock,
    rng: SeededRng,
    telemetry: TelemetryHandle,
}

impl DfsCluster {
    /// Creates a cluster of `nodes` datanodes with the given `replication`
    /// factor and `block_size` in bytes.
    ///
    /// # Errors
    ///
    /// [`DfsError::BadConfig`] if any parameter is zero or
    /// `replication > nodes`.
    pub fn new(
        nodes: usize,
        replication: usize,
        block_size: usize,
        seed: u64,
    ) -> Result<Self, DfsError> {
        if nodes == 0 || replication == 0 || block_size == 0 {
            return Err(DfsError::BadConfig(
                "nodes, replication, block_size must be positive".into(),
            ));
        }
        if replication > nodes {
            return Err(DfsError::BadConfig(format!(
                "replication {replication} exceeds node count {nodes}"
            )));
        }
        Ok(DfsCluster {
            namenode: NameNode::new(),
            datanodes: (0..nodes)
                .map(|i| DataNode::new(NodeId(i as u32)))
                .collect(),
            replication,
            block_size,
            clock: VirtualClock::new(),
            rng: SeededRng::new(seed),
            telemetry: TelemetryHandle::disabled(),
        })
    }

    /// Attaches telemetry: block reads/writes count into the `scdfs_*`
    /// metrics and node failures / re-replication emit sim-time events.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The configured block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Read-only access to the namenode.
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// Read-only access to a datanode.
    pub fn datanode(&self, id: NodeId) -> Option<&DataNode> {
        self.datanodes.get(id.0 as usize)
    }

    fn alive_ids(&self) -> Vec<NodeId> {
        self.datanodes
            .iter()
            .filter(|d| d.is_alive())
            .map(|d| d.id())
            .collect()
    }

    /// Chooses `k` distinct targets among alive nodes, preferring emptier
    /// nodes (a simplification of HDFS's rack-aware spread) with random
    /// tie-breaking.
    fn choose_targets(&mut self, k: usize, exclude: &[NodeId]) -> Result<Vec<NodeId>, DfsError> {
        let mut candidates: Vec<NodeId> = self
            .alive_ids()
            .into_iter()
            .filter(|id| !exclude.contains(id))
            .collect();
        if candidates.len() < k {
            return Err(DfsError::NotEnoughNodes {
                alive: candidates.len(),
                needed: k,
            });
        }
        // Shuffle first so equal-load nodes tie-break randomly, then stable
        // sort by load.
        self.rng.shuffle(&mut candidates);
        candidates.sort_by_key(|id| self.datanodes[id.0 as usize].used_bytes());
        candidates.truncate(k);
        Ok(candidates)
    }

    fn write_block(&mut self, data: &[u8]) -> Result<BlockId, DfsError> {
        let id = self.namenode.allocate_block();
        let targets = self.choose_targets(self.replication, &[])?;
        // Pipelined write: each target stores the block, then acks.
        for t in &targets {
            let block = Block::new(id, Bytes::copy_from_slice(data));
            self.datanodes[t.0 as usize].store(block)?;
            self.namenode.add_location(id, *t);
        }
        self.telemetry
            .counter_inc(METRIC_BLOCK_WRITES, "logical blocks written");
        self.telemetry.counter_add(
            METRIC_WRITE_BYTES,
            "replica bytes written (block size x replication)",
            (data.len() * targets.len()) as u64,
        );
        Ok(id)
    }

    fn split_and_write(&mut self, data: &[u8]) -> Result<Vec<BlockId>, DfsError> {
        if data.is_empty() {
            return Ok(Vec::new());
        }
        data.chunks(self.block_size)
            .map(|chunk| self.write_block(chunk))
            .collect()
    }

    /// Creates a file with the given contents, splitting into blocks and
    /// replicating each.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileExists`] on a duplicate path;
    /// [`DfsError::NotEnoughNodes`] if alive nodes < replication.
    pub fn create(&mut self, path: &str, data: &[u8]) -> Result<(), DfsError> {
        if self.namenode.exists(path) {
            return Err(DfsError::FileExists(path.to_string()));
        }
        let blocks = self.split_and_write(data)?;
        self.namenode.create_file(
            path,
            FileMeta {
                blocks,
                len: data.len(),
            },
        )
    }

    /// Appends to an existing file (new blocks; no partial-block fill, like
    /// HDFS's append in spirit).
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if the path is absent.
    pub fn append(&mut self, path: &str, data: &[u8]) -> Result<(), DfsError> {
        self.namenode.file(path)?; // existence check first
        let blocks = self.split_and_write(data)?;
        self.namenode.append_blocks(path, &blocks, data.len())
    }

    /// Reads a whole file, picking an alive, checksum-valid replica per block.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`], or [`DfsError::BlockUnavailable`] if some
    /// block has no healthy alive replica.
    pub fn read(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let meta = self.namenode.file(path)?;
        let mut out = Vec::with_capacity(meta.len);
        for &b in &meta.blocks {
            out.extend_from_slice(&self.read_block(b)?);
        }
        Ok(out)
    }

    /// Reads a single block from any healthy replica.
    ///
    /// # Errors
    ///
    /// [`DfsError::BlockUnavailable`] if no alive replica passes its
    /// checksum.
    pub fn read_block(&self, block: BlockId) -> Result<Bytes, DfsError> {
        for &node in self.namenode.locations(block) {
            if let Some(dn) = self.datanode(node) {
                if let Ok(data) = dn.read(block) {
                    self.telemetry
                        .counter_inc(METRIC_BLOCK_READS, "successful block reads");
                    return Ok(data);
                }
            }
        }
        Err(DfsError::BlockUnavailable(block))
    }

    /// Deletes a file and reclaims its replicas.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if absent.
    pub fn delete(&mut self, path: &str) -> Result<(), DfsError> {
        // Snapshot locations before the namenode forgets them.
        let meta = self.namenode.file(path)?.clone();
        let locs: Vec<(BlockId, Vec<NodeId>)> = meta
            .blocks
            .iter()
            .map(|&b| (b, self.namenode.locations(b).to_vec()))
            .collect();
        self.namenode.remove_file(path)?;
        for (b, nodes) in locs {
            for n in nodes {
                self.datanodes[n.0 as usize].remove(b);
            }
        }
        Ok(())
    }

    /// Marks a datanode dead. Its replicas become unavailable until restore
    /// or re-replication.
    ///
    /// # Errors
    ///
    /// [`DfsError::UnknownNode`] for an out-of-range id.
    pub fn kill_node(&mut self, node: u32) -> Result<(), DfsError> {
        let dn = self
            .datanodes
            .get_mut(node as usize)
            .ok_or(DfsError::UnknownNode(NodeId(node)))?;
        dn.kill();
        self.telemetry.event(
            "scdfs",
            "node/kill",
            self.clock.now(),
            &format!("node {node}"),
        );
        Ok(())
    }

    /// Restores a dead datanode; its surviving replicas re-register via a
    /// block report.
    ///
    /// # Errors
    ///
    /// [`DfsError::UnknownNode`] for an out-of-range id.
    pub fn restore_node(&mut self, node: u32) -> Result<(), DfsError> {
        let dn = self
            .datanodes
            .get_mut(node as usize)
            .ok_or(DfsError::UnknownNode(NodeId(node)))?;
        dn.restore();
        let id = dn.id();
        for b in dn.block_report() {
            self.namenode.add_location(b, id);
        }
        self.telemetry.event(
            "scdfs",
            "node/restore",
            self.clock.now(),
            &format!("node {node}"),
        );
        Ok(())
    }

    /// Advances the virtual clock and records heartbeats from alive nodes.
    pub fn tick(&mut self, dt: simclock::SimDuration) -> SimTime {
        let now = self.clock.advance(dt);
        for dn in &mut self.datanodes {
            if dn.is_alive() {
                dn.heartbeat(now);
            }
        }
        now
    }

    /// Scans for under-replicated blocks and copies them from a healthy
    /// replica to fresh targets — HDFS's re-replication on datanode loss.
    /// Returns the number of new replicas created.
    pub fn re_replicate(&mut self) -> usize {
        // Collect work first (borrow discipline).
        let mut work: Vec<(BlockId, Vec<NodeId>, usize)> = Vec::new();
        for (block, locs) in self.namenode.all_blocks() {
            let alive: Vec<NodeId> = locs
                .iter()
                .copied()
                .filter(|n| self.datanodes[n.0 as usize].is_alive())
                .collect();
            if !alive.is_empty() && alive.len() < self.replication {
                let missing = self.replication - alive.len();
                work.push((block, locs.to_vec(), missing));
            }
        }
        let mut created = 0;
        for (block, all_locs, missing) in work {
            // Read from any healthy replica.
            let Ok(data) = self.read_block(block) else {
                continue;
            };
            let Ok(targets) = self.choose_targets(missing, &all_locs) else {
                continue;
            };
            for t in targets {
                let replica = Block::new(block, data.clone());
                if self.datanodes[t.0 as usize].store(replica).is_ok() {
                    self.namenode.add_location(block, t);
                    created += 1;
                }
            }
        }
        if created > 0 {
            self.telemetry.counter_add(
                METRIC_REPLICATIONS,
                "replicas created by re-replication",
                created as u64,
            );
            self.telemetry.event(
                "scdfs",
                "re_replicate",
                self.clock.now(),
                &format!("{created} replicas restored"),
            );
        }
        created
    }

    /// Checksum-scans every replica on alive datanodes and drops the corrupt
    /// ones (from both the datanode and the namenode's location map), leaving
    /// the block under-replicated so [`DfsCluster::re_replicate`] can heal it
    /// from a healthy copy — HDFS's background block scanner. Returns the
    /// number of replicas dropped.
    pub fn scrub(&mut self) -> usize {
        let mut bad: Vec<(NodeId, BlockId)> = Vec::new();
        for dn in &self.datanodes {
            if !dn.is_alive() {
                continue;
            }
            for b in dn.block_report() {
                if matches!(dn.read(b), Err(DfsError::CorruptBlock(..))) {
                    bad.push((dn.id(), b));
                }
            }
        }
        for &(n, b) in &bad {
            self.datanodes[n.0 as usize].remove(b);
            self.namenode.remove_location(b, n);
        }
        if !bad.is_empty() {
            self.telemetry.counter_add(
                METRIC_SCRUBBED,
                "corrupt replicas dropped by the checksum scrubber",
                bad.len() as u64,
            );
            self.telemetry.event(
                "scdfs",
                "scrub",
                self.clock.now(),
                &format!("{} corrupt replicas dropped", bad.len()),
            );
        }
        bad.len()
    }

    /// Applies one fault event to the cluster: crashes kill datanodes,
    /// restarts revive them, and corruptions flip bits in stored replicas.
    /// Link and message faults don't apply to this layer and are ignored, as
    /// are events naming nodes or blocks the cluster doesn't have. Returns
    /// whether the event took effect (and was recorded to telemetry).
    pub fn apply_fault(&mut self, event: &FaultEvent) -> bool {
        let applied = match event.kind {
            FaultKind::NodeCrash { node } => self.kill_node(node).is_ok(),
            FaultKind::NodeRestart { node } => self.restore_node(node).is_ok(),
            FaultKind::BlockCorrupt { node, block } => self
                .datanodes
                .get_mut(node as usize)
                .is_some_and(|dn| dn.corrupt_block(BlockId(block))),
            _ => false,
        };
        if applied {
            scfault::record_injection(&self.telemetry, event);
        }
        applied
    }

    /// Runs the cluster under a [`FaultPlan`] for `horizon` of sim-time,
    /// ticking every `repair_interval`: due fault events are applied, then
    /// each tick scrubs corrupt replicas and re-replicates under-replicated
    /// blocks — the namenode's repair loop. Every outage episode (first
    /// moment the cluster has under-replicated or lost blocks, until it is
    /// back to full replication) contributes one MTTR sample to the
    /// [`METRIC_MTTR`] histogram and to the report.
    pub fn run_fault_plan(
        &mut self,
        plan: &FaultPlan,
        repair_interval: SimDuration,
        horizon: SimDuration,
    ) -> RepairReport {
        let end = self.clock.now() + horizon;
        let mut idx = 0;
        let mut degraded_since: Option<SimTime> = None;
        let mut mttrs: Vec<f64> = Vec::new();
        let mut faults_applied = 0;
        let mut replicas_repaired = 0;
        let mut corrupt_dropped = 0;
        while self.clock.now() < end {
            let now = self.tick(repair_interval);
            let events = plan.events();
            let mut first_applied_at = None;
            while idx < events.len() && events[idx].at <= now {
                if self.apply_fault(&events[idx]) {
                    faults_applied += 1;
                    first_applied_at.get_or_insert(events[idx].at);
                }
                idx += 1;
            }
            if degraded_since.is_none() {
                let s = self.stats();
                if s.under_replicated > 0 || s.lost > 0 {
                    // The outage began when the fault landed, not when this
                    // tick noticed it — MTTR includes the detection delay.
                    degraded_since = Some(first_applied_at.unwrap_or(now));
                }
            }
            corrupt_dropped += self.scrub();
            replicas_repaired += self.re_replicate();
            if let Some(since) = degraded_since {
                let s = self.stats();
                if s.under_replicated == 0 && s.lost == 0 {
                    let mttr = now.saturating_since(since).as_secs_f64();
                    self.telemetry.observe_exact(
                        METRIC_MTTR,
                        "seconds from first under-replication to full replication",
                        mttr,
                    );
                    self.telemetry.event(
                        "scdfs",
                        "repair/recovered",
                        now,
                        &format!("full replication restored after {mttr:.3} s"),
                    );
                    mttrs.push(mttr);
                    degraded_since = None;
                }
            }
        }
        let repairs = mttrs.len();
        let mttr_mean_s = if repairs > 0 {
            mttrs.iter().sum::<f64>() / repairs as f64
        } else {
            0.0
        };
        let mttr_max_s = mttrs.iter().cloned().fold(0.0, f64::max);
        RepairReport {
            faults_applied,
            replicas_repaired,
            corrupt_replicas_dropped: corrupt_dropped,
            repairs,
            mttr_mean_s,
            mttr_max_s,
            unrepaired_at_end: degraded_since.is_some(),
            final_stats: self.stats(),
        }
    }

    /// Computes aggregate statistics (the namenode web-UI numbers).
    pub fn stats(&self) -> ClusterStats {
        let mut under = 0;
        let mut lost = 0;
        let mut blocks = 0;
        for (_, locs) in self.namenode.all_blocks() {
            blocks += 1;
            let alive = locs
                .iter()
                .filter(|n| self.datanodes[n.0 as usize].is_alive())
                .count();
            if alive == 0 {
                lost += 1;
            } else if alive < self.replication {
                under += 1;
            }
        }
        ClusterStats {
            nodes: self.datanodes.len(),
            alive_nodes: self.alive_ids().len(),
            files: self.namenode.file_count(),
            blocks,
            under_replicated: under,
            lost,
            used_bytes: self
                .datanodes
                .iter()
                .filter(|d| d.is_alive())
                .map(DataNode::used_bytes)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn create_read_roundtrip() {
        let mut dfs = DfsCluster::new(4, 2, 1024, 1).unwrap();
        let data = payload(5000, 3);
        dfs.create("/f", &data).unwrap();
        assert_eq!(dfs.read("/f").unwrap(), data);
    }

    #[test]
    fn empty_file() {
        let mut dfs = DfsCluster::new(3, 2, 1024, 2).unwrap();
        dfs.create("/empty", &[]).unwrap();
        assert_eq!(dfs.read("/empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn block_splitting_counts() {
        let mut dfs = DfsCluster::new(4, 2, 100, 3).unwrap();
        dfs.create("/f", &payload(250, 0)).unwrap();
        assert_eq!(dfs.namenode().file("/f").unwrap().blocks.len(), 3);
    }

    #[test]
    fn replication_places_on_distinct_nodes() {
        let mut dfs = DfsCluster::new(5, 3, 1024, 4).unwrap();
        dfs.create("/f", &payload(10, 0)).unwrap();
        let b = dfs.namenode().file("/f").unwrap().blocks[0];
        let locs = dfs.namenode().locations(b);
        assert_eq!(locs.len(), 3);
        let mut uniq = locs.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn survives_replication_minus_one_failures() {
        let mut dfs = DfsCluster::new(6, 3, 512, 5).unwrap();
        let data = payload(3000, 7);
        dfs.create("/f", &data).unwrap();
        dfs.kill_node(0).unwrap();
        dfs.kill_node(1).unwrap();
        assert_eq!(
            dfs.read("/f").unwrap(),
            data,
            "3-way replication survives 2 failures"
        );
    }

    #[test]
    fn data_lost_when_all_replicas_die() {
        let mut dfs = DfsCluster::new(2, 2, 512, 6).unwrap();
        dfs.create("/f", &payload(100, 1)).unwrap();
        dfs.kill_node(0).unwrap();
        dfs.kill_node(1).unwrap();
        assert!(matches!(dfs.read("/f"), Err(DfsError::BlockUnavailable(_))));
    }

    #[test]
    fn restore_brings_data_back() {
        let mut dfs = DfsCluster::new(2, 2, 512, 7).unwrap();
        let data = payload(100, 2);
        dfs.create("/f", &data).unwrap();
        dfs.kill_node(0).unwrap();
        dfs.kill_node(1).unwrap();
        dfs.restore_node(0).unwrap();
        assert_eq!(dfs.read("/f").unwrap(), data);
    }

    #[test]
    fn re_replication_restores_factor() {
        let mut dfs = DfsCluster::new(6, 3, 512, 8).unwrap();
        dfs.create("/f", &payload(2000, 3)).unwrap();
        dfs.kill_node(0).unwrap();
        let before = dfs.stats();
        let created = dfs.re_replicate();
        let after = dfs.stats();
        assert_eq!(
            after.under_replicated, 0,
            "created {created}, before {before:?}"
        );
        // After re-replication, killing two *more* nodes still cannot lose data.
        dfs.kill_node(1).unwrap();
        dfs.kill_node(2).unwrap();
        assert!(dfs.read("/f").is_ok());
    }

    #[test]
    fn corrupt_replica_is_skipped() {
        let mut dfs = DfsCluster::new(3, 2, 512, 9).unwrap();
        let data = payload(100, 4);
        dfs.create("/f", &data).unwrap();
        let b = dfs.namenode().file("/f").unwrap().blocks[0];
        let first = dfs.namenode().locations(b)[0];
        dfs.datanodes[first.0 as usize].corrupt_block(b);
        assert_eq!(
            dfs.read("/f").unwrap(),
            data,
            "falls through to the healthy replica"
        );
    }

    #[test]
    fn delete_reclaims_space() {
        let mut dfs = DfsCluster::new(3, 2, 512, 10).unwrap();
        dfs.create("/f", &payload(1000, 5)).unwrap();
        assert!(dfs.stats().used_bytes > 0);
        dfs.delete("/f").unwrap();
        let s = dfs.stats();
        assert_eq!(s.used_bytes, 0);
        assert_eq!(s.files, 0);
        assert_eq!(s.blocks, 0);
        assert!(matches!(dfs.read("/f"), Err(DfsError::FileNotFound(_))));
    }

    #[test]
    fn append_extends_file() {
        let mut dfs = DfsCluster::new(3, 2, 100, 11).unwrap();
        let a = payload(150, 6);
        let b = payload(80, 7);
        dfs.create("/f", &a).unwrap();
        dfs.append("/f", &b).unwrap();
        let mut expect = a;
        expect.extend_from_slice(&b);
        assert_eq!(dfs.read("/f").unwrap(), expect);
    }

    #[test]
    fn write_fails_without_enough_alive_nodes() {
        let mut dfs = DfsCluster::new(3, 3, 512, 12).unwrap();
        dfs.kill_node(0).unwrap();
        assert!(matches!(
            dfs.create("/f", &payload(10, 0)),
            Err(DfsError::NotEnoughNodes {
                alive: 2,
                needed: 3
            })
        ));
    }

    #[test]
    fn bad_config_rejected() {
        assert!(DfsCluster::new(0, 1, 512, 0).is_err());
        assert!(DfsCluster::new(2, 3, 512, 0).is_err());
        assert!(DfsCluster::new(2, 2, 0, 0).is_err());
    }

    #[test]
    fn placement_balances_load() {
        let mut dfs = DfsCluster::new(4, 1, 100, 13).unwrap();
        for i in 0..40 {
            dfs.create(&format!("/f{i}"), &payload(100, i as u8))
                .unwrap();
        }
        let counts: Vec<usize> = dfs.datanodes.iter().map(DataNode::block_count).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "least-loaded placement keeps balance, got {counts:?}"
        );
    }

    #[test]
    fn telemetry_counts_io_and_replication() {
        let t = sctelemetry::Telemetry::shared();
        let mut dfs = DfsCluster::new(6, 3, 512, 8)
            .unwrap()
            .with_telemetry(t.handle());
        dfs.create("/f", &payload(2000, 3)).unwrap(); // 4 blocks
        dfs.read("/f").unwrap();
        dfs.kill_node(0).unwrap();
        let created = dfs.re_replicate();

        let reg = t.registry();
        let counter = |n: &str| reg.get(n).unwrap().as_counter().unwrap().get();
        assert_eq!(counter(METRIC_BLOCK_WRITES), 4);
        assert_eq!(counter(METRIC_WRITE_BYTES), 2000 * 3);
        assert!(counter(METRIC_BLOCK_READS) >= 4);
        assert_eq!(counter(METRIC_REPLICATIONS), created as u64);
        assert!(t.trace_len() >= 2, "kill + re_replicate events recorded");
    }

    #[test]
    fn scrub_drops_corrupt_replicas_and_repair_heals() {
        let t = sctelemetry::Telemetry::shared();
        let mut dfs = DfsCluster::new(4, 2, 512, 21)
            .unwrap()
            .with_telemetry(t.handle());
        let data = payload(400, 9);
        dfs.create("/f", &data).unwrap();
        let b = dfs.namenode().file("/f").unwrap().blocks[0];
        let first = dfs.namenode().locations(b)[0];
        dfs.datanodes[first.0 as usize].corrupt_block(b);
        assert_eq!(dfs.scrub(), 1);
        assert_eq!(dfs.stats().under_replicated, 1, "corrupt replica dropped");
        assert_eq!(dfs.re_replicate(), 1);
        assert_eq!(dfs.stats().under_replicated, 0);
        assert_eq!(dfs.read("/f").unwrap(), data);
        let reg = t.registry();
        assert_eq!(
            reg.get(METRIC_SCRUBBED)
                .unwrap()
                .as_counter()
                .unwrap()
                .get(),
            1
        );
    }

    #[test]
    fn apply_fault_maps_kinds_onto_cluster_ops() {
        let mut dfs = DfsCluster::new(3, 2, 512, 22).unwrap();
        dfs.create("/f", &payload(100, 1)).unwrap();
        let b = dfs.namenode().file("/f").unwrap().blocks[0];
        let holder = dfs.namenode().locations(b)[0];
        use simclock::SimTime;
        let at = SimTime::from_secs(1);
        assert!(dfs.apply_fault(&FaultEvent {
            at,
            kind: FaultKind::NodeCrash { node: 0 }
        }));
        assert!(!dfs.datanode(NodeId(0)).unwrap().is_alive());
        assert!(dfs.apply_fault(&FaultEvent {
            at,
            kind: FaultKind::NodeRestart { node: 0 }
        }));
        assert!(dfs.datanode(NodeId(0)).unwrap().is_alive());
        assert!(dfs.apply_fault(&FaultEvent {
            at,
            kind: FaultKind::BlockCorrupt {
                node: holder.0,
                block: b.0
            }
        }));
        assert_eq!(dfs.scrub(), 1);
        // Out-of-range node and non-DFS kinds are ignored.
        assert!(!dfs.apply_fault(&FaultEvent {
            at,
            kind: FaultKind::NodeCrash { node: 99 }
        }));
        assert!(!dfs.apply_fault(&FaultEvent {
            at,
            kind: FaultKind::MessageDrop { seq: 0 }
        }));
    }

    #[test]
    fn fault_plan_run_measures_mttr() {
        let t = sctelemetry::Telemetry::shared();
        let mut dfs = DfsCluster::new(6, 3, 512, 23)
            .unwrap()
            .with_telemetry(t.handle());
        dfs.create("/f", &payload(4000, 2)).unwrap();
        use simclock::SimTime;
        let plan = FaultPlan::empty()
            .with_event(SimTime::from_secs(5), FaultKind::NodeCrash { node: 0 })
            .with_event(SimTime::from_secs(7), FaultKind::NodeCrash { node: 1 });
        let report =
            dfs.run_fault_plan(&plan, SimDuration::from_secs(1), SimDuration::from_secs(30));
        assert_eq!(report.faults_applied, 2);
        assert!(report.replicas_repaired > 0);
        assert_eq!(report.repairs, 2, "each crash healed within one tick");
        assert!(report.mttr_mean_s > 0.0 || report.mttr_max_s == 0.0);
        assert!(!report.unrepaired_at_end);
        assert_eq!(report.final_stats.under_replicated, 0);
        assert_eq!(report.final_stats.lost, 0);
        let reg = t.registry();
        let entry = reg.get(METRIC_MTTR).unwrap();
        assert_eq!(entry.as_histogram().unwrap().snapshot().count, 2);
    }

    #[test]
    fn fault_plan_run_is_deterministic() {
        let run = || {
            let mut dfs = DfsCluster::new(8, 3, 256, 24).unwrap();
            dfs.create("/f", &payload(3000, 5)).unwrap();
            let plan = FaultPlan::generate(
                &scfault::FaultSpec {
                    crashes: 3.0,
                    corruptions: 2.0,
                    blocks: 12,
                    ..scfault::FaultSpec::new(SimDuration::from_secs(60), 8)
                },
                77,
            );
            let report =
                dfs.run_fault_plan(&plan, SimDuration::from_secs(1), SimDuration::from_secs(90));
            format!("{report:?}")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tick_heartbeats_alive_only() {
        let mut dfs = DfsCluster::new(3, 2, 512, 14).unwrap();
        dfs.kill_node(2).unwrap();
        let now = dfs.tick(simclock::SimDuration::from_secs(3));
        assert_eq!(dfs.datanode(NodeId(0)).unwrap().last_heartbeat(), now);
        assert_eq!(
            dfs.datanode(NodeId(2)).unwrap().last_heartbeat(),
            SimTime::ZERO
        );
    }
}
