//! Datanodes: block storage workers with heartbeats.

use std::collections::HashMap;

use bytes::Bytes;
use simclock::SimTime;

use crate::block::{Block, BlockId};
use crate::error::DfsError;

/// Identifier of a datanode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dn-{:03}", self.0)
    }
}

/// A simulated datanode storing replicas of blocks.
#[derive(Debug, Clone)]
pub struct DataNode {
    id: NodeId,
    blocks: HashMap<BlockId, Block>,
    alive: bool,
    last_heartbeat: SimTime,
}

impl DataNode {
    /// Creates an empty, alive node.
    pub fn new(id: NodeId) -> Self {
        DataNode {
            id,
            blocks: HashMap::new(),
            alive: true,
            last_heartbeat: SimTime::ZERO,
        }
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is currently serving requests.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Number of replicas stored here.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total payload bytes stored here.
    pub fn used_bytes(&self) -> usize {
        self.blocks.values().map(Block::len).sum()
    }

    /// Most recent heartbeat time.
    pub fn last_heartbeat(&self) -> SimTime {
        self.last_heartbeat
    }

    /// Records a heartbeat at `now`.
    pub fn heartbeat(&mut self, now: SimTime) {
        self.last_heartbeat = now;
    }

    /// Stores a replica. Overwrites silently (idempotent re-replication).
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownNode`] if the node is dead (a dead node
    /// cannot accept writes).
    pub fn store(&mut self, block: Block) -> Result<(), DfsError> {
        if !self.alive {
            return Err(DfsError::UnknownNode(self.id));
        }
        self.blocks.insert(block.id, block);
        Ok(())
    }

    /// Reads a replica, verifying its checksum.
    ///
    /// # Errors
    ///
    /// [`DfsError::BlockUnavailable`] if absent or the node is dead;
    /// [`DfsError::CorruptBlock`] if the checksum fails.
    pub fn read(&self, id: BlockId) -> Result<Bytes, DfsError> {
        if !self.alive {
            return Err(DfsError::BlockUnavailable(id));
        }
        let block = self.blocks.get(&id).ok_or(DfsError::BlockUnavailable(id))?;
        if !block.verify() {
            return Err(DfsError::CorruptBlock(id, self.id));
        }
        Ok(block.data.clone())
    }

    /// Whether a (verified or not) replica of `id` is present.
    pub fn has_block(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Removes a replica if present.
    pub fn remove(&mut self, id: BlockId) {
        self.blocks.remove(&id);
    }

    /// Ids of all stored replicas (the node's block report).
    pub fn block_report(&self) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self.blocks.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Marks the node dead (crash). Blocks remain on "disk".
    pub fn kill(&mut self) {
        self.alive = false;
    }

    /// Brings the node back; its blocks re-register via the block report.
    pub fn restore(&mut self) {
        self.alive = true;
    }

    /// Flips one byte of a stored replica — failure injection for checksum
    /// tests. Returns `true` if the block existed.
    pub fn corrupt_block(&mut self, id: BlockId) -> bool {
        if let Some(block) = self.blocks.get_mut(&id) {
            if block.data.is_empty() {
                return false;
            }
            let mut data = block.data.to_vec();
            data[0] ^= 0xFF;
            block.data = Bytes::from(data);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(id: u64, payload: &'static [u8]) -> Block {
        Block::new(BlockId(id), Bytes::from_static(payload))
    }

    #[test]
    fn store_and_read() {
        let mut dn = DataNode::new(NodeId(0));
        dn.store(blk(1, b"abc")).unwrap();
        assert_eq!(dn.read(BlockId(1)).unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(dn.block_count(), 1);
        assert_eq!(dn.used_bytes(), 3);
    }

    #[test]
    fn read_missing_block() {
        let dn = DataNode::new(NodeId(0));
        assert_eq!(
            dn.read(BlockId(9)),
            Err(DfsError::BlockUnavailable(BlockId(9)))
        );
    }

    #[test]
    fn dead_node_rejects_io() {
        let mut dn = DataNode::new(NodeId(1));
        dn.store(blk(1, b"abc")).unwrap();
        dn.kill();
        assert!(dn.read(BlockId(1)).is_err());
        assert!(dn.store(blk(2, b"x")).is_err());
        dn.restore();
        assert!(dn.read(BlockId(1)).is_ok(), "blocks survive a restart");
    }

    #[test]
    fn corruption_is_detected() {
        let mut dn = DataNode::new(NodeId(2));
        dn.store(blk(5, b"payload")).unwrap();
        assert!(dn.corrupt_block(BlockId(5)));
        assert_eq!(
            dn.read(BlockId(5)),
            Err(DfsError::CorruptBlock(BlockId(5), NodeId(2)))
        );
    }

    #[test]
    fn block_report_sorted() {
        let mut dn = DataNode::new(NodeId(3));
        dn.store(blk(3, b"c")).unwrap();
        dn.store(blk(1, b"a")).unwrap();
        dn.store(blk(2, b"b")).unwrap();
        assert_eq!(dn.block_report(), vec![BlockId(1), BlockId(2), BlockId(3)]);
    }

    #[test]
    fn heartbeat_updates() {
        let mut dn = DataNode::new(NodeId(4));
        dn.heartbeat(SimTime::from_secs(3));
        assert_eq!(dn.last_heartbeat(), SimTime::from_secs(3));
    }
}
