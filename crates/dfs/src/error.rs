//! DFS error types.

use crate::block::BlockId;
use crate::datanode::NodeId;

/// Errors returned by the distributed file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The path does not exist in the namespace.
    FileNotFound(String),
    /// The path already exists (create is exclusive).
    FileExists(String),
    /// No alive replica holds this block.
    BlockUnavailable(BlockId),
    /// A replica's data failed its checksum.
    CorruptBlock(BlockId, NodeId),
    /// Fewer alive datanodes than the replication factor.
    NotEnoughNodes {
        /// Alive nodes available.
        alive: usize,
        /// Replicas required.
        needed: usize,
    },
    /// The referenced datanode id does not exist.
    UnknownNode(NodeId),
    /// Invalid configuration (zero nodes, zero block size, ...).
    BadConfig(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::BlockUnavailable(b) => write!(f, "no alive replica for block {b}"),
            DfsError::CorruptBlock(b, n) => write!(f, "corrupt replica of block {b} on node {n}"),
            DfsError::NotEnoughNodes { alive, needed } => {
                write!(
                    f,
                    "only {alive} alive nodes for replication factor {needed}"
                )
            }
            DfsError::UnknownNode(n) => write!(f, "unknown datanode {n}"),
            DfsError::BadConfig(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DfsError::FileNotFound("/x".into());
        assert!(e.to_string().contains("/x"));
        let e = DfsError::NotEnoughNodes {
            alive: 1,
            needed: 3,
        };
        assert!(e.to_string().contains('1') && e.to_string().contains('3'));
    }
}
