//! Bulk import from legacy relational systems — the Sqoop analogue.
//!
//! The paper's software layer: *"to gather data from legacy database
//! systems, we utilize Apache Sqoop, a data import tool for bulk data
//! transfers between RDBMSs ... and HDFS"* (§II-C2). This module simulates
//! exactly that: a [`RelationalTable`] stands in for the legacy RDBMS, and
//! [`BulkImporter`] splits it on a numeric column into parallel "mapper"
//! partitions, each written as a CSV file into the DFS.

use std::collections::BTreeMap;

use crate::cluster::DfsCluster;
use crate::error::DfsError;

/// A minimal relational table: a schema and typed rows (all values stored
/// as strings, one numeric split column).
#[derive(Debug, Clone)]
pub struct RelationalTable {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl RelationalTable {
    /// Creates a table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        RelationalTable {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Inserts a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the schema.
    pub fn insert(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }
}

/// Result of one bulk import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportReport {
    /// Rows transferred.
    pub rows: usize,
    /// DFS files written (one per mapper split).
    pub files: Vec<String>,
    /// Total bytes written (before replication).
    pub bytes: usize,
}

/// Splits a relational table on a numeric column and lands each split as a
/// CSV file in the DFS — Sqoop's `--split-by` import.
#[derive(Debug, Clone)]
pub struct BulkImporter {
    mappers: usize,
}

impl BulkImporter {
    /// Creates an importer with `mappers` parallel splits.
    ///
    /// # Panics
    ///
    /// Panics if `mappers` is zero.
    pub fn new(mappers: usize) -> Self {
        assert!(mappers > 0, "need at least one mapper");
        BulkImporter { mappers }
    }

    /// Imports `table` into the DFS under `target_dir`, splitting rows on
    /// the numeric `split_by` column into `mappers` ranges (Sqoop's range
    /// partitioning). Rows whose split value does not parse go to mapper 0.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError`] on DFS write failures, or
    /// [`DfsError::BadConfig`] if the split column is unknown.
    pub fn import(
        &self,
        table: &RelationalTable,
        split_by: &str,
        dfs: &mut DfsCluster,
        target_dir: &str,
    ) -> Result<ImportReport, DfsError> {
        let split_idx = table
            .column_index(split_by)
            .ok_or_else(|| DfsError::BadConfig(format!("unknown split column {split_by}")))?;

        // Determine split ranges from min/max of the split column.
        let values: Vec<f64> = table
            .rows
            .iter()
            .map(|r| r[split_idx].parse::<f64>().unwrap_or(0.0))
            .collect();
        let (min, max) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let width = ((max - min) / self.mappers as f64).max(f64::MIN_POSITIVE);

        // Partition rows into mapper buckets, keyed for deterministic order.
        let mut buckets: BTreeMap<usize, Vec<&Vec<String>>> = BTreeMap::new();
        for (row, &v) in table.rows.iter().zip(&values) {
            let m = if table.rows.is_empty() || !v.is_finite() {
                0
            } else {
                (((v - min) / width) as usize).min(self.mappers - 1)
            };
            buckets.entry(m).or_default().push(row);
        }

        let header = table.columns.join(",");
        let mut files = Vec::new();
        let mut bytes = 0;
        for m in 0..self.mappers {
            let rows = buckets.get(&m).map(Vec::as_slice).unwrap_or(&[]);
            let mut csv = String::with_capacity(64 + rows.len() * 32);
            csv.push_str(&header);
            csv.push('\n');
            for r in rows {
                csv.push_str(&r.join(","));
                csv.push('\n');
            }
            let path = format!("{target_dir}/part-m-{m:05}.csv");
            dfs.create(&path, csv.as_bytes())?;
            bytes += csv.len();
            files.push(path);
        }
        Ok(ImportReport {
            rows: table.len(),
            files,
            bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn legacy_crime_table(n: usize) -> RelationalTable {
        let mut t = RelationalTable::new(
            "legacy_crimes",
            vec!["id".into(), "offense".into(), "district".into()],
        );
        for i in 0..n {
            t.insert(vec![
                i.to_string(),
                if i % 2 == 0 {
                    "ROBBERY".into()
                } else {
                    "ASSAULT".into()
                },
                (1 + i % 12).to_string(),
            ]);
        }
        t
    }

    #[test]
    fn import_writes_one_file_per_mapper() {
        let table = legacy_crime_table(100);
        let mut dfs = DfsCluster::new(4, 2, 1024, 1).unwrap();
        let report = BulkImporter::new(4)
            .import(&table, "id", &mut dfs, "/warehouse/legacy_crimes")
            .unwrap();
        assert_eq!(report.rows, 100);
        assert_eq!(report.files.len(), 4);
        for f in &report.files {
            assert!(dfs.read(f).is_ok());
        }
    }

    #[test]
    fn all_rows_land_exactly_once() {
        let table = legacy_crime_table(57);
        let mut dfs = DfsCluster::new(3, 2, 512, 2).unwrap();
        let report = BulkImporter::new(3)
            .import(&table, "id", &mut dfs, "/warehouse/t")
            .unwrap();
        let mut total_rows = 0;
        for f in &report.files {
            let content = String::from_utf8(dfs.read(f).unwrap()).unwrap();
            // Subtract the header line.
            total_rows += content.lines().count() - 1;
        }
        assert_eq!(total_rows, 57);
    }

    #[test]
    fn splits_are_range_partitioned() {
        let table = legacy_crime_table(100);
        let mut dfs = DfsCluster::new(3, 2, 4096, 3).unwrap();
        let report = BulkImporter::new(2)
            .import(&table, "id", &mut dfs, "/warehouse/t")
            .unwrap();
        let first = String::from_utf8(dfs.read(&report.files[0]).unwrap()).unwrap();
        let second = String::from_utf8(dfs.read(&report.files[1]).unwrap()).unwrap();
        // All ids in the first split are below every id in the second.
        let max_first: u64 = first
            .lines()
            .skip(1)
            .map(|l| l.split(',').next().unwrap().parse().unwrap())
            .max()
            .unwrap();
        let min_second: u64 = second
            .lines()
            .skip(1)
            .map(|l| l.split(',').next().unwrap().parse().unwrap())
            .min()
            .unwrap();
        assert!(max_first < min_second, "{max_first} < {min_second}");
    }

    #[test]
    fn header_preserves_schema() {
        let table = legacy_crime_table(5);
        let mut dfs = DfsCluster::new(3, 2, 512, 4).unwrap();
        let report = BulkImporter::new(1)
            .import(&table, "id", &mut dfs, "/warehouse/t")
            .unwrap();
        let content = String::from_utf8(dfs.read(&report.files[0]).unwrap()).unwrap();
        assert!(content.starts_with("id,offense,district\n"));
    }

    #[test]
    fn unknown_split_column_is_error() {
        let table = legacy_crime_table(5);
        let mut dfs = DfsCluster::new(3, 2, 512, 5).unwrap();
        let err = BulkImporter::new(2).import(&table, "nope", &mut dfs, "/w");
        assert!(matches!(err, Err(DfsError::BadConfig(_))));
    }

    #[test]
    fn empty_table_imports_headers_only() {
        let table = RelationalTable::new("empty", vec!["a".into()]);
        let mut dfs = DfsCluster::new(3, 2, 512, 6).unwrap();
        let report = BulkImporter::new(2)
            .import(&table, "a", &mut dfs, "/w")
            .unwrap();
        assert_eq!(report.rows, 0);
        assert_eq!(report.files.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = RelationalTable::new("t", vec!["a".into(), "b".into()]);
        t.insert(vec!["1".into()]);
    }
}
