//! The namenode: namespace tree and block→replica map.

use std::collections::BTreeMap;

use crate::block::BlockId;
use crate::datanode::NodeId;
use crate::error::DfsError;

/// Metadata for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Ordered blocks making up the file.
    pub blocks: Vec<BlockId>,
    /// Logical file length in bytes.
    pub len: usize,
}

/// The metadata server: file namespace plus the replica location map.
///
/// Deliberately unconcerned with data — data lives on
/// [`crate::DataNode`]s; the namenode only knows *where* replicas are,
/// exactly like HDFS.
#[derive(Debug, Clone, Default)]
pub struct NameNode {
    namespace: BTreeMap<String, FileMeta>,
    // BTreeMap, not HashMap: the re-replication scan iterates this map, and
    // repair placement must not depend on per-process hash order.
    locations: BTreeMap<BlockId, Vec<NodeId>>,
    next_block: u64,
}

impl NameNode {
    /// Creates an empty namenode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh block id.
    pub fn allocate_block(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }

    /// Registers a file with its block list.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileExists`] if the path is taken.
    pub fn create_file(&mut self, path: &str, meta: FileMeta) -> Result<(), DfsError> {
        if self.namespace.contains_key(path) {
            return Err(DfsError::FileExists(path.to_string()));
        }
        self.namespace.insert(path.to_string(), meta);
        Ok(())
    }

    /// Looks up file metadata.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if absent.
    pub fn file(&self, path: &str) -> Result<&FileMeta, DfsError> {
        self.namespace
            .get(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.namespace.contains_key(path)
    }

    /// Removes a file, returning its metadata for block reclamation.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if absent.
    pub fn remove_file(&mut self, path: &str) -> Result<FileMeta, DfsError> {
        let meta = self
            .namespace
            .remove(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        for b in &meta.blocks {
            self.locations.remove(b);
        }
        Ok(meta)
    }

    /// Appends extra blocks to an existing file.
    ///
    /// # Errors
    ///
    /// [`DfsError::FileNotFound`] if absent.
    pub fn append_blocks(
        &mut self,
        path: &str,
        blocks: &[BlockId],
        extra_len: usize,
    ) -> Result<(), DfsError> {
        let meta = self
            .namespace
            .get_mut(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        meta.blocks.extend_from_slice(blocks);
        meta.len += extra_len;
        Ok(())
    }

    /// Lists paths under a prefix, in lexicographic order.
    pub fn list(&self, prefix: &str) -> Vec<&str> {
        self.namespace
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Records that `node` holds a replica of `block`.
    pub fn add_location(&mut self, block: BlockId, node: NodeId) {
        let locs = self.locations.entry(block).or_default();
        if !locs.contains(&node) {
            locs.push(node);
        }
    }

    /// Forgets a replica location (node decommissioned or replica dropped).
    pub fn remove_location(&mut self, block: BlockId, node: NodeId) {
        if let Some(locs) = self.locations.get_mut(&block) {
            locs.retain(|&n| n != node);
        }
    }

    /// Replica locations recorded for `block` (may include dead nodes; the
    /// cluster filters by liveness).
    pub fn locations(&self, block: BlockId) -> &[NodeId] {
        self.locations.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(block, locations)` entries — used by the re-replication scan.
    pub fn all_blocks(&self) -> impl Iterator<Item = (BlockId, &[NodeId])> {
        self.locations.iter().map(|(&b, locs)| (b, locs.as_slice()))
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.namespace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut nn = NameNode::new();
        let b = nn.allocate_block();
        nn.create_file(
            "/a",
            FileMeta {
                blocks: vec![b],
                len: 10,
            },
        )
        .unwrap();
        assert_eq!(nn.file("/a").unwrap().len, 10);
        assert!(nn.exists("/a"));
        assert!(!nn.exists("/b"));
    }

    #[test]
    fn duplicate_create_fails() {
        let mut nn = NameNode::new();
        nn.create_file(
            "/a",
            FileMeta {
                blocks: vec![],
                len: 0,
            },
        )
        .unwrap();
        assert_eq!(
            nn.create_file(
                "/a",
                FileMeta {
                    blocks: vec![],
                    len: 0
                }
            ),
            Err(DfsError::FileExists("/a".into()))
        );
    }

    #[test]
    fn allocate_block_monotonic() {
        let mut nn = NameNode::new();
        let a = nn.allocate_block();
        let b = nn.allocate_block();
        assert!(b > a);
    }

    #[test]
    fn remove_clears_locations() {
        let mut nn = NameNode::new();
        let b = nn.allocate_block();
        nn.create_file(
            "/f",
            FileMeta {
                blocks: vec![b],
                len: 1,
            },
        )
        .unwrap();
        nn.add_location(b, NodeId(0));
        nn.remove_file("/f").unwrap();
        assert!(nn.locations(b).is_empty());
        assert!(!nn.exists("/f"));
    }

    #[test]
    fn list_by_prefix() {
        let mut nn = NameNode::new();
        for p in ["/videos/a", "/videos/b", "/tweets/x"] {
            nn.create_file(
                p,
                FileMeta {
                    blocks: vec![],
                    len: 0,
                },
            )
            .unwrap();
        }
        assert_eq!(nn.list("/videos/"), vec!["/videos/a", "/videos/b"]);
        assert_eq!(nn.list("/z"), Vec::<&str>::new());
    }

    #[test]
    fn location_bookkeeping_dedupes() {
        let mut nn = NameNode::new();
        let b = nn.allocate_block();
        nn.add_location(b, NodeId(1));
        nn.add_location(b, NodeId(1));
        nn.add_location(b, NodeId(2));
        assert_eq!(nn.locations(b), &[NodeId(1), NodeId(2)]);
        nn.remove_location(b, NodeId(1));
        assert_eq!(nn.locations(b), &[NodeId(2)]);
    }

    #[test]
    fn append_blocks_extends() {
        let mut nn = NameNode::new();
        let b0 = nn.allocate_block();
        nn.create_file(
            "/f",
            FileMeta {
                blocks: vec![b0],
                len: 4,
            },
        )
        .unwrap();
        let b1 = nn.allocate_block();
        nn.append_blocks("/f", &[b1], 6).unwrap();
        let meta = nn.file("/f").unwrap();
        assert_eq!(meta.blocks, vec![b0, b1]);
        assert_eq!(meta.len, 10);
    }
}
