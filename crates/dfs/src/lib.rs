//! # scdfs — HDFS-like distributed file system simulation
//!
//! The paper's software layer stores large-scale datasets in HDFS, relying on
//! its replication: *"HDFS provides reliability and availability by
//! replicating data blocks across multiple machines so, even though some
//! machines may fail, we can still access the data stored in HDFS"*
//! (§II-C2). This crate reproduces that behaviour as a deterministic
//! in-memory simulation:
//!
//! - a [`NameNode`] holding the namespace and block→replica map,
//! - [`DataNode`]s storing checksummed blocks,
//! - a [`DfsCluster`] client API (create/read/append/delete) with pipelined
//!   replica placement, failure injection, and a re-replication scan,
//! - [`import`]: bulk import from legacy relational systems (the Sqoop
//!   analogue the paper lists alongside HDFS).
//!
//! Batch-oriented whole-block access is intentional — the contrast with the
//! wide-column store's random access is measured in experiment E9.
//!
//! # Examples
//!
//! ```
//! use scdfs::DfsCluster;
//!
//! let mut dfs = DfsCluster::new(5, 3, 64 * 1024, 7)?;
//! dfs.create("/videos/cam-0001/feed.bin", &vec![0xAB; 200_000])?;
//! let data = dfs.read("/videos/cam-0001/feed.bin")?;
//! assert_eq!(data.len(), 200_000);
//!
//! // Two node failures cannot lose 3-way replicated data.
//! dfs.kill_node(0)?;
//! dfs.kill_node(1)?;
//! assert!(dfs.read("/videos/cam-0001/feed.bin").is_ok());
//! # Ok::<(), scdfs::DfsError>(())
//! ```

mod block;
mod cluster;
mod datanode;
mod error;
pub mod import;
mod namenode;

pub use block::{checksum, Block, BlockId};
pub use cluster::{
    ClusterStats, DfsCluster, RepairReport, METRIC_BLOCK_READS, METRIC_BLOCK_WRITES, METRIC_MTTR,
    METRIC_REPLICATIONS, METRIC_SCRUBBED, METRIC_WRITE_BYTES,
};
pub use datanode::{DataNode, NodeId};
pub use error::DfsError;
pub use namenode::{FileMeta, NameNode};
