//! Blocks and checksums.

use bytes::Bytes;

/// Identifier of a data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk_{:012}", self.0)
    }
}

/// A stored block: immutable payload plus its checksum, verified on read
/// (HDFS stores per-block CRCs the same way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Block identifier.
    pub id: BlockId,
    /// Immutable payload.
    pub data: Bytes,
    /// FNV-1a checksum of `data`, computed at write time.
    pub checksum: u64,
}

impl Block {
    /// Creates a block, computing its checksum.
    pub fn new(id: BlockId, data: Bytes) -> Self {
        let checksum = checksum(&data);
        Block { id, data, checksum }
    }

    /// Whether the stored data still matches the stored checksum.
    pub fn verify(&self) -> bool {
        checksum(&self.data) == self.checksum
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// FNV-1a 64-bit hash used as the block checksum.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_deterministic_and_sensitive() {
        assert_eq!(checksum(b"hello"), checksum(b"hello"));
        assert_ne!(checksum(b"hello"), checksum(b"hellp"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn block_verifies_clean_data() {
        let b = Block::new(BlockId(1), Bytes::from_static(b"payload"));
        assert!(b.verify());
        assert_eq!(b.len(), 7);
    }

    #[test]
    fn block_detects_corruption() {
        let mut b = Block::new(BlockId(2), Bytes::from_static(b"payload"));
        b.data = Bytes::from_static(b"paYload");
        assert!(!b.verify());
    }

    #[test]
    fn display_format() {
        assert_eq!(BlockId(42).to_string(), "blk_000000000042");
    }
}
