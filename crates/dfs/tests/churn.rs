//! Datanode churn under bulk import: kill `k` nodes mid-import and assert
//! the repair loop restores the replication factor, with the MTTR recorded
//! into telemetry (ISSUE satellite: churn + MTTR).

use scdfs::import::{BulkImporter, RelationalTable};
use scdfs::{DfsCluster, METRIC_MTTR};
use scfault::{FaultEvent, FaultKind, FaultPlan};
use simclock::{SimDuration, SimTime};

fn sensor_table(name: &str, rows: usize, offset: usize) -> RelationalTable {
    let mut t = RelationalTable::new(
        name,
        vec!["id".to_string(), "zone".to_string(), "reading".to_string()],
    );
    for i in 0..rows {
        let id = offset + i;
        t.insert(vec![
            id.to_string(),
            format!("zone-{}", id % 7),
            format!("{:.2}", (id as f64) * 0.37),
        ]);
    }
    t
}

#[test]
fn k_datanode_churn_mid_import_heals_to_full_replication() {
    const K: u32 = 2;
    let telemetry = sctelemetry::Telemetry::shared();
    let mut dfs = DfsCluster::new(8, 3, 1024, 99)
        .unwrap()
        .with_telemetry(telemetry.handle());
    let importer = BulkImporter::new(4);

    // First half of the import lands while the cluster is healthy.
    let a = importer
        .import(
            &sensor_table("readings_a", 400, 0),
            "id",
            &mut dfs,
            "/import/a",
        )
        .unwrap();
    assert_eq!(a.files.len(), 4);

    // Churn: k datanodes crash mid-import.
    let crash_at = SimTime::from_secs(1);
    for node in 0..K {
        assert!(dfs.apply_fault(&FaultEvent {
            at: crash_at,
            kind: FaultKind::NodeCrash { node },
        }));
    }
    let degraded = dfs.stats();
    assert!(degraded.under_replicated > 0, "churn left blocks degraded");
    assert_eq!(degraded.alive_nodes, 6);

    // Second half of the import continues against the degraded cluster —
    // placement must route around the dead nodes.
    let b = importer
        .import(
            &sensor_table("readings_b", 400, 400),
            "id",
            &mut dfs,
            "/import/b",
        )
        .unwrap();
    assert_eq!(b.files.len(), 4);

    // The repair loop (empty plan: no further faults) re-replicates and
    // measures MTTR for the open outage episode.
    let report = dfs.run_fault_plan(
        &FaultPlan::empty(),
        SimDuration::from_secs(1),
        SimDuration::from_secs(10),
    );
    assert_eq!(report.repairs, 1, "one outage episode healed");
    assert!(report.replicas_repaired > 0);
    assert!(!report.unrepaired_at_end);

    // Every block is back at the replication factor, counting only alive
    // holders.
    for (block, locs) in dfs.namenode().all_blocks() {
        let alive = locs
            .iter()
            .filter(|n| dfs.datanode(**n).is_some_and(|d| d.is_alive()))
            .count();
        assert!(
            alive >= dfs.replication(),
            "block {block} has {alive} alive replicas"
        );
    }
    assert_eq!(report.final_stats.under_replicated, 0);
    assert_eq!(report.final_stats.lost, 0);

    // Imported data survives the churn end-to-end.
    for path in a.files.iter().chain(&b.files) {
        assert!(dfs.read(path).is_ok(), "{path} readable after churn");
    }

    // MTTR landed in telemetry: one histogram sample, bounded by the repair
    // horizon.
    let registry = telemetry.registry();
    let entry = registry
        .get(METRIC_MTTR)
        .expect("MTTR histogram registered");
    let snap = entry.as_histogram().unwrap().snapshot();
    assert_eq!(snap.count, 1);
    assert!(
        snap.max <= 10.0,
        "MTTR {} within the repair horizon",
        snap.max
    );
}
