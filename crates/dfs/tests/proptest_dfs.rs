//! Property tests for DFS invariants.

use proptest::prelude::*;
use scdfs::DfsCluster;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any file written must read back identically, for arbitrary contents
    /// and block sizes.
    #[test]
    fn roundtrip_any_payload(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        block_size in 1usize..512,
        seed in any::<u64>(),
    ) {
        let mut dfs = DfsCluster::new(4, 2, block_size, seed).unwrap();
        dfs.create("/p", &data).unwrap();
        prop_assert_eq!(dfs.read("/p").unwrap(), data);
    }

    /// With replication factor r, any set of r-1 node failures leaves every
    /// file readable.
    #[test]
    fn tolerates_r_minus_one_failures(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        kill in proptest::collection::hash_set(0u32..6, 0..=2),
        seed in any::<u64>(),
    ) {
        let mut dfs = DfsCluster::new(6, 3, 256, seed).unwrap();
        dfs.create("/p", &data).unwrap();
        for k in kill {
            dfs.kill_node(k).unwrap();
        }
        prop_assert_eq!(dfs.read("/p").unwrap(), data);
    }

    /// After killing one node and re-replicating, no block is
    /// under-replicated and the cluster survives two further failures.
    #[test]
    fn re_replication_restores_fault_tolerance(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        first_kill in 0u32..6,
        seed in any::<u64>(),
    ) {
        let mut dfs = DfsCluster::new(6, 3, 256, seed).unwrap();
        dfs.create("/p", &data).unwrap();
        dfs.kill_node(first_kill).unwrap();
        dfs.re_replicate();
        prop_assert_eq!(dfs.stats().under_replicated, 0);
        // Kill two more distinct alive nodes.
        let mut killed = 0;
        for n in 0..6u32 {
            if n != first_kill && killed < 2 {
                dfs.kill_node(n).unwrap();
                killed += 1;
            }
        }
        prop_assert_eq!(dfs.read("/p").unwrap(), data);
    }

    /// Appends concatenate: read(create(a) + append(b)) == a ++ b.
    #[test]
    fn append_concatenates(
        a in proptest::collection::vec(any::<u8>(), 0..1024),
        b in proptest::collection::vec(any::<u8>(), 0..1024),
        block_size in 1usize..300,
    ) {
        let mut dfs = DfsCluster::new(4, 2, block_size, 42).unwrap();
        dfs.create("/p", &a).unwrap();
        dfs.append("/p", &b).unwrap();
        let mut expect = a;
        expect.extend_from_slice(&b);
        prop_assert_eq!(dfs.read("/p").unwrap(), expect);
    }

    /// Stats never report more under-replicated + lost blocks than total
    /// blocks, and used bytes equal replication × payload while healthy.
    #[test]
    fn stats_are_consistent(
        files in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..512), 1..6),
        seed in any::<u64>(),
    ) {
        let mut dfs = DfsCluster::new(5, 2, 128, seed).unwrap();
        let mut total = 0usize;
        for (i, data) in files.iter().enumerate() {
            dfs.create(&format!("/f{i}"), data).unwrap();
            total += data.len();
        }
        let s = dfs.stats();
        prop_assert_eq!(s.files, files.len());
        prop_assert!(s.under_replicated + s.lost <= s.blocks);
        prop_assert_eq!(s.under_replicated, 0);
        prop_assert_eq!(s.used_bytes, total * 2);
    }
}
