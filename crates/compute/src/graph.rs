//! Pregel-style iterative graph processing — the GraphX analogue.
//!
//! The paper's software layer "also supports other types of analytical
//! workloads such as streaming processing, geospatial processing, and
//! graph-based processing" (§II-C2, citing GraphX/GraphMap/GraphTwist).
//! This module provides a vertex-centric bulk-synchronous engine
//! ([`pregel`]) plus the two canonical algorithms smart-city graph analytics
//! need: PageRank (influence ranking of criminal-network members) and
//! connected components (crew discovery).

use std::collections::HashMap;

/// A directed property graph with `V` vertex values stored per vertex id.
#[derive(Debug, Clone)]
pub struct PropertyGraph<V> {
    vertices: HashMap<u64, V>,
    // Adjacency: src → [(dst, weight)].
    edges: HashMap<u64, Vec<(u64, f64)>>,
    edge_count: usize,
}

impl<V> PropertyGraph<V> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        PropertyGraph {
            vertices: HashMap::new(),
            edges: HashMap::new(),
            edge_count: 0,
        }
    }

    /// Adds (or replaces) a vertex.
    pub fn add_vertex(&mut self, id: u64, value: V) {
        self.vertices.insert(id, value);
    }

    /// Adds a directed, weighted edge. Endpoints must already exist.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is missing.
    pub fn add_edge(&mut self, src: u64, dst: u64, weight: f64) {
        assert!(
            self.vertices.contains_key(&src),
            "unknown source vertex {src}"
        );
        assert!(
            self.vertices.contains_key(&dst),
            "unknown destination vertex {dst}"
        );
        self.edges.entry(src).or_default().push((dst, weight));
        self.edge_count += 1;
    }

    /// Adds an undirected edge (two directed edges).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is missing.
    pub fn add_undirected_edge(&mut self, a: u64, b: u64, weight: f64) {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight);
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The value of a vertex.
    pub fn vertex(&self, id: u64) -> Option<&V> {
        self.vertices.get(&id)
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, id: u64) -> usize {
        self.edges.get(&id).map_or(0, Vec::len)
    }

    /// Iterates vertex ids in arbitrary order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.vertices.keys().copied()
    }

    /// Out-edges of a vertex.
    pub fn out_edges(&self, id: u64) -> &[(u64, f64)] {
        self.edges.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }
}

impl<V> Default for PropertyGraph<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// One superstep's view of a vertex inside [`pregel`].
#[derive(Debug)]
pub struct VertexContext<'a, S, M> {
    /// The vertex id.
    pub id: u64,
    /// Mutable vertex state.
    pub state: &'a mut S,
    /// Messages received this superstep.
    pub messages: &'a [M],
    /// Current superstep index (0-based).
    pub superstep: usize,
    outbox: &'a mut Vec<(u64, M)>,
    halted: &'a mut bool,
}

impl<S, M> VertexContext<'_, S, M> {
    /// Sends a message to `dst` for the next superstep.
    pub fn send(&mut self, dst: u64, message: M) {
        self.outbox.push((dst, message));
    }

    /// Votes to halt; the vertex stays halted until a message wakes it.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }
}

/// Runs a bulk-synchronous vertex program until every vertex halts with no
/// in-flight messages, or `max_supersteps` elapse. Returns the final states
/// and the number of supersteps executed.
///
/// The program receives a [`VertexContext`] per active vertex per superstep.
/// All vertices are active in superstep 0.
pub fn pregel<V, S, M, I, P>(
    graph: &PropertyGraph<V>,
    init: I,
    mut program: P,
    max_supersteps: usize,
) -> (HashMap<u64, S>, usize)
where
    I: Fn(u64, &V) -> S,
    P: FnMut(&PropertyGraph<V>, &mut VertexContext<'_, S, M>),
{
    let mut states: HashMap<u64, S> = graph
        .vertices
        .iter()
        .map(|(&id, v)| (id, init(id, v)))
        .collect();
    let mut halted: HashMap<u64, bool> = graph.vertex_ids().map(|id| (id, false)).collect();
    let mut inbox: HashMap<u64, Vec<M>> = HashMap::new();

    let mut steps = 0;
    for superstep in 0..max_supersteps {
        // Deterministic order: sorted vertex ids.
        let mut ids: Vec<u64> = graph.vertex_ids().collect();
        ids.sort_unstable();

        let mut any_active = false;
        let mut next_inbox: HashMap<u64, Vec<M>> = HashMap::new();
        for id in ids {
            let msgs = inbox.remove(&id).unwrap_or_default();
            let vertex_halted = halted.get(&id).copied().unwrap_or(false);
            if vertex_halted && msgs.is_empty() {
                continue;
            }
            any_active = true;
            let mut outbox: Vec<(u64, M)> = Vec::new();
            let mut halt_flag = false;
            {
                let state = states.get_mut(&id).expect("state initialized");
                let mut ctx = VertexContext {
                    id,
                    state,
                    messages: &msgs,
                    superstep,
                    outbox: &mut outbox,
                    halted: &mut halt_flag,
                };
                program(graph, &mut ctx);
            }
            halted.insert(id, halt_flag);
            for (dst, m) in outbox {
                next_inbox.entry(dst).or_default().push(m);
            }
        }
        inbox = next_inbox;
        steps = superstep + 1;
        if !any_active {
            steps = superstep; // nothing ran this superstep
            break;
        }
        if inbox.is_empty() && halted.values().all(|&h| h) {
            break;
        }
    }
    (states, steps)
}

/// PageRank with damping 0.85 over out-edge counts. Returns per-vertex rank
/// summing (approximately) to the vertex count.
pub fn pagerank<V>(graph: &PropertyGraph<V>, iterations: usize) -> HashMap<u64, f64> {
    let damping = 0.85;
    #[derive(Debug)]
    struct Rank(f64);
    let (states, _) = pregel::<V, Rank, f64, _, _>(
        graph,
        |_, _| Rank(1.0),
        |g, ctx| {
            if ctx.superstep > 0 {
                let incoming: f64 = ctx.messages.iter().sum();
                ctx.state.0 = (1.0 - damping) + damping * incoming;
            }
            if ctx.superstep < iterations {
                let degree = g.out_degree(ctx.id);
                if degree > 0 {
                    let share = ctx.state.0 / degree as f64;
                    let targets: Vec<u64> = g.out_edges(ctx.id).iter().map(|&(d, _)| d).collect();
                    for dst in targets {
                        ctx.send(dst, share);
                    }
                }
            } else {
                ctx.vote_to_halt();
            }
        },
        iterations + 2,
    );
    states.into_iter().map(|(id, r)| (id, r.0)).collect()
}

/// Connected components via label propagation on the *undirected* view of
/// the graph (messages travel along out-edges; callers building co-offense
/// graphs should use [`PropertyGraph::add_undirected_edge`]). Returns the
/// minimum vertex id in each vertex's component.
pub fn connected_components<V>(graph: &PropertyGraph<V>) -> HashMap<u64, u64> {
    #[derive(Debug)]
    struct Label(u64);
    let (states, _) = pregel::<V, Label, u64, _, _>(
        graph,
        |id, _| Label(id),
        |g, ctx| {
            let best_incoming = ctx.messages.iter().copied().min();
            let mut changed = ctx.superstep == 0;
            if let Some(m) = best_incoming {
                if m < ctx.state.0 {
                    ctx.state.0 = m;
                    changed = true;
                }
            }
            if changed {
                let label = ctx.state.0;
                let targets: Vec<u64> = g.out_edges(ctx.id).iter().map(|&(d, _)| d).collect();
                for dst in targets {
                    ctx.send(dst, label);
                }
            }
            ctx.vote_to_halt();
        },
        graph.vertex_count() + 2,
    );
    states.into_iter().map(|(id, l)| (id, l.0)).collect()
}

/// Single-source shortest paths over edge weights (non-negative). Returns
/// distances; unreachable vertices are absent.
pub fn shortest_paths<V>(graph: &PropertyGraph<V>, source: u64) -> HashMap<u64, f64> {
    #[derive(Debug)]
    struct Dist(f64);
    let (states, _) = pregel::<V, Dist, f64, _, _>(
        graph,
        |id, _| Dist(if id == source { 0.0 } else { f64::INFINITY }),
        |g, ctx| {
            let incoming = ctx.messages.iter().copied().fold(f64::INFINITY, f64::min);
            let seeded = ctx.superstep == 0 && ctx.id == source;
            let improved = incoming < ctx.state.0;
            if improved {
                ctx.state.0 = incoming;
            }
            if seeded || improved {
                let base = ctx.state.0;
                let edges: Vec<(u64, f64)> = g.out_edges(ctx.id).to_vec();
                for (dst, w) in edges {
                    ctx.send(dst, base + w);
                }
            }
            ctx.vote_to_halt();
        },
        graph.vertex_count() + 2,
    );
    states
        .into_iter()
        .filter(|(_, d)| d.0.is_finite())
        .map(|(id, d)| (id, d.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: u64) -> PropertyGraph<()> {
        let mut g = PropertyGraph::new();
        for i in 0..n {
            g.add_vertex(i, ());
        }
        for i in 0..n - 1 {
            g.add_undirected_edge(i, i + 1, 1.0);
        }
        g
    }

    #[test]
    fn graph_basics() {
        let g = line_graph(4);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 6); // 3 undirected = 6 directed
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn edge_requires_vertices() {
        let mut g: PropertyGraph<()> = PropertyGraph::new();
        g.add_edge(1, 2, 1.0);
    }

    #[test]
    fn pagerank_sums_to_vertex_count() {
        let g = line_graph(5);
        let ranks = pagerank(&g, 30);
        let total: f64 = ranks.values().sum();
        assert!((total - 5.0).abs() < 0.1, "total {total}");
    }

    #[test]
    fn pagerank_hub_ranks_highest() {
        // Star: everyone points at vertex 0.
        let mut g = PropertyGraph::new();
        for i in 0..6u64 {
            g.add_vertex(i, ());
        }
        for i in 1..6u64 {
            g.add_edge(i, 0, 1.0);
        }
        let ranks = pagerank(&g, 20);
        let hub = ranks[&0];
        for i in 1..6u64 {
            assert!(hub > ranks[&i] * 2.0, "hub {hub} vs {}", ranks[&i]);
        }
    }

    #[test]
    fn connected_components_two_islands() {
        let mut g = PropertyGraph::new();
        for i in 0..6u64 {
            g.add_vertex(i, ());
        }
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        g.add_undirected_edge(4, 5, 1.0);
        let cc = connected_components(&g);
        assert_eq!(cc[&0], 0);
        assert_eq!(cc[&1], 0);
        assert_eq!(cc[&2], 0);
        assert_eq!(cc[&3], 3, "isolated vertex is its own component");
        assert_eq!(cc[&4], 4);
        assert_eq!(cc[&5], 4);
    }

    #[test]
    fn connected_components_long_chain() {
        // Label must propagate the full length of the chain.
        let g = line_graph(20);
        let cc = connected_components(&g);
        assert!(cc.values().all(|&l| l == 0));
    }

    #[test]
    fn shortest_paths_line() {
        let g = line_graph(5);
        let d = shortest_paths(&g, 0);
        for i in 0..5u64 {
            assert!((d[&i] - i as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn shortest_paths_weighted_shortcut() {
        let mut g = PropertyGraph::new();
        for i in 0..4u64 {
            g.add_vertex(i, ());
        }
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(0, 2, 5.0);
        g.add_edge(2, 3, 0.5);
        let d = shortest_paths(&g, 0);
        assert!((d[&3] - 2.0).abs() < 1e-9, "via 1: 1+1 < 5+0.5");
    }

    #[test]
    fn shortest_paths_unreachable_absent() {
        let mut g = PropertyGraph::new();
        g.add_vertex(0, ());
        g.add_vertex(9, ());
        let d = shortest_paths(&g, 0);
        assert!(d.contains_key(&0));
        assert!(!d.contains_key(&9));
    }

    #[test]
    fn pregel_terminates_when_all_halt() {
        let g = line_graph(3);
        let (_, steps) =
            pregel::<(), u32, (), _, _>(&g, |_, _| 0, |_, ctx| ctx.vote_to_halt(), 100);
        assert!(steps <= 1, "all halt in the first superstep, took {steps}");
    }
}
