//! Data mining on the dataflow engine — the Spark MLlib analogue (§II-C3).
//!
//! Algorithms run *through* [`Dataset`] map/reduce operations, so the k-means
//! used by the crime hot-spot experiment (E10) genuinely exercises the
//! distributed engine: assignment is a narrow map, centroid updates are a
//! `reduce_by_key` shuffle.

use scpar::ScparConfig;
use sctelemetry::{ActivityScope, TelemetryHandle, WorkDelta};
use simclock::SeededRng;

use crate::dataflow::Dataset;

/// Work-accounting kernel of the k-means assignment step (distances).
pub const KERNEL_KMEANS_ASSIGN: &str = "compute/kmeans/assign";
/// Work-accounting kernel of the k-means centroid-update step.
pub const KERNEL_KMEANS_UPDATE: &str = "compute/kmeans/update";

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    /// Final centroids, one per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl KMeansModel {
    /// Index of the centroid nearest to `point`.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest(point, &self.centroids).0
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    centroids
        .iter()
        .enumerate()
        .map(|(i, c)| (i, sq_dist(p, c)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one centroid")
}

/// Distributed Lloyd's k-means with k-means++ initialization.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points, or if points have
/// inconsistent dimensionality.
///
/// # Examples
///
/// ```
/// use sccompute::dataflow::Dataset;
/// use sccompute::mllib::kmeans;
///
/// let pts = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 5.0]];
/// let ds = Dataset::from_vec(pts, 2);
/// let model = kmeans(&ds, 2, 10, 42);
/// assert_eq!(model.centroids.len(), 2);
/// assert!(model.inertia < 0.1);
/// ```
pub fn kmeans(data: &Dataset<Vec<f64>>, k: usize, max_iters: usize, seed: u64) -> KMeansModel {
    let points = data.collect();
    assert!(k > 0 && k <= points.len(), "k out of range");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensions"
    );
    let mut rng = SeededRng::new(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = vec![points[rng.index(points.len())].clone()];
    while centroids.len() < k {
        let weights: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = weights.iter().sum();
        let idx = if total <= 0.0 {
            rng.index(points.len())
        } else {
            rng.weighted_index(&weights)
        };
        centroids.push(points[idx].clone());
    }

    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let current = centroids.clone();
        // Assignment (narrow) + centroid aggregation (shuffle).
        let sums = data
            .map(move |p| {
                let (c, _) = nearest(p, &current);
                (c, (p.clone(), 1u64))
            })
            .reduce_by_key(|(mut sa, ca), (sb, cb)| {
                for (a, b) in sa.iter_mut().zip(&sb) {
                    *a += b;
                }
                (sa, ca + cb)
            })
            .collect();
        let mut next = centroids.clone();
        for (c, (sum, count)) in sums {
            if count > 0 {
                next[c] = sum.iter().map(|s| s / count as f64).collect();
            }
        }
        let moved: f64 = centroids
            .iter()
            .zip(&next)
            .map(|(a, b)| sq_dist(a, b))
            .sum();
        centroids = next;
        if moved < 1e-12 {
            break;
        }
    }

    let inertia = points.iter().map(|p| nearest(p, &centroids).1).sum();
    KMeansModel {
        centroids,
        inertia,
        iterations,
    }
}

/// Points per assignment chunk in [`kmeans_par`]. Fixed (a function of the
/// input only, never of the thread count) so partial sums fold identically
/// for any pool size.
pub const KMEANS_CHUNK_POINTS: usize = 256;

/// Shared-memory Lloyd's k-means with the assignment step fanned out over
/// the `scpar` worker pool.
///
/// Unlike [`kmeans`], which runs *through* the dataflow engine (and is the
/// variant that exercises shuffles), this operates on an in-memory slice:
/// each iteration splits the points into fixed [`KMEANS_CHUNK_POINTS`]-sized
/// chunks, computes per-chunk centroid sums in parallel, and folds the
/// partials in chunk order — so centroids are bit-identical for any thread
/// count, including serial. Seeding (k-means++) matches [`kmeans`] exactly.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points, or if points have
/// inconsistent dimensionality.
pub fn kmeans_par(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    seed: u64,
    cfg: &ScparConfig,
) -> KMeansModel {
    kmeans_ctx(
        points,
        k,
        max_iters,
        seed,
        &scneural::exec::ExecCtx::serial().with_par(*cfg),
    )
}

/// Deprecated alias for [`kmeans_ctx`].
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points, or if points have
/// inconsistent dimensionality.
#[deprecated(
    since = "0.2.0",
    note = "use `kmeans_ctx(points, k, max_iters, seed, &ExecCtx)` instead"
)]
pub fn kmeans_par_with(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    seed: u64,
    cfg: &ScparConfig,
    telemetry: &TelemetryHandle,
) -> KMeansModel {
    kmeans_ctx(
        points,
        k,
        max_iters,
        seed,
        &scneural::exec::ExecCtx::serial()
            .with_par(*cfg)
            .with_telemetry(telemetry.clone()),
    )
}

/// [`kmeans_par`] under an [`ExecCtx`](scneural::exec::ExecCtx), with
/// per-step work accounting.
///
/// Records the assignment step (all point-centroid distances, plus the
/// final inertia pass) under [`KERNEL_KMEANS_ASSIGN`] and the centroid
/// update (partial-sum accumulation, fold, and division) under
/// [`KERNEL_KMEANS_UPDATE`], one delta per iteration. Iteration counts and
/// the closed-form work formulas depend only on the input, so the
/// recorded totals are identical at any thread count.
///
/// When the context carries an enabled `sctune::Tuner`, each scpar task
/// covers the tuned number of [`KMEANS_CHUNK_POINTS`]-point accumulation
/// *cells* (default one). Partial sums are always computed per cell and
/// folded in global cell order, so the floating-point reduction tree — and
/// therefore every centroid bit — is identical for any task granularity,
/// any thread count, and tuning on or off. Work accounting likewise stays
/// pinned to the nominal per-cell formulas.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points, or if points have
/// inconsistent dimensionality.
pub fn kmeans_ctx(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    seed: u64,
    ctx: &scneural::exec::ExecCtx,
) -> KMeansModel {
    let (cfg, telemetry) = (ctx.par(), ctx.telemetry());
    let _activity = ActivityScope::enter("compute/kmeans");
    assert!(k > 0 && k <= points.len(), "k out of range");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensions"
    );
    let mut rng = SeededRng::new(seed);

    // k-means++ seeding, identical to the dataflow variant.
    let mut centroids: Vec<Vec<f64>> = vec![points[rng.index(points.len())].clone()];
    while centroids.len() < k {
        let weights: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = weights.iter().sum();
        let idx = if total <= 0.0 {
            rng.index(points.len())
        } else {
            rng.weighted_index(&weights)
        };
        centroids.push(points[idx].clone());
    }

    let n = points.len() as u64;
    let chunks = points.len().div_ceil(KMEANS_CHUNK_POINTS) as u64;
    let (kd, dimd) = (k as u64, dim as u64);
    // Tuned task granularity: whole accumulation cells per scpar task.
    // Schedule-only — the per-cell fold below is what fixes the bits.
    let cells_per_task = ctx
        .tuner()
        .kmeans_cells_per_task(points.len(), dim, k, cfg.threads(), 1)
        .max(1);
    let task_points = cells_per_task * KMEANS_CHUNK_POINTS;
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        if telemetry.is_enabled() {
            // One delta per iteration, closed-form in (n, k, dim, chunks):
            // distances are 3 flops per dimension per point-centroid pair;
            // the update accumulates every point into its centroid sum,
            // folds the fixed chunk partials, and divides.
            telemetry.work(
                KERNEL_KMEANS_ASSIGN,
                WorkDelta::flops(3 * n * kd * dimd)
                    .with_bytes(8 * dimd * (n + kd))
                    .with_items(n),
            );
            telemetry.work(
                KERNEL_KMEANS_UPDATE,
                WorkDelta::flops(n * dimd + chunks * kd * dimd + kd * dimd).with_items(kd),
            );
        }
        let current = &centroids;
        // Each task accumulates per fixed-size cell; the fold walks cells
        // in global order, so the reduction tree is independent of
        // `cells_per_task` and of the thread count.
        let partials = scpar::par_map_chunks(cfg, points, task_points, |_ci, task| {
            task.chunks(KMEANS_CHUNK_POINTS)
                .map(|cell| {
                    let mut sums = vec![vec![0.0f64; dim]; k];
                    let mut counts = vec![0u64; k];
                    for p in cell {
                        let (c, _) = nearest(p, current);
                        for (a, b) in sums[c].iter_mut().zip(p) {
                            *a += b;
                        }
                        counts[c] += 1;
                    }
                    (sums, counts)
                })
                .collect::<Vec<_>>()
        });
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0u64; k];
        for (ps, pc) in partials.into_iter().flatten() {
            for (acc, part) in sums.iter_mut().zip(&ps) {
                for (a, b) in acc.iter_mut().zip(part) {
                    *a += b;
                }
            }
            for (a, b) in counts.iter_mut().zip(&pc) {
                *a += b;
            }
        }
        let mut next = centroids.clone();
        for c in 0..k {
            if counts[c] > 0 {
                next[c] = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            }
        }
        let moved: f64 = centroids
            .iter()
            .zip(&next)
            .map(|(a, b)| sq_dist(a, b))
            .sum();
        centroids = next;
        if moved < 1e-12 {
            break;
        }
    }

    if telemetry.is_enabled() {
        // Final inertia pass is one more full assignment sweep.
        telemetry.work(
            KERNEL_KMEANS_ASSIGN,
            WorkDelta::flops(3 * n * kd * dimd)
                .with_bytes(8 * dimd * (n + kd))
                .with_items(n),
        );
    }
    let inertia = scpar::par_map_chunks(cfg, points, task_points, |_ci, task| {
        task.chunks(KMEANS_CHUNK_POINTS)
            .map(|cell| cell.iter().map(|p| nearest(p, &centroids).1).sum::<f64>())
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .sum();
    KMeansModel {
        centroids,
        inertia,
        iterations,
    }
}

/// A fitted logistic-regression model (binary).
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LogisticModel {
    /// P(y = 1 | x).
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let z: f64 = self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard 0/1 prediction at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> u8 {
        u8::from(self.predict_proba(x) >= 0.5)
    }
}

/// Full-batch gradient-descent logistic regression over a distributed
/// dataset of `(features, label)` pairs. Gradients are computed with a
/// map + reduce per epoch.
///
/// # Panics
///
/// Panics if the dataset is empty or features are inconsistent.
pub fn logistic_regression(
    data: &Dataset<(Vec<f64>, u8)>,
    lr: f64,
    epochs: usize,
) -> LogisticModel {
    let n = data.count();
    assert!(n > 0, "empty training set");
    let dim = data.collect()[0].0.len();
    let mut weights = vec![0.0f64; dim];
    let mut bias = 0.0f64;
    for _ in 0..epochs {
        let w = weights.clone();
        let b = bias;
        // Each record contributes (gradient_w, gradient_b) — summed by reduce.
        let (gw, gb) = data
            .map(move |(x, y)| {
                let z: f64 = b + w.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - *y as f64;
                let gw: Vec<f64> = x.iter().map(|v| err * v).collect();
                (gw, err)
            })
            .reduce((vec![0.0; dim], 0.0), |(mut ga, ba), (gb, bb)| {
                for (a, b) in ga.iter_mut().zip(&gb) {
                    *a += b;
                }
                (ga, ba + bb)
            });
        for (w, g) in weights.iter_mut().zip(&gw) {
            *w -= lr * g / n as f64;
        }
        bias -= lr * gb / n as f64;
    }
    LogisticModel { weights, bias }
}

/// A fitted ordinary-least-squares style linear model (via gradient descent).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LinearModel {
    /// Predicted value.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

/// Gradient-descent linear regression over `(features, target)` pairs.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn linear_regression(data: &Dataset<(Vec<f64>, f64)>, lr: f64, epochs: usize) -> LinearModel {
    let n = data.count();
    assert!(n > 0, "empty training set");
    let dim = data.collect()[0].0.len();
    let mut weights = vec![0.0f64; dim];
    let mut bias = 0.0f64;
    for _ in 0..epochs {
        let w = weights.clone();
        let b = bias;
        let (gw, gb) = data
            .map(move |(x, y)| {
                let err = b + w.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() - y;
                let gw: Vec<f64> = x.iter().map(|v| err * v).collect();
                (gw, err)
            })
            .reduce((vec![0.0; dim], 0.0), |(mut ga, ba), (gb, bb)| {
                for (a, b) in ga.iter_mut().zip(&gb) {
                    *a += b;
                }
                (ga, ba + bb)
            });
        for (w, g) in weights.iter_mut().zip(&gw) {
            *w -= 2.0 * lr * g / n as f64;
        }
        bias -= 2.0 * lr * gb / n as f64;
    }
    LinearModel { weights, bias }
}

/// A fitted Gaussian naive-Bayes classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesModel {
    /// Per-class prior probabilities.
    pub priors: Vec<f64>,
    /// Per-class, per-feature means.
    pub means: Vec<Vec<f64>>,
    /// Per-class, per-feature variances (floored for stability).
    pub variances: Vec<Vec<f64>>,
}

impl NaiveBayesModel {
    /// Most likely class for `x`.
    pub fn predict(&self, x: &[f64]) -> usize {
        (0..self.priors.len())
            .map(|c| {
                let mut log_p = self.priors[c].max(1e-12).ln();
                for (j, &v) in x.iter().enumerate() {
                    let mean = self.means[c][j];
                    let var = self.variances[c][j];
                    log_p += -0.5 * ((v - mean) * (v - mean) / var + var.ln());
                }
                (c, log_p)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c)
            .expect("at least one class")
    }
}

/// Fits Gaussian naive Bayes over `(features, class)` pairs with classes in
/// `0..num_classes`, aggregating via the dataflow engine.
///
/// # Panics
///
/// Panics if the dataset is empty or `num_classes` is zero.
pub fn naive_bayes(data: &Dataset<(Vec<f64>, usize)>, num_classes: usize) -> NaiveBayesModel {
    let n = data.count();
    assert!(n > 0 && num_classes > 0, "empty training set or no classes");
    let dim = data.collect()[0].0.len();
    // (class) -> (count, sum, sum_sq)
    let per_class = data
        .map(|(x, c)| {
            let sq: Vec<f64> = x.iter().map(|v| v * v).collect();
            (*c, (1u64, x.clone(), sq))
        })
        .reduce_by_key(|(ca, mut sa, mut qa), (cb, sb, qb)| {
            for (a, b) in sa.iter_mut().zip(&sb) {
                *a += b;
            }
            for (a, b) in qa.iter_mut().zip(&qb) {
                *a += b;
            }
            (ca + cb, sa, qa)
        })
        .collect();

    let mut priors = vec![0.0; num_classes];
    let mut means = vec![vec![0.0; dim]; num_classes];
    let mut variances = vec![vec![1.0; dim]; num_classes];
    for (c, (count, sum, sum_sq)) in per_class {
        assert!(c < num_classes, "class {c} out of range");
        priors[c] = count as f64 / n as f64;
        for j in 0..dim {
            let mean = sum[j] / count as f64;
            means[c][j] = mean;
            variances[c][j] = (sum_sq[j] / count as f64 - mean * mean).max(1e-6);
        }
    }
    NaiveBayesModel {
        priors,
        means,
        variances,
    }
}

/// Per-feature standardization fitted on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    /// Feature means.
    pub means: Vec<f64>,
    /// Feature standard deviations (floored).
    pub stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits on a dataset of feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset<Vec<f64>>) -> Self {
        let n = data.count();
        assert!(n > 0, "empty dataset");
        let dim = data.collect()[0].len();
        let (sum, sum_sq) = data
            .map(|x| {
                let sq: Vec<f64> = x.iter().map(|v| v * v).collect();
                (x.clone(), sq)
            })
            .reduce(
                (vec![0.0; dim], vec![0.0; dim]),
                |(mut sa, mut qa), (sb, qb)| {
                    for (a, b) in sa.iter_mut().zip(&sb) {
                        *a += b;
                    }
                    for (a, b) in qa.iter_mut().zip(&qb) {
                        *a += b;
                    }
                    (sa, qa)
                },
            );
        let means: Vec<f64> = sum.iter().map(|s| s / n as f64).collect();
        let stds: Vec<f64> = sum_sq
            .iter()
            .zip(&means)
            .map(|(q, m)| ((q / n as f64 - m * m).max(1e-12)).sqrt())
            .collect();
        StandardScaler { means, stds }
    }

    /// Standardizes one vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }
}

/// Deterministic shuffled train/test split.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1`.
pub fn train_test_split<T: Clone>(data: &[T], test_fraction: f64, seed: u64) -> (Vec<T>, Vec<T>) {
    assert!(
        (0.0..1.0).contains(&test_fraction) && test_fraction > 0.0,
        "fraction in (0,1)"
    );
    let mut idx: Vec<usize> = (0..data.len()).collect();
    SeededRng::new(seed).shuffle(&mut idx);
    let test_n = ((data.len() as f64) * test_fraction).round() as usize;
    let test: Vec<T> = idx[..test_n].iter().map(|&i| data[i].clone()).collect();
    let train: Vec<T> = idx[test_n..].iter().map(|&i| data[i].clone()).collect();
    (train, test)
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};

    use super::*;

    fn blobs(n_per: usize, centers: &[(f64, f64)], seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SeededRng::new(seed);
        let mut out = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                out.push(vec![rng.gaussian(cx, 0.3), rng.gaussian(cy, 0.3)]);
            }
        }
        out
    }

    #[test]
    fn kmeans_recovers_centers() {
        let pts = blobs(50, &[(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)], 1);
        let ds = Dataset::from_vec(pts, 4);
        let model = kmeans(&ds, 3, 50, 2);
        // Every true center is close to a learned centroid.
        for (cx, cy) in [(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)] {
            let min = model
                .centroids
                .iter()
                .map(|c| sq_dist(c, &[cx, cy]))
                .fold(f64::INFINITY, f64::min);
            assert!(min < 0.25, "center ({cx},{cy}) missed: {min}");
        }
    }

    #[test]
    fn kmeans_inertia_decreases_with_k() {
        let pts = blobs(40, &[(0.0, 0.0), (6.0, 0.0), (0.0, 6.0), (6.0, 6.0)], 3);
        let ds = Dataset::from_vec(pts, 4);
        let i1 = kmeans(&ds, 1, 30, 4).inertia;
        let i2 = kmeans(&ds, 2, 30, 4).inertia;
        let i4 = kmeans(&ds, 4, 30, 4).inertia;
        assert!(i1 > i2 && i2 > i4, "{i1} > {i2} > {i4}");
    }

    #[test]
    fn kmeans_predict_assigns_nearest() {
        let pts = blobs(30, &[(0.0, 0.0), (10.0, 10.0)], 5);
        let ds = Dataset::from_vec(pts, 2);
        let model = kmeans(&ds, 2, 30, 6);
        let a = model.predict(&[0.1, 0.1]);
        let b = model.predict(&[9.9, 9.9]);
        assert_ne!(a, b);
    }

    #[test]
    fn kmeans_uses_shuffles() {
        let pts = blobs(20, &[(0.0, 0.0), (5.0, 5.0)], 7);
        let ds = Dataset::from_vec(pts, 2);
        let _ = kmeans(&ds, 2, 10, 8);
        assert!(ds.stats().shuffle_stages > 0, "centroid updates shuffle");
    }

    #[test]
    fn kmeans_par_recovers_centers() {
        let pts = blobs(50, &[(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)], 1);
        let model = kmeans_par(&pts, 3, 50, 2, &ScparConfig::with_threads(4));
        for (cx, cy) in [(0.0, 0.0), (5.0, 5.0), (0.0, 5.0)] {
            let min = model
                .centroids
                .iter()
                .map(|c| sq_dist(c, &[cx, cy]))
                .fold(f64::INFINITY, f64::min);
            assert!(min < 0.25, "center ({cx},{cy}) missed: {min}");
        }
    }

    #[test]
    fn kmeans_par_is_thread_count_independent() {
        let pts = blobs(200, &[(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)], 13);
        let serial = kmeans_par(&pts, 3, 40, 14, &ScparConfig::serial());
        for threads in [2, 8] {
            let par = kmeans_par(&pts, 3, 40, 14, &ScparConfig::with_threads(threads));
            assert_eq!(par.iterations, serial.iterations);
            assert_eq!(par.inertia.to_bits(), serial.inertia.to_bits());
            for (a, b) in serial.centroids.iter().zip(&par.centroids) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn logistic_separates_blobs() {
        let mut rng = SeededRng::new(9);
        let mut data = Vec::new();
        for _ in 0..100 {
            data.push((vec![rng.gaussian(-2.0, 0.5), rng.gaussian(0.0, 0.5)], 0u8));
            data.push((vec![rng.gaussian(2.0, 0.5), rng.gaussian(0.0, 0.5)], 1u8));
        }
        let ds = Dataset::from_vec(data.clone(), 4);
        let model = logistic_regression(&ds, 0.5, 200);
        let correct = data.iter().filter(|(x, y)| model.predict(x) == *y).count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn linear_fits_line() {
        // y = 3x + 1
        let data: Vec<(Vec<f64>, f64)> = (0..50)
            .map(|i| (vec![i as f64 / 10.0], 3.0 * i as f64 / 10.0 + 1.0))
            .collect();
        let ds = Dataset::from_vec(data, 3);
        let model = linear_regression(&ds, 0.05, 2000);
        assert!(
            (model.weights[0] - 3.0).abs() < 0.1,
            "w {}",
            model.weights[0]
        );
        assert!((model.bias - 1.0).abs() < 0.3, "b {}", model.bias);
    }

    #[test]
    fn naive_bayes_classifies() {
        let mut rng = SeededRng::new(10);
        let mut data = Vec::new();
        for _ in 0..200 {
            data.push((vec![rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)], 0usize));
            data.push((vec![rng.gaussian(4.0, 1.0), rng.gaussian(4.0, 1.0)], 1usize));
        }
        let ds = Dataset::from_vec(data.clone(), 4);
        let model = naive_bayes(&ds, 2);
        assert!((model.priors[0] - 0.5).abs() < 0.01);
        let correct = data.iter().filter(|(x, c)| model.predict(x) == *c).count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn scaler_standardizes() {
        let data = vec![vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]];
        let ds = Dataset::from_vec(data.clone(), 2);
        let scaler = StandardScaler::fit(&ds);
        let transformed: Vec<Vec<f64>> = data.iter().map(|x| scaler.transform(x)).collect();
        for j in 0..2 {
            let mean: f64 = transformed.iter().map(|x| x[j]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn split_partitions_data() {
        let data: Vec<u32> = (0..100).collect();
        let (train, test) = train_test_split(&data, 0.2, 11);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
        let mut all: Vec<u32> = train.into_iter().chain(test).collect();
        all.sort_unstable();
        assert_eq!(all, data);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn kmeans_rejects_bad_k() {
        let ds = Dataset::from_vec(vec![vec![0.0]], 1);
        let _ = kmeans(&ds, 2, 5, 0);
    }

    #[derive(Default)]
    struct WorkSink(Mutex<BTreeMap<String, WorkDelta>>);

    impl sctelemetry::Recorder for WorkSink {
        fn record_work(&self, kernel: &str, work: WorkDelta) {
            *self
                .0
                .lock()
                .unwrap()
                .entry(kernel.to_string())
                .or_default() += work;
        }
    }

    #[test]
    fn kmeans_ctx_records_thread_invariant_work() {
        let pts = blobs(100, &[(0.0, 0.0), (6.0, 6.0)], 21);
        let collect = |threads: Option<usize>| {
            let sink = Arc::new(WorkSink::default());
            let handle = TelemetryHandle::new(sink.clone());
            let cfg = match threads {
                None => ScparConfig::serial(),
                Some(t) => ScparConfig::with_threads(t),
            };
            let ctx = scneural::exec::ExecCtx::serial()
                .with_par(cfg)
                .with_telemetry(handle);
            let model = kmeans_ctx(&pts, 2, 30, 22, &ctx);
            let work = sink.0.lock().unwrap().clone();
            (model, work)
        };
        let (serial_model, serial_work) = collect(None);
        assert!(serial_work.contains_key(KERNEL_KMEANS_ASSIGN));
        assert!(serial_work.contains_key(KERNEL_KMEANS_UPDATE));
        // Assignment covers every point each iteration plus the inertia pass.
        let assign = &serial_work[KERNEL_KMEANS_ASSIGN];
        assert_eq!(
            assign.items,
            (serial_model.iterations as u64 + 1) * pts.len() as u64
        );
        for threads in [2, 8] {
            let (model, work) = collect(Some(threads));
            assert_eq!(model, serial_model);
            assert_eq!(work, serial_work, "{threads} threads");
        }
    }
}
