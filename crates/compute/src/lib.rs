//! # sccompute — distributed computation substrates
//!
//! The paper's software layer runs "Apache Hadoop YARN and Apache Spark as
//! the resource scheduler and distributed data processing engine
//! respectively", with "various distributed data mining tools including
//! Apache Spark MLlib" (§II-C). This crate rebuilds all three:
//!
//! - [`yarn`]: a cluster resource scheduler — node managers with
//!   memory/vcore capacities, applications requesting containers, and three
//!   scheduling policies (FIFO, capacity queues, fair).
//! - [`dataflow`]: a partitioned dataset engine — narrow transformations
//!   (map/filter/flat-map) run partition-parallel on threads; wide
//!   transformations (reduce-by-key, group-by-key, join) hash-shuffle across
//!   partitions, with shuffle volume accounted.
//! - [`graph`]: Pregel-style vertex-centric graph processing (the GraphX
//!   analogue the paper cites): PageRank, connected components, shortest
//!   paths.
//! - [`mllib`]: data mining on top of the dataflow engine — k-means(++),
//!   logistic/linear regression, Gaussian naive Bayes, scaling and splits.
//!
//! # Examples
//!
//! ```
//! use sccompute::dataflow::Dataset;
//!
//! let ds = Dataset::from_vec((1..=100).collect::<Vec<i64>>(), 4);
//! let total: i64 = ds.map(|x| x * 2).reduce(0, |a, b| a + b);
//! assert_eq!(total, 10_100);
//! ```

pub mod dataflow;
pub mod graph;
pub mod mllib;
pub mod yarn;
