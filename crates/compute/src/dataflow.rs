//! A Spark-like partitioned dataflow engine.
//!
//! A [`Dataset<T>`] is a list of partitions. *Narrow* transformations
//! (map/filter/flat-map) run partition-parallel on scoped threads with no
//! data movement; *wide* transformations (reduce-by-key, group-by-key, join)
//! hash-partition records by key across a shuffle boundary, with the shuffled
//! record volume accounted in shared [`ExecStats`].

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;
use sctelemetry::{TelemetryHandle, WorkDelta};

/// Metric name of the per-stage wall-clock histogram (narrow and wide).
pub const METRIC_STAGE_SECONDS: &str = "sccompute_dataflow_stage_seconds";
/// Metric name of the narrow-stages counter.
pub const METRIC_NARROW_STAGES: &str = "sccompute_dataflow_narrow_stages_total";
/// Metric name of the shuffle-stages counter.
pub const METRIC_SHUFFLE_STAGES: &str = "sccompute_dataflow_shuffle_stages_total";
/// Metric name of the shuffled-records counter.
pub const METRIC_SHUFFLED_RECORDS: &str = "sccompute_dataflow_shuffled_records_total";

/// Prefix of per-stage work-accounting kernels (`compute/dataflow/<kind>`).
pub const KERNEL_DATAFLOW_PREFIX: &str = "compute/dataflow/";

/// Execution counters shared along a lineage of datasets.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Narrow (pipelined, partition-local) stages executed.
    pub narrow_stages: u64,
    /// Wide (shuffle) stages executed.
    pub shuffle_stages: u64,
    /// Records moved across the shuffle boundary.
    pub shuffled_records: u64,
}

#[derive(Debug, Default)]
struct StatsCell(Mutex<ExecStats>);

/// A partitioned, immutable dataset.
///
/// # Examples
///
/// ```
/// use sccompute::dataflow::Dataset;
///
/// let words = Dataset::from_vec(
///     vec!["a b", "b c", "a a"].into_iter().map(String::from).collect::<Vec<_>>(),
///     2,
/// );
/// let counts = words
///     .flat_map(|line| line.split(' ').map(String::from).collect::<Vec<_>>())
///     .map(|w| (w.clone(), 1u64))
///     .reduce_by_key(|a, b| a + b);
/// let mut out = counts.collect();
/// out.sort();
/// let expect = vec![
///     (String::from("a"), 3),
///     (String::from("b"), 2),
///     (String::from("c"), 1),
/// ];
/// assert_eq!(out, expect);
/// ```
#[derive(Debug)]
pub struct Dataset<T> {
    partitions: Vec<Vec<T>>,
    stats: Arc<StatsCell>,
    telemetry: TelemetryHandle,
}

fn hash_key<K: Hash>(k: &K, parts: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

impl<T: Send + Sync + Clone> Dataset<T> {
    /// Creates a dataset by splitting `data` into `partitions` roughly equal
    /// chunks.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn from_vec(data: Vec<T>, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let per = data.len().div_ceil(partitions).max(1);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(partitions);
        let mut iter = data.into_iter();
        for _ in 0..partitions {
            parts.push(iter.by_ref().take(per).collect());
        }
        Dataset {
            partitions: parts,
            stats: Arc::new(StatsCell::default()),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches telemetry; stages executed on this dataset and its lineage
    /// descendants count into the `sccompute_dataflow_*` metrics.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn with_lineage<U>(&self, partitions: Vec<Vec<U>>) -> Dataset<U> {
        Dataset {
            partitions,
            stats: Arc::clone(&self.stats),
            telemetry: self.telemetry.clone(),
        }
    }

    fn record_narrow_stage(&self) {
        self.stats.0.lock().narrow_stages += 1;
        self.telemetry
            .counter_inc(METRIC_NARROW_STAGES, "narrow (partition-local) stages run");
    }

    /// Attributes one stage's element throughput to the
    /// `compute/dataflow/<kind>` kernel. Stage and element counts are a
    /// function of the lineage alone, never the thread count, so these
    /// deltas are deterministic.
    fn record_stage_work(&self, kind: &str, items: u64) {
        if self.telemetry.is_enabled() {
            let kernel = format!("{KERNEL_DATAFLOW_PREFIX}{kind}");
            self.telemetry.work(&kernel, WorkDelta::items(items));
        }
    }

    fn record_shuffle(&self, moved: u64) {
        let mut stats = self.stats.0.lock();
        stats.shuffle_stages += 1;
        stats.shuffled_records += moved;
        drop(stats);
        self.telemetry
            .counter_inc(METRIC_SHUFFLE_STAGES, "wide (shuffle) stages run");
        self.telemetry.counter_add(
            METRIC_SHUFFLED_RECORDS,
            "records moved across shuffle boundaries",
            moved,
        );
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Per-partition record counts.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(Vec::len).collect()
    }

    /// Execution statistics accumulated along this lineage.
    pub fn stats(&self) -> ExecStats {
        *self.stats.0.lock()
    }

    /// Runs a closure on every partition in parallel, collecting outputs in
    /// partition order — the engine's core primitive.
    fn run_partitions<U, F>(&self, f: F) -> Vec<Vec<U>>
    where
        U: Send,
        F: Fn(&[T]) -> Vec<U> + Send + Sync,
    {
        let mut out: Vec<Option<Vec<U>>> = (0..self.partitions.len()).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, part) in self.partitions.iter().enumerate() {
                let f = &f;
                handles.push((i, s.spawn(move |_| f(part))));
            }
            for (i, h) in handles {
                out[i] = Some(h.join().expect("partition task panicked"));
            }
        })
        .expect("scope panicked");
        out.into_iter().map(|o| o.expect("filled above")).collect()
    }

    /// Narrow: element-wise transformation.
    pub fn map<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Send + Clone,
        F: Fn(&T) -> U + Send + Sync,
    {
        self.record_narrow_stage();
        self.record_stage_work("map", self.count() as u64);
        let _timer = self
            .telemetry
            .wall_timer(METRIC_STAGE_SECONDS, "wall-clock time per stage");
        let parts = self.run_partitions(|p| p.iter().map(&f).collect());
        self.with_lineage(parts)
    }

    /// Narrow: keep elements satisfying the predicate.
    pub fn filter<F>(&self, f: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Send + Sync,
    {
        self.record_narrow_stage();
        self.record_stage_work("filter", self.count() as u64);
        let _timer = self
            .telemetry
            .wall_timer(METRIC_STAGE_SECONDS, "wall-clock time per stage");
        let parts = self.run_partitions(|p| p.iter().filter(|x| f(x)).cloned().collect());
        self.with_lineage(parts)
    }

    /// Narrow: one-to-many transformation.
    pub fn flat_map<U, F>(&self, f: F) -> Dataset<U>
    where
        U: Send + Clone,
        F: Fn(&T) -> Vec<U> + Send + Sync,
    {
        self.record_narrow_stage();
        self.record_stage_work("flat_map", self.count() as u64);
        let _timer = self
            .telemetry
            .wall_timer(METRIC_STAGE_SECONDS, "wall-clock time per stage");
        let parts = self.run_partitions(|p| p.iter().flat_map(&f).collect());
        self.with_lineage(parts)
    }

    /// Action: fold all elements with a commutative, associative operator.
    pub fn reduce<F>(&self, identity: T, f: F) -> T
    where
        F: Fn(T, T) -> T + Send + Sync,
        T: 'static,
    {
        let partials = self.run_partitions(|p| {
            vec![p.iter().cloned().fold(None::<T>, |acc, x| {
                Some(match acc {
                    None => x,
                    Some(a) => f(a, x),
                })
            })]
        });
        partials.into_iter().flatten().flatten().fold(identity, f)
    }

    /// Action: total element count.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Action: materialize all elements in partition order.
    pub fn collect(&self) -> Vec<T> {
        self.partitions.iter().flatten().cloned().collect()
    }

    /// Wide: redistribute into `parts` partitions by a key function.
    pub fn repartition_by<K, F>(&self, parts: usize, key: F) -> Dataset<T>
    where
        K: Hash,
        F: Fn(&T) -> K + Send + Sync,
    {
        assert!(parts > 0, "need at least one partition");
        let mut buckets: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
        let mut moved = 0u64;
        for p in &self.partitions {
            for x in p {
                buckets[hash_key(&key(x), parts)].push(x.clone());
                moved += 1;
            }
        }
        self.record_shuffle(moved);
        self.record_stage_work("repartition", moved);
        self.with_lineage(buckets)
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Send + Sync + Clone + Hash + Eq + Ord,
    V: Send + Sync + Clone,
{
    /// Wide: merge values per key with a combiner. Performs map-side
    /// combining before the shuffle (Spark's `reduceByKey`).
    pub fn reduce_by_key<F>(&self, f: F) -> Dataset<(K, V)>
    where
        F: Fn(V, V) -> V + Send + Sync,
    {
        let _timer = self
            .telemetry
            .wall_timer(METRIC_STAGE_SECONDS, "wall-clock time per stage");
        // Map-side combine within each partition.
        let combined = self.run_partitions(|p| {
            let mut local: HashMap<K, V> = HashMap::new();
            for (k, v) in p {
                match local.remove(k) {
                    None => {
                        local.insert(k.clone(), v.clone());
                    }
                    Some(acc) => {
                        local.insert(k.clone(), f(acc, v.clone()));
                    }
                }
            }
            let mut out: Vec<(K, V)> = local.into_iter().collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        });
        // Shuffle combined records by key.
        let parts = self.partitions.len();
        let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
        let mut moved = 0u64;
        for part in combined {
            for (k, v) in part {
                buckets[hash_key(&k, parts)].push((k, v));
                moved += 1;
            }
        }
        self.record_shuffle(moved);
        self.record_stage_work("reduce_by_key", self.count() as u64 + moved);
        // Reduce-side merge.
        let reduced: Vec<Vec<(K, V)>> = buckets
            .into_iter()
            .map(|bucket| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in bucket {
                    match acc.remove(&k) {
                        None => {
                            acc.insert(k, v);
                        }
                        Some(prev) => {
                            acc.insert(k, f(prev, v));
                        }
                    }
                }
                let mut out: Vec<(K, V)> = acc.into_iter().collect();
                out.sort_by(|a, b| a.0.cmp(&b.0));
                out
            })
            .collect();
        self.with_lineage(reduced)
    }

    /// Wide: collect all values per key.
    pub fn group_by_key(&self) -> Dataset<(K, Vec<V>)> {
        let mapped = self.map(|(k, v)| (k.clone(), vec![v.clone()]));
        mapped.reduce_by_key(|mut a, mut b| {
            a.append(&mut b);
            a
        })
    }

    /// Wide: inner join with another keyed dataset.
    pub fn join<W>(&self, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))>
    where
        W: Send + Clone,
    {
        let parts = self.partitions.len().max(other.partitions.len());
        let mut left: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
        let mut right: Vec<Vec<(K, W)>> = (0..parts).map(|_| Vec::new()).collect();
        let mut moved = 0u64;
        for p in &self.partitions {
            for (k, v) in p {
                left[hash_key(k, parts)].push((k.clone(), v.clone()));
                moved += 1;
            }
        }
        for p in &other.partitions {
            for (k, w) in p {
                right[hash_key(k, parts)].push((k.clone(), w.clone()));
                moved += 1;
            }
        }
        self.record_shuffle(moved);
        self.record_stage_work("join", moved);
        let joined: Vec<Vec<(K, (V, W))>> = left
            .into_iter()
            .zip(right)
            .map(|(l, r)| {
                let mut by_key: HashMap<&K, Vec<&W>> = HashMap::new();
                for (k, w) in &r {
                    by_key.entry(k).or_default().push(w);
                }
                let mut out = Vec::new();
                for (k, v) in &l {
                    if let Some(ws) = by_key.get(k) {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), (*w).clone())));
                        }
                    }
                }
                out.sort_by(|a, b| a.0.cmp(&b.0));
                out
            })
            .collect();
        self.with_lineage(joined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_partitioning() {
        let ds = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(ds.partition_count(), 3);
        assert_eq!(ds.count(), 10);
        assert_eq!(ds.collect(), (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn map_filter_chain() {
        let ds = Dataset::from_vec((1..=10).collect::<Vec<i32>>(), 4);
        let out = ds.map(|x| x * x).filter(|x| x % 2 == 0).collect();
        assert_eq!(out, vec![4, 16, 36, 64, 100]);
        assert_eq!(ds.stats().narrow_stages, 2);
        assert_eq!(ds.stats().shuffle_stages, 0);
    }

    #[test]
    fn reduce_sums() {
        let ds = Dataset::from_vec((1..=100).collect::<Vec<i64>>(), 7);
        assert_eq!(ds.reduce(0, |a, b| a + b), 5050);
    }

    #[test]
    fn reduce_empty_partitions() {
        let ds = Dataset::from_vec(vec![5i64], 4); // 3 empty partitions
        assert_eq!(ds.reduce(0, |a, b| a + b), 5);
    }

    #[test]
    fn flat_map_expands() {
        let ds = Dataset::from_vec(vec![1, 2, 3], 2);
        let out = ds.flat_map(|&x| vec![x; x as usize]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn word_count() {
        let lines: Vec<String> = vec!["the quick fox", "the lazy dog", "the fox"]
            .into_iter()
            .map(String::from)
            .collect();
        let ds = Dataset::from_vec(lines, 2);
        let mut counts = ds
            .flat_map(|l| l.split(' ').map(String::from).collect::<Vec<_>>())
            .map(|w| (w.clone(), 1u64))
            .reduce_by_key(|a, b| a + b)
            .collect();
        counts.sort();
        assert_eq!(
            counts,
            vec![
                ("dog".into(), 1),
                ("fox".into(), 2),
                ("lazy".into(), 1),
                ("quick".into(), 1),
                ("the".into(), 3)
            ]
        );
    }

    #[test]
    fn reduce_by_key_counts_shuffle() {
        let ds = Dataset::from_vec(
            (0..100).map(|i| (i % 5, 1u64)).collect::<Vec<(i32, u64)>>(),
            4,
        );
        let out = ds.reduce_by_key(|a, b| a + b);
        assert_eq!(out.count(), 5);
        let stats = ds.stats();
        assert_eq!(stats.shuffle_stages, 1);
        // Map-side combine: at most 5 keys per partition × 4 partitions.
        assert!(stats.shuffled_records <= 20, "{stats:?}");
    }

    #[test]
    fn group_by_key_collects_all() {
        let ds = Dataset::from_vec(vec![(1, "a"), (2, "b"), (1, "c")], 2);
        let grouped = ds.group_by_key().collect();
        let ones = grouped.iter().find(|(k, _)| *k == 1).unwrap();
        assert_eq!(ones.1.len(), 2);
    }

    #[test]
    fn join_matches_keys() {
        let left = Dataset::from_vec(vec![(1, "a"), (2, "b"), (3, "c")], 2);
        let right = Dataset::from_vec(vec![(2, 20), (3, 30), (4, 40)], 3);
        let mut joined = left.join(&right).collect();
        joined.sort_by_key(|(k, _)| *k);
        assert_eq!(joined, vec![(2, ("b", 20)), (3, ("c", 30))]);
    }

    #[test]
    fn join_duplicates_cross_product() {
        let left = Dataset::from_vec(vec![(1, "x"), (1, "y")], 1);
        let right = Dataset::from_vec(vec![(1, 10), (1, 20)], 1);
        assert_eq!(left.join(&right).count(), 4);
    }

    #[test]
    fn repartition_preserves_elements() {
        let ds = Dataset::from_vec((0..50).collect::<Vec<i32>>(), 2);
        let rp = ds.repartition_by(5, |x| *x);
        assert_eq!(rp.partition_count(), 5);
        let mut all = rp.collect();
        all.sort();
        assert_eq!(all, (0..50).collect::<Vec<i32>>());
        assert_eq!(ds.stats().shuffled_records, 50);
    }

    #[test]
    fn narrow_ops_move_no_data() {
        let ds = Dataset::from_vec((0..1000).collect::<Vec<i32>>(), 8);
        let _ = ds
            .map(|x| x + 1)
            .filter(|x| x % 3 == 0)
            .map(|x| x * 2)
            .collect();
        assert_eq!(ds.stats().shuffled_records, 0);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _: Dataset<i32> = Dataset::from_vec(vec![], 0);
    }

    #[test]
    fn stage_work_attributed_per_kind() {
        #[derive(Default)]
        struct WorkSink(Mutex<std::collections::BTreeMap<String, WorkDelta>>);
        impl sctelemetry::Recorder for WorkSink {
            fn record_work(&self, kernel: &str, work: WorkDelta) {
                *self.0.lock().entry(kernel.to_string()).or_default() += work;
            }
        }
        let sink = Arc::new(WorkSink::default());
        let ds = Dataset::from_vec((0..40).collect::<Vec<i32>>(), 4)
            .with_telemetry(TelemetryHandle::new(sink.clone()));
        let _ = ds
            .map(|x| (*x % 4, 1u64))
            .reduce_by_key(|a, b| a + b)
            .collect();
        let work = sink.0.lock();
        assert_eq!(work["compute/dataflow/map"].items, 40);
        // reduce_by_key processes its 40 inputs plus the shuffled records.
        let moved = ds.stats().shuffled_records;
        assert!(moved > 0);
        assert_eq!(work["compute/dataflow/reduce_by_key"].items, 40 + moved);
    }

    #[test]
    fn telemetry_mirrors_exec_stats() {
        let t = sctelemetry::Telemetry::shared();
        let ds = Dataset::from_vec((0..40).collect::<Vec<i32>>(), 4).with_telemetry(t.handle());
        let _ = ds
            .map(|x| (*x % 4, 1u64))
            .reduce_by_key(|a, b| a + b)
            .collect();
        let stats = ds.stats();

        let reg = t.registry();
        let counter = |n: &str| reg.get(n).unwrap().as_counter().unwrap().get();
        assert_eq!(counter(METRIC_NARROW_STAGES), stats.narrow_stages);
        assert_eq!(counter(METRIC_SHUFFLE_STAGES), stats.shuffle_stages);
        assert_eq!(counter(METRIC_SHUFFLED_RECORDS), stats.shuffled_records);
        let stages = reg
            .get(METRIC_STAGE_SECONDS)
            .unwrap()
            .as_histogram()
            .unwrap()
            .snapshot();
        assert_eq!(stages.count, stats.narrow_stages + stats.shuffle_stages);
    }
}
