//! A YARN-like cluster resource scheduler.
//!
//! Node managers advertise `(memory, vcores)` capacities; applications submit
//! container requests into queues; a scheduling policy decides allocation
//! order. Three policies are provided, matching the schedulers Hadoop ships:
//! FIFO, Capacity (per-queue shares), and Fair (least-allocated app first).

use std::collections::{BTreeMap, VecDeque};

use sctelemetry::TelemetryHandle;

/// Metric name of the scheduling-pass wall-clock histogram.
pub const METRIC_SCHEDULE_SECONDS: &str = "sccompute_yarn_schedule_seconds";
/// Metric name of the allocated-containers counter.
pub const METRIC_CONTAINERS: &str = "sccompute_yarn_containers_total";
/// Metric name of the pending-requests gauge (refreshed per pass).
pub const METRIC_PENDING: &str = "sccompute_yarn_pending_requests";

/// A resource vector: memory and virtual cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Resource {
    /// Memory in MB.
    pub memory_mb: u64,
    /// Virtual cores.
    pub vcores: u32,
}

impl Resource {
    /// Creates a resource vector.
    pub fn new(memory_mb: u64, vcores: u32) -> Self {
        Resource { memory_mb, vcores }
    }

    /// Whether `self` can accommodate `other`.
    pub fn fits(&self, other: &Resource) -> bool {
        self.memory_mb >= other.memory_mb && self.vcores >= other.vcores
    }

    fn add(&mut self, other: &Resource) {
        self.memory_mb += other.memory_mb;
        self.vcores += other.vcores;
    }

    fn sub(&mut self, other: &Resource) {
        self.memory_mb -= other.memory_mb;
        self.vcores -= other.vcores;
    }
}

/// Identifier of a node manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct YarnNodeId(pub u32);

/// Identifier of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

/// Identifier of an allocated container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u64);

/// An allocated container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Container id.
    pub id: ContainerId,
    /// Owning application.
    pub app: AppId,
    /// Host node.
    pub node: YarnNodeId,
    /// Allocated resources.
    pub resource: Resource,
}

/// Scheduling policies.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// First-come, first-served across all apps.
    Fifo,
    /// Named queues with relative capacity weights; requests name a queue;
    /// the queue furthest below its share schedules first.
    Capacity(Vec<(String, f64)>),
    /// The app holding the least memory schedules first.
    Fair,
}

#[derive(Debug, Clone)]
struct PendingRequest {
    app: AppId,
    queue: String,
    resource: Resource,
    seq: u64,
}

/// The resource manager: tracks nodes, queues requests, allocates containers
/// per the configured policy.
///
/// # Examples
///
/// ```
/// use sccompute::yarn::{AppId, Policy, Resource, ResourceManager};
///
/// let mut rm = ResourceManager::new(Policy::Fifo);
/// rm.add_node(Resource::new(8192, 8));
/// rm.submit(AppId(1), "default", Resource::new(1024, 1));
/// let allocated = rm.schedule();
/// assert_eq!(allocated.len(), 1);
/// ```
#[derive(Debug)]
pub struct ResourceManager {
    policy: Policy,
    nodes: Vec<(YarnNodeId, Resource, Resource)>, // (id, capacity, used)
    pending: VecDeque<PendingRequest>,
    containers: BTreeMap<ContainerId, Container>,
    app_usage: BTreeMap<AppId, Resource>,
    queue_usage: BTreeMap<String, u64>, // memory per queue
    next_container: u64,
    next_seq: u64,
    telemetry: TelemetryHandle,
}

impl ResourceManager {
    /// Creates a resource manager with the given policy.
    pub fn new(policy: Policy) -> Self {
        ResourceManager {
            policy,
            nodes: Vec::new(),
            pending: VecDeque::new(),
            containers: BTreeMap::new(),
            app_usage: BTreeMap::new(),
            queue_usage: BTreeMap::new(),
            next_container: 0,
            next_seq: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches telemetry: scheduling passes time into
    /// [`METRIC_SCHEDULE_SECONDS`], allocations count into
    /// [`METRIC_CONTAINERS`], and [`METRIC_PENDING`] tracks the queue depth.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Registers a node manager, returning its id.
    pub fn add_node(&mut self, capacity: Resource) -> YarnNodeId {
        let id = YarnNodeId(self.nodes.len() as u32);
        self.nodes.push((id, capacity, Resource::default()));
        id
    }

    /// Submits a container request for `app` into `queue`.
    pub fn submit(&mut self, app: AppId, queue: &str, resource: Resource) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(PendingRequest {
            app,
            queue: queue.to_string(),
            resource,
            seq,
        });
    }

    /// Number of requests waiting for resources.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Live containers.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Current usage of an app.
    pub fn app_usage(&self, app: AppId) -> Resource {
        self.app_usage.get(&app).copied().unwrap_or_default()
    }

    /// Cluster utilization in `[0, 1]` by memory.
    pub fn utilization(&self) -> f64 {
        let cap: u64 = self.nodes.iter().map(|(_, c, _)| c.memory_mb).sum();
        let used: u64 = self.nodes.iter().map(|(_, _, u)| u.memory_mb).sum();
        if cap == 0 {
            0.0
        } else {
            used as f64 / cap as f64
        }
    }

    fn request_priority(&self, req: &PendingRequest) -> (u64, u64) {
        match &self.policy {
            Policy::Fifo => (0, req.seq),
            Policy::Fair => {
                // Least current memory usage first; FIFO tiebreak.
                let used = self
                    .app_usage
                    .get(&req.app)
                    .map(|r| r.memory_mb)
                    .unwrap_or(0);
                (used, req.seq)
            }
            Policy::Capacity(queues) => {
                // Queue furthest below its weighted share first. Scale usage
                // by 1/weight so a queue with twice the weight tolerates
                // twice the usage before losing priority.
                let weight = queues
                    .iter()
                    .find(|(name, _)| name == &req.queue)
                    .map(|(_, w)| *w)
                    .unwrap_or(0.01);
                let used = *self.queue_usage.get(&req.queue).unwrap_or(&0) as f64;
                ((used / weight) as u64, req.seq)
            }
        }
    }

    /// Runs one scheduling pass: allocates as many pending requests as fit,
    /// in policy order. Returns the containers allocated this pass.
    pub fn schedule(&mut self) -> Vec<Container> {
        let _timer = self.telemetry.wall_timer(
            METRIC_SCHEDULE_SECONDS,
            "wall-clock time of one scheduling pass",
        );
        let mut allocated = Vec::new();
        loop {
            // Pick the highest-priority schedulable request.
            let mut order: Vec<usize> = (0..self.pending.len()).collect();
            order.sort_by_key(|&i| self.request_priority(&self.pending[i]));
            let mut scheduled_any = false;
            for idx in order {
                let req = self.pending[idx].clone();
                // First node with room (lowest id — deterministic).
                let node = self.nodes.iter().position(|(_, cap, used)| {
                    let mut free = *cap;
                    free.sub(used);
                    free.fits(&req.resource)
                });
                if let Some(n) = node {
                    self.nodes[n].2.add(&req.resource);
                    let id = ContainerId(self.next_container);
                    self.next_container += 1;
                    let container = Container {
                        id,
                        app: req.app,
                        node: self.nodes[n].0,
                        resource: req.resource,
                    };
                    self.containers.insert(id, container.clone());
                    self.app_usage
                        .entry(req.app)
                        .or_default()
                        .add(&req.resource);
                    *self.queue_usage.entry(req.queue.clone()).or_default() +=
                        req.resource.memory_mb;
                    self.pending.remove(idx);
                    allocated.push(container);
                    scheduled_any = true;
                    break; // re-evaluate priorities after each allocation
                }
            }
            if !scheduled_any {
                break;
            }
        }
        self.telemetry.counter_add(
            METRIC_CONTAINERS,
            "containers allocated by the resource manager",
            allocated.len() as u64,
        );
        self.telemetry.gauge_set(
            METRIC_PENDING,
            "container requests still waiting for resources",
            self.pending.len() as i64,
        );
        allocated
    }

    /// Releases a container, freeing its node resources.
    ///
    /// Returns `false` if the container was unknown.
    pub fn release(&mut self, id: ContainerId) -> bool {
        let Some(c) = self.containers.remove(&id) else {
            return false;
        };
        if let Some((_, _, used)) = self.nodes.iter_mut().find(|(n, _, _)| *n == c.node) {
            used.sub(&c.resource);
        }
        if let Some(u) = self.app_usage.get_mut(&c.app) {
            u.sub(&c.resource);
        }
        true
    }

    /// Invariant check: no node over-allocated. (Used by property tests.)
    pub fn check_invariants(&self) -> bool {
        self.nodes.iter().all(|(_, cap, used)| cap.fits(used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(policy: Policy) -> ResourceManager {
        let mut rm = ResourceManager::new(policy);
        rm.add_node(Resource::new(4096, 4));
        rm.add_node(Resource::new(4096, 4));
        rm
    }

    #[test]
    fn fifo_allocates_in_order() {
        let mut rm = small_cluster(Policy::Fifo);
        rm.submit(AppId(1), "q", Resource::new(1024, 1));
        rm.submit(AppId(2), "q", Resource::new(1024, 1));
        let out = rm.schedule();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].app, AppId(1));
        assert_eq!(out[1].app, AppId(2));
    }

    #[test]
    fn respects_capacity_limits() {
        let mut rm = small_cluster(Policy::Fifo);
        for _ in 0..10 {
            rm.submit(AppId(1), "q", Resource::new(1024, 1));
        }
        let out = rm.schedule();
        assert_eq!(out.len(), 8, "2 nodes x 4 cores/4GB fit 8 containers");
        assert_eq!(rm.pending_count(), 2);
        assert!(rm.check_invariants());
        assert!((rm.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn release_frees_capacity() {
        let mut rm = small_cluster(Policy::Fifo);
        rm.submit(AppId(1), "q", Resource::new(4096, 4));
        let c = rm.schedule()[0].clone();
        rm.submit(AppId(2), "q", Resource::new(4096, 4));
        rm.submit(AppId(3), "q", Resource::new(4096, 4));
        assert_eq!(rm.schedule().len(), 1, "one node still free");
        assert!(rm.release(c.id));
        assert_eq!(rm.schedule().len(), 1, "released capacity reused");
        assert!(!rm.release(c.id), "double release rejected");
    }

    #[test]
    fn fair_interleaves_apps() {
        let mut rm = small_cluster(Policy::Fair);
        // App 1 floods first, app 2 submits after; fair policy should still
        // give app 2 roughly half.
        for _ in 0..6 {
            rm.submit(AppId(1), "q", Resource::new(1024, 1));
        }
        for _ in 0..6 {
            rm.submit(AppId(2), "q", Resource::new(1024, 1));
        }
        rm.schedule();
        let u1 = rm.app_usage(AppId(1)).memory_mb;
        let u2 = rm.app_usage(AppId(2)).memory_mb;
        assert_eq!(u1, u2, "fair share: {u1} vs {u2}");
    }

    #[test]
    fn fifo_starves_late_app() {
        let mut rm = small_cluster(Policy::Fifo);
        for _ in 0..8 {
            rm.submit(AppId(1), "q", Resource::new(1024, 1));
        }
        for _ in 0..8 {
            rm.submit(AppId(2), "q", Resource::new(1024, 1));
        }
        rm.schedule();
        assert_eq!(rm.app_usage(AppId(1)).memory_mb, 8192);
        assert_eq!(
            rm.app_usage(AppId(2)).memory_mb,
            0,
            "FIFO starves the latecomer"
        );
    }

    #[test]
    fn capacity_queues_share_by_weight() {
        let mut rm = small_cluster(Policy::Capacity(vec![
            ("prod".into(), 0.75),
            ("dev".into(), 0.25),
        ]));
        for _ in 0..8 {
            rm.submit(AppId(1), "prod", Resource::new(1024, 1));
            rm.submit(AppId(2), "dev", Resource::new(1024, 1));
        }
        rm.schedule();
        let prod = rm.app_usage(AppId(1)).memory_mb;
        let dev = rm.app_usage(AppId(2)).memory_mb;
        assert_eq!(prod + dev, 8192);
        assert!(prod >= dev * 2, "prod ({prod}) should get ~3x dev ({dev})");
    }

    #[test]
    fn oversized_request_stays_pending() {
        let mut rm = small_cluster(Policy::Fifo);
        rm.submit(AppId(1), "q", Resource::new(10_000, 1));
        assert!(rm.schedule().is_empty());
        assert_eq!(rm.pending_count(), 1);
    }

    #[test]
    fn empty_cluster_utilization_zero() {
        let rm = ResourceManager::new(Policy::Fifo);
        assert_eq!(rm.utilization(), 0.0);
    }

    #[test]
    fn telemetry_tracks_scheduling() {
        let t = sctelemetry::Telemetry::shared();
        let mut rm = small_cluster(Policy::Fifo).with_telemetry(t.handle());
        for _ in 0..10 {
            rm.submit(AppId(1), "q", Resource::new(1024, 1));
        }
        let out = rm.schedule();

        let reg = t.registry();
        assert_eq!(
            reg.get(METRIC_CONTAINERS)
                .unwrap()
                .as_counter()
                .unwrap()
                .get(),
            out.len() as u64
        );
        assert_eq!(
            reg.get(METRIC_PENDING).unwrap().as_gauge().unwrap().get(),
            rm.pending_count() as i64
        );
        let sched = reg
            .get(METRIC_SCHEDULE_SECONDS)
            .unwrap()
            .as_histogram()
            .unwrap()
            .snapshot();
        assert_eq!(sched.count, 1, "one timed scheduling pass");
    }
}
