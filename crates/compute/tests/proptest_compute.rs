//! Property tests: the dataflow engine must agree with plain iterator
//! semantics, and the scheduler must never over-allocate.

use proptest::prelude::*;
use sccompute::dataflow::Dataset;
use sccompute::yarn::{AppId, Policy, Resource, ResourceManager};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// map/filter/reduce over any partitioning equals the sequential result.
    #[test]
    fn dataflow_matches_iterators(
        data in proptest::collection::vec(-100i64..100, 0..200),
        parts in 1usize..8,
    ) {
        let ds = Dataset::from_vec(data.clone(), parts);
        let got: i64 = ds.map(|x| x * 3).filter(|x| x % 2 == 0).reduce(0, |a, b| a + b);
        let want: i64 = data.iter().map(|x| x * 3).filter(|x| x % 2 == 0).sum();
        prop_assert_eq!(got, want);
        prop_assert_eq!(ds.count(), data.len());
    }

    /// reduce_by_key equals a HashMap fold, for any keys and partitioning.
    #[test]
    fn reduce_by_key_matches_hashmap(
        pairs in proptest::collection::vec((0u8..16, 1i64..50), 0..150),
        parts in 1usize..6,
    ) {
        let ds = Dataset::from_vec(pairs.clone(), parts);
        let mut got = ds.reduce_by_key(|a, b| a + b).collect();
        got.sort();
        let mut model: std::collections::BTreeMap<u8, i64> = Default::default();
        for (k, v) in pairs {
            *model.entry(k).or_default() += v;
        }
        let want: Vec<(u8, i64)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Join equals the nested-loop join, for any inputs.
    #[test]
    fn join_matches_nested_loop(
        left in proptest::collection::vec((0u8..8, 0i32..100), 0..40),
        right in proptest::collection::vec((0u8..8, 0i32..100), 0..40),
    ) {
        let l = Dataset::from_vec(left.clone(), 3);
        let r = Dataset::from_vec(right.clone(), 2);
        let mut got = l.join(&r).collect();
        got.sort();
        let mut want: Vec<(u8, (i32, i32))> = Vec::new();
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    want.push((*lk, (*lv, *rv)));
                }
            }
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Repartitioning preserves the multiset of elements.
    #[test]
    fn repartition_preserves_elements(
        data in proptest::collection::vec(0u32..1000, 0..150),
        parts_a in 1usize..5,
        parts_b in 1usize..9,
    ) {
        let ds = Dataset::from_vec(data.clone(), parts_a);
        let rp = ds.repartition_by(parts_b, |x| *x);
        let mut got = rp.collect();
        got.sort_unstable();
        let mut want = data;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The scheduler never over-allocates any node, under any request mix
    /// and policy, including after releases.
    #[test]
    fn scheduler_never_overallocates(
        requests in proptest::collection::vec((0u32..4, 128u64..4096, 1u32..4), 0..40),
        policy_pick in 0usize..3,
        release_every in 1usize..5,
    ) {
        let policy = match policy_pick {
            0 => Policy::Fifo,
            1 => Policy::Fair,
            _ => Policy::Capacity(vec![("q".into(), 1.0)]),
        };
        let mut rm = ResourceManager::new(policy);
        rm.add_node(Resource::new(4096, 8));
        rm.add_node(Resource::new(2048, 4));
        for (i, (app, mem, cores)) in requests.into_iter().enumerate() {
            rm.submit(AppId(app), "q", Resource::new(mem, cores));
            let allocated = rm.schedule();
            prop_assert!(rm.check_invariants(), "over-allocation detected");
            if i % release_every == 0 {
                if let Some(c) = allocated.first() {
                    rm.release(c.id);
                    prop_assert!(rm.check_invariants());
                }
            }
        }
        prop_assert!(rm.utilization() <= 1.0);
    }
}
