//! The smart camera-control environment (§III-D's motivating application).

use simclock::SeededRng;

use crate::env::Environment;

/// A pan-tilt-zoom camera watching a scene grid while an incident (e.g. a
/// fleeing vehicle) moves through it.
///
/// **State** (6 floats, normalized to `[0, 1]` or `{0, ½, 1}`): camera x,
/// camera y, zoom level, incident x, incident y, and whether the incident is
/// currently in view.
///
/// **Actions** (7): pan left / right / up / down, zoom in, zoom out, hold.
///
/// **Reward**: `+1` per step the incident is inside the field of view,
/// multiplied by `(1 + zoom)` — a zoomed-in capture is worth more (better
/// evidence quality), but the view is smaller and easier to lose. `-0.05`
/// step cost otherwise.
#[derive(Debug)]
pub struct CameraControlEnv {
    width: i32,
    height: i32,
    episode_len: usize,
    rng: SeededRng,
    cam: (i32, i32),
    zoom: i32, // 0 (wide), 1, 2 (tight)
    incident: (i32, i32),
    incident_vel: (i32, i32),
    step: usize,
}

impl CameraControlEnv {
    /// Creates an environment on a `width`×`height` scene with episodes of
    /// `episode_len` steps.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are < 4 or the episode is empty.
    pub fn new(width: i32, height: i32, episode_len: usize, seed: u64) -> Self {
        assert!(width >= 4 && height >= 4, "scene must be at least 4x4");
        assert!(episode_len > 0, "episodes need at least one step");
        CameraControlEnv {
            width,
            height,
            episode_len,
            rng: SeededRng::new(seed),
            cam: (0, 0),
            zoom: 0,
            incident: (0, 0),
            incident_vel: (1, 0),
            step: 0,
        }
    }

    /// Half-width of the field of view at the current zoom.
    fn view_radius(&self) -> i32 {
        match self.zoom {
            0 => 3,
            1 => 2,
            _ => 1,
        }
    }

    /// Whether the incident is inside the current field of view.
    pub fn incident_in_view(&self) -> bool {
        let r = self.view_radius();
        (self.cam.0 - self.incident.0).abs() <= r && (self.cam.1 - self.incident.1).abs() <= r
    }

    fn state(&self) -> Vec<f32> {
        vec![
            self.cam.0 as f32 / self.width as f32,
            self.cam.1 as f32 / self.height as f32,
            self.zoom as f32 / 2.0,
            self.incident.0 as f32 / self.width as f32,
            self.incident.1 as f32 / self.height as f32,
            f32::from(self.incident_in_view()),
        ]
    }
}

impl Environment for CameraControlEnv {
    fn state_dim(&self) -> usize {
        6
    }

    fn num_actions(&self) -> usize {
        7
    }

    fn reset(&mut self) -> Vec<f32> {
        self.cam = (self.width / 2, self.height / 2);
        self.zoom = 0;
        self.incident = (
            self.rng.index(self.width as usize) as i32,
            self.rng.index(self.height as usize) as i32,
        );
        self.incident_vel = (
            *self.rng.choose(&[-1i32, 0, 1]).expect("non-empty"),
            *self.rng.choose(&[-1i32, 0, 1]).expect("non-empty"),
        );
        self.step = 0;
        self.state()
    }

    fn step(&mut self, action: usize) -> (Vec<f32>, f64, bool) {
        assert!(action < 7, "action {action} out of range");
        match action {
            0 => self.cam.0 = (self.cam.0 - 1).max(0),
            1 => self.cam.0 = (self.cam.0 + 1).min(self.width - 1),
            2 => self.cam.1 = (self.cam.1 - 1).max(0),
            3 => self.cam.1 = (self.cam.1 + 1).min(self.height - 1),
            4 => self.zoom = (self.zoom + 1).min(2),
            5 => self.zoom = (self.zoom - 1).max(0),
            _ => {}
        }

        // Incident drifts; occasionally changes direction.
        if self.rng.chance(0.15) {
            self.incident_vel = (
                *self.rng.choose(&[-1i32, 0, 1]).expect("non-empty"),
                *self.rng.choose(&[-1i32, 0, 1]).expect("non-empty"),
            );
        }
        self.incident.0 = (self.incident.0 + self.incident_vel.0).clamp(0, self.width - 1);
        self.incident.1 = (self.incident.1 + self.incident_vel.1).clamp(0, self.height - 1);

        let reward = if self.incident_in_view() {
            1.0 * (1.0 + self.zoom as f64)
        } else {
            -0.05
        };
        self.step += 1;
        (self.state(), reward, self.step >= self.episode_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_returns_valid_state() {
        let mut env = CameraControlEnv::new(10, 10, 20, 1);
        let s = env.reset();
        assert_eq!(s.len(), env.state_dim());
        assert!(s.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn episode_length_respected() {
        let mut env = CameraControlEnv::new(10, 10, 15, 2);
        env.reset();
        let mut steps = 0;
        loop {
            let (_, _, done) = env.step(6);
            steps += 1;
            if done {
                break;
            }
        }
        assert_eq!(steps, 15);
    }

    #[test]
    fn camera_stays_in_bounds() {
        let mut env = CameraControlEnv::new(6, 6, 100, 3);
        env.reset();
        for _ in 0..50 {
            env.step(0); // pan left repeatedly
        }
        assert_eq!(env.cam.0, 0);
        env.reset();
        for _ in 0..50 {
            env.step(1);
        }
        assert_eq!(env.cam.0, 5);
    }

    #[test]
    fn zoom_bounds() {
        let mut env = CameraControlEnv::new(8, 8, 100, 4);
        env.reset();
        for _ in 0..5 {
            env.step(4);
        }
        assert_eq!(env.zoom, 2);
        for _ in 0..5 {
            env.step(5);
        }
        assert_eq!(env.zoom, 0);
    }

    #[test]
    fn zoomed_reward_is_higher_in_view() {
        let mut env = CameraControlEnv::new(8, 8, 100, 5);
        env.reset();
        // Force a deterministic co-located situation.
        env.incident = env.cam;
        env.incident_vel = (0, 0);
        env.zoom = 2;
        // Repeat until a no-direction-change step (rng may jitter velocity
        // but position is clamped near camera; radius 1 view).
        let (_, r_zoomed, _) = env.step(6);
        assert!(r_zoomed >= -0.05);
        if env.incident_in_view() {
            assert!(r_zoomed >= 1.0);
        }
    }

    #[test]
    fn wide_view_sees_more() {
        let mut env = CameraControlEnv::new(10, 10, 10, 6);
        env.reset();
        env.cam = (5, 5);
        env.incident = (7, 5); // distance 2
        env.zoom = 0;
        assert!(env.incident_in_view(), "radius 3 covers distance 2");
        env.zoom = 2;
        assert!(!env.incident_in_view(), "radius 1 does not");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_action_panics() {
        let mut env = CameraControlEnv::new(8, 8, 10, 7);
        env.reset();
        env.step(7);
    }
}
