//! The environment interface and episode runner.

/// One experience tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f32>,
    /// Action taken.
    pub action: usize,
    /// Immediate reward.
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f32>,
    /// Whether the episode ended at `next_state`.
    pub done: bool,
}

/// A reinforcement-learning environment with a discrete action space.
pub trait Environment {
    /// Dimensionality of the state vector.
    fn state_dim(&self) -> usize;

    /// Number of discrete actions.
    fn num_actions(&self) -> usize;

    /// Resets to an initial state, returning it.
    fn reset(&mut self) -> Vec<f32>;

    /// Applies `action`, returning `(next_state, reward, done)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action >= num_actions()`.
    fn step(&mut self, action: usize) -> (Vec<f32>, f64, bool);
}

/// Runs one full episode, letting the agent observe (and optionally learn
/// from) each transition. Returns the undiscounted episode return.
pub fn run_episode<E, A>(env: &mut E, agent: &mut A, learn: bool) -> f64
where
    E: Environment + ?Sized,
    A: crate::agents::Agent + ?Sized,
{
    let mut state = env.reset();
    let mut total = 0.0;
    loop {
        let action = agent.act(&state);
        let (next, reward, done) = env.step(action);
        total += reward;
        if learn {
            agent.observe(Transition {
                state: state.clone(),
                action,
                reward,
                next_state: next.clone(),
                done,
            });
        }
        state = next;
        if done {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::RandomAgent;

    /// A 1-D corridor: go right to the goal.
    struct Corridor {
        pos: i32,
        steps: usize,
    }

    impl Environment for Corridor {
        fn state_dim(&self) -> usize {
            1
        }
        fn num_actions(&self) -> usize {
            2
        }
        fn reset(&mut self) -> Vec<f32> {
            self.pos = 0;
            self.steps = 0;
            vec![0.0]
        }
        fn step(&mut self, action: usize) -> (Vec<f32>, f64, bool) {
            assert!(action < 2);
            self.pos += if action == 1 { 1 } else { -1 };
            self.steps += 1;
            let done = self.pos >= 5 || self.steps >= 50;
            let reward = if self.pos >= 5 { 10.0 } else { -0.1 };
            (vec![self.pos as f32 / 5.0], reward, done)
        }
    }

    #[test]
    fn episode_terminates_and_accumulates() {
        let mut env = Corridor { pos: 0, steps: 0 };
        let mut agent = RandomAgent::new(2, 3);
        let r = run_episode(&mut env, &mut agent, false);
        assert!(r.is_finite());
        assert!(env.steps <= 50);
    }
}
