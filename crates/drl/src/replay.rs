//! Experience replay.

use simclock::SeededRng;

use crate::env::Transition;

/// A fixed-capacity ring buffer of transitions with uniform sampling — the
/// decorrelation trick at the heart of DQN.
///
/// # Examples
///
/// ```
/// use scdrl::{ReplayBuffer, Transition};
///
/// let mut buf = ReplayBuffer::new(100, 1);
/// buf.push(Transition {
///     state: vec![0.0],
///     action: 0,
///     reward: 1.0,
///     next_state: vec![1.0],
///     done: false,
/// });
/// assert_eq!(buf.len(), 1);
/// ```
#[derive(Debug)]
pub struct ReplayBuffer {
    items: Vec<Transition>,
    capacity: usize,
    cursor: usize,
    rng: SeededRng,
}

impl ReplayBuffer {
    /// Creates a buffer of at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayBuffer {
            items: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
            rng: SeededRng::new(seed),
        }
    }

    /// Appends a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.cursor] = t;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Samples `n` transitions uniformly with replacement (empty if the
    /// buffer is empty).
    pub fn sample(&mut self, n: usize) -> Vec<Transition> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| self.items[self.rng.index(self.items.len())].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f32) -> Transition {
        Transition {
            state: vec![v],
            action: 0,
            reward: 0.0,
            next_state: vec![v],
            done: false,
        }
    }

    #[test]
    fn ring_eviction() {
        let mut buf = ReplayBuffer::new(3, 1);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        // Items 0 and 1 were evicted.
        let states: Vec<f32> = buf.items.iter().map(|t| t.state[0]).collect();
        assert!(!states.contains(&0.0));
        assert!(!states.contains(&1.0));
    }

    #[test]
    fn sample_size_and_membership() {
        let mut buf = ReplayBuffer::new(10, 2);
        for i in 0..10 {
            buf.push(t(i as f32));
        }
        let batch = buf.sample(32);
        assert_eq!(batch.len(), 32);
        assert!(batch.iter().all(|b| (0.0..10.0).contains(&b.state[0])));
    }

    #[test]
    fn empty_sample() {
        let mut buf = ReplayBuffer::new(4, 3);
        assert!(buf.sample(5).is_empty());
    }
}
