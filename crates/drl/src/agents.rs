//! Agents: DQN, tabular Q-learning, and a random baseline.

use scneural::layers::{Dense, Relu};
use scneural::loss::MeanSquaredError;
use scneural::net::Sequential;
use scneural::optim::Adam;
use scneural::serialize::{load_params, save_params};
use scneural::tensor::Tensor;
use simclock::SeededRng;

use crate::env::Transition;
use crate::replay::ReplayBuffer;

/// An acting (and optionally learning) agent.
pub trait Agent {
    /// Chooses an action for `state`.
    fn act(&mut self, state: &[f32]) -> usize;

    /// Ingests an experienced transition (no-op for non-learning agents).
    fn observe(&mut self, _t: Transition) {}
}

/// Uniform random policy (the E11 floor baseline).
#[derive(Debug)]
pub struct RandomAgent {
    actions: usize,
    rng: SeededRng,
}

impl RandomAgent {
    /// Creates a random agent over `actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is zero.
    pub fn new(actions: usize, seed: u64) -> Self {
        assert!(actions > 0, "need at least one action");
        RandomAgent {
            actions,
            rng: SeededRng::new(seed),
        }
    }
}

impl Agent for RandomAgent {
    fn act(&mut self, _state: &[f32]) -> usize {
        self.rng.index(self.actions)
    }
}

/// Tabular Q-learning over a discretized state (each state component is
/// bucketed into `buckets` bins). The pre-deep-RL baseline the paper's DRL
/// section positions itself against.
#[derive(Debug)]
pub struct TabularQAgent {
    q: std::collections::HashMap<Vec<u8>, Vec<f64>>,
    actions: usize,
    buckets: u8,
    alpha: f64,
    gamma: f64,
    epsilon: f64,
    rng: SeededRng,
}

impl TabularQAgent {
    /// Creates a tabular agent.
    ///
    /// # Panics
    ///
    /// Panics if `actions` or `buckets` is zero.
    pub fn new(actions: usize, buckets: u8, seed: u64) -> Self {
        assert!(
            actions > 0 && buckets > 0,
            "actions and buckets must be positive"
        );
        TabularQAgent {
            q: std::collections::HashMap::new(),
            actions,
            buckets,
            alpha: 0.2,
            gamma: 0.95,
            epsilon: 0.15,
            rng: SeededRng::new(seed),
        }
    }

    fn key(&self, state: &[f32]) -> Vec<u8> {
        state
            .iter()
            .map(|&v| ((v.clamp(0.0, 1.0) * (self.buckets - 1) as f32).round()) as u8)
            .collect()
    }

    fn q_row(&mut self, key: Vec<u8>) -> &mut Vec<f64> {
        let actions = self.actions;
        self.q.entry(key).or_insert_with(|| vec![0.0; actions])
    }

    /// Number of discretized states visited.
    pub fn table_size(&self) -> usize {
        self.q.len()
    }
}

impl Agent for TabularQAgent {
    fn act(&mut self, state: &[f32]) -> usize {
        if self.rng.chance(self.epsilon) {
            return self.rng.index(self.actions);
        }
        let key = self.key(state);
        let row = self.q_row(key);
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty row")
    }

    fn observe(&mut self, t: Transition) {
        let next_key = self.key(&t.next_state);
        let next_max = self
            .q_row(next_key)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let target = if t.done {
            t.reward
        } else {
            t.reward + self.gamma * next_max
        };
        let key = self.key(&t.state);
        let alpha = self.alpha;
        let row = self.q_row(key);
        row[t.action] += alpha * (target - row[t.action]);
    }
}

/// Hyper-parameters for [`DqnAgent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DqnConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Initial exploration rate.
    pub epsilon_start: f64,
    /// Final exploration rate.
    pub epsilon_end: f64,
    /// Multiplicative epsilon decay applied per training step.
    pub epsilon_decay: f64,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Training steps between target-network syncs.
    pub target_sync: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Use Double DQN targets (action selected by the online net, valued by
    /// the target net) instead of plain max — reduces overestimation bias.
    pub double_dqn: bool,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            hidden: 32,
            gamma: 0.95,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay: 0.995,
            replay_capacity: 5_000,
            batch_size: 32,
            target_sync: 100,
            lr: 1e-3,
            double_dqn: false,
        }
    }
}

/// Deep Q-network agent: ε-greedy policy over a two-layer MLP, experience
/// replay, and a target network synced every `target_sync` training steps.
#[derive(Debug)]
pub struct DqnAgent {
    online: Sequential,
    target: Sequential,
    replay: ReplayBuffer,
    config: DqnConfig,
    state_dim: usize,
    actions: usize,
    epsilon: f64,
    steps: usize,
    optimizer: Adam,
    rng: SeededRng,
}

fn build_net(state_dim: usize, hidden: usize, actions: usize, seed: u64) -> Sequential {
    Sequential::new()
        .with(Dense::new(state_dim, hidden, seed))
        .with(Relu::new())
        .with(Dense::new(hidden, hidden, seed.wrapping_add(1)))
        .with(Relu::new())
        .with(Dense::new(hidden, actions, seed.wrapping_add(2)))
}

impl DqnAgent {
    /// Creates a DQN agent for `state_dim` inputs and `actions` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `state_dim` or `actions` is zero.
    pub fn new(state_dim: usize, actions: usize, config: DqnConfig, seed: u64) -> Self {
        assert!(state_dim > 0 && actions > 0, "dimensions must be positive");
        let online = build_net(state_dim, config.hidden, actions, seed);
        let mut target = build_net(state_dim, config.hidden, actions, seed.wrapping_add(100));
        // Start the target as an exact copy.
        load_params(&mut target, &save_params(&online)).expect("same architecture");
        DqnAgent {
            online,
            target,
            replay: ReplayBuffer::new(config.replay_capacity, seed.wrapping_add(7)),
            epsilon: config.epsilon_start,
            config,
            state_dim,
            actions,
            steps: 0,
            optimizer: Adam::new(config.lr),
            rng: SeededRng::new(seed.wrapping_add(13)),
        }
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Greedy Q-values for a state (no exploration).
    pub fn q_values(&mut self, state: &[f32]) -> Vec<f32> {
        let x = Tensor::from_vec(vec![1, self.state_dim], state.to_vec())
            .expect("state dimension checked at construction");
        self.online.predict(&x).into_data()
    }

    fn train_batch(&mut self) {
        let batch = self.replay.sample(self.config.batch_size);
        if batch.is_empty() {
            return;
        }
        let n = batch.len();
        let mut states = Vec::with_capacity(n * self.state_dim);
        let mut next_states = Vec::with_capacity(n * self.state_dim);
        for t in &batch {
            states.extend_from_slice(&t.state);
            next_states.extend_from_slice(&t.next_state);
        }
        let states = Tensor::from_vec(vec![n, self.state_dim], states).expect("sized above");
        let next_states =
            Tensor::from_vec(vec![n, self.state_dim], next_states).expect("sized above");

        // Bellman targets from the frozen target network. Double DQN picks
        // the argmax action with the online net but values it with the
        // target net (van Hasselt et al.), curbing max-operator bias.
        let next_q_target = self.target.predict(&next_states);
        let next_q_online = if self.config.double_dqn {
            Some(self.online.predict(&next_states))
        } else {
            None
        };
        let mut targets = self.online.predict(&states);
        for (i, t) in batch.iter().enumerate() {
            let next_value = match &next_q_online {
                Some(online) => {
                    let best = (0..self.actions)
                        .max_by(|&a, &b| online.at(i, a).total_cmp(&online.at(i, b)))
                        .expect("non-empty action set");
                    next_q_target.at(i, best)
                }
                None => (0..self.actions)
                    .map(|a| next_q_target.at(i, a))
                    .fold(f32::NEG_INFINITY, f32::max),
            };
            let y = if t.done {
                t.reward as f32
            } else {
                t.reward as f32 + self.config.gamma as f32 * next_value
            };
            targets.set(i, t.action, y);
        }
        let mut loss = MeanSquaredError::new();
        self.online
            .train_step_values(&states, &targets, &mut loss, &mut self.optimizer);

        self.steps += 1;
        self.epsilon = (self.epsilon * self.config.epsilon_decay).max(self.config.epsilon_end);
        if self.steps.is_multiple_of(self.config.target_sync) {
            load_params(&mut self.target, &save_params(&self.online)).expect("same architecture");
        }
    }
}

impl Agent for DqnAgent {
    fn act(&mut self, state: &[f32]) -> usize {
        if self.rng.chance(self.epsilon) {
            return self.rng.index(self.actions);
        }
        let q = self.q_values(state);
        q.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty q row")
    }

    fn observe(&mut self, t: Transition) {
        self.replay.push(t);
        if self.replay.len() >= self.config.batch_size {
            self.train_batch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::CameraControlEnv;
    use crate::env::{run_episode, Environment};

    #[test]
    fn random_agent_uniformish() {
        let mut a = RandomAgent::new(4, 1);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[a.act(&[0.0])] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }

    #[test]
    fn tabular_learns_corridor() {
        // Simple deterministic chain: Q-learning must learn to go right.
        struct Chain {
            pos: i32,
            steps: usize,
        }
        impl Environment for Chain {
            fn state_dim(&self) -> usize {
                1
            }
            fn num_actions(&self) -> usize {
                2
            }
            fn reset(&mut self) -> Vec<f32> {
                self.pos = 0;
                self.steps = 0;
                vec![0.0]
            }
            fn step(&mut self, action: usize) -> (Vec<f32>, f64, bool) {
                self.pos += if action == 1 { 1 } else { -1 };
                self.pos = self.pos.max(0);
                self.steps += 1;
                let done = self.pos >= 4 || self.steps >= 30;
                let r = if self.pos >= 4 { 10.0 } else { -0.1 };
                (vec![self.pos as f32 / 4.0], r, done)
            }
        }
        let mut env = Chain { pos: 0, steps: 0 };
        let mut agent = TabularQAgent::new(2, 5, 2);
        for _ in 0..300 {
            run_episode(&mut env, &mut agent, true);
        }
        agent.epsilon = 0.0;
        let r = run_episode(&mut env, &mut agent, false);
        assert!(r > 9.0, "learned return {r}");
        assert!(agent.table_size() >= 4);
    }

    #[test]
    fn dqn_epsilon_decays() {
        let mut env = CameraControlEnv::new(8, 8, 20, 3);
        let mut agent = DqnAgent::new(env.state_dim(), env.num_actions(), DqnConfig::default(), 4);
        let e0 = agent.epsilon();
        for _ in 0..10 {
            run_episode(&mut env, &mut agent, true);
        }
        assert!(agent.epsilon() < e0);
    }

    #[test]
    fn dqn_q_values_finite() {
        let mut env = CameraControlEnv::new(8, 8, 10, 5);
        let mut agent = DqnAgent::new(env.state_dim(), env.num_actions(), DqnConfig::default(), 6);
        let s = env.reset();
        for _ in 0..5 {
            run_episode(&mut env, &mut agent, true);
        }
        assert!(agent.q_values(&s).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dqn_improves_over_random_on_camera_task() {
        let mut env = CameraControlEnv::new(10, 8, 25, 7);
        let mut dqn = DqnAgent::new(
            env.state_dim(),
            env.num_actions(),
            DqnConfig {
                epsilon_decay: 0.99,
                ..DqnConfig::default()
            },
            8,
        );
        for _ in 0..60 {
            run_episode(&mut env, &mut dqn, true);
        }
        // Evaluate greedily over several episodes.
        dqn.epsilon = 0.0;
        let dqn_score: f64 = (0..10)
            .map(|_| run_episode(&mut env, &mut dqn, false))
            .sum::<f64>()
            / 10.0;
        let mut random = RandomAgent::new(env.num_actions(), 9);
        let rand_score: f64 = (0..10)
            .map(|_| run_episode(&mut env, &mut random, false))
            .sum::<f64>()
            / 10.0;
        assert!(
            dqn_score > rand_score,
            "dqn {dqn_score} should beat random {rand_score}"
        );
    }
}

#[cfg(test)]
mod double_dqn_tests {
    use super::*;
    use crate::camera::CameraControlEnv;
    use crate::env::{run_episode, Environment};
    use scneural::Layer;

    #[test]
    fn double_dqn_trains_and_beats_random() {
        let mut env = CameraControlEnv::new(10, 8, 25, 21);
        let mut agent = DqnAgent::new(
            env.state_dim(),
            env.num_actions(),
            DqnConfig {
                double_dqn: true,
                epsilon_decay: 0.99,
                ..DqnConfig::default()
            },
            22,
        );
        for _ in 0..60 {
            run_episode(&mut env, &mut agent, true);
        }
        agent.epsilon = 0.0;
        let score: f64 = (0..10)
            .map(|_| run_episode(&mut env, &mut agent, false))
            .sum::<f64>()
            / 10.0;
        let mut random = RandomAgent::new(env.num_actions(), 23);
        let rand_score: f64 = (0..10)
            .map(|_| run_episode(&mut env, &mut random, false))
            .sum::<f64>()
            / 10.0;
        assert!(
            score > rand_score,
            "double-dqn {score} vs random {rand_score}"
        );
    }

    #[test]
    fn double_and_plain_produce_different_updates() {
        // Hand-set weights so the online and target nets disagree on the
        // best next action: plain DQN backs up max-target (value 2), Double
        // DQN backs up target[argmax online] (value 0) — one training step
        // must therefore move the two agents apart.
        let make = |double| {
            DqnAgent::new(
                4,
                3,
                DqnConfig {
                    double_dqn: double,
                    batch_size: 8,
                    hidden: 2,
                    ..DqnConfig::default()
                },
                7,
            )
        };
        let mut plain = make(false);
        let mut double = make(true);
        for agent in [&mut plain, &mut double] {
            // Zero every weight; then final online bias prefers action 1,
            // final target bias prefers action 2.
            for p in agent.online.params_mut() {
                for w in p.value.data_mut() {
                    *w = 0.0;
                }
            }
            for p in agent.target.params_mut() {
                for w in p.value.data_mut() {
                    *w = 0.0;
                }
            }
            let mut online_params = agent.online.params_mut();
            let last = online_params.len() - 1;
            online_params[last]
                .value
                .data_mut()
                .copy_from_slice(&[0.0, 1.0, 0.0]);
            let mut target_params = agent.target.params_mut();
            let last = target_params.len() - 1;
            target_params[last]
                .value
                .data_mut()
                .copy_from_slice(&[0.0, 0.0, 2.0]);

            for i in 0..8 {
                agent.replay.push(Transition {
                    state: vec![i as f32 / 8.0; 4],
                    action: 0,
                    reward: 0.0,
                    next_state: vec![(i + 1) as f32 / 8.0; 4],
                    done: false,
                });
            }
            agent.train_batch();
        }
        let s = vec![0.5; 4];
        assert_ne!(plain.q_values(&s), double.q_values(&s));
    }
}
