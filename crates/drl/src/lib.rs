//! # scdrl — deep reinforcement learning
//!
//! The paper's §III-D proposes DRL components "to develop various smart city
//! applications, such as smart camera controls to automatically rotate and
//! zoom in for traffic and crime incidents". This crate implements that
//! stack:
//!
//! - [`Environment`]: the RL interface.
//! - [`CameraControlEnv`]: a camera that pans/zooms over a scene to keep a
//!   moving incident in view — reward for covering it, more when zoomed in.
//! - [`DqnAgent`]: deep Q-learning on the [`scneural`] framework, with
//!   experience replay and a periodically synced target network (the Mnih et
//!   al. recipe the paper cites).
//! - [`TabularQAgent`] and [`RandomAgent`]: baselines for experiment E11.
//!
//! # Examples
//!
//! ```
//! use scdrl::{CameraControlEnv, Environment, RandomAgent, Agent, run_episode};
//!
//! let mut env = CameraControlEnv::new(12, 8, 30, 1);
//! let mut agent = RandomAgent::new(env.num_actions(), 2);
//! let reward = run_episode(&mut env, &mut agent, true);
//! assert!(reward.is_finite());
//! ```

mod agents;
mod camera;
mod env;
mod replay;

pub use agents::{Agent, DqnAgent, DqnConfig, RandomAgent, TabularQAgent};
pub use camera::CameraControlEnv;
pub use env::{run_episode, Environment, Transition};
pub use replay::ReplayBuffer;
