//! Property tests for the metrics layer: whatever is recorded must be
//! reported back faithfully, and percentiles must be ordered.

use proptest::prelude::*;
use sctelemetry::{percentile_sorted, Histogram, SampleSummary, Telemetry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recorded counter adds and histogram observations come back with
    /// exactly the recorded count and sum.
    #[test]
    fn recorded_vs_reported_counts(
        adds in proptest::collection::vec(0u64..1_000, 1..40),
        obs in proptest::collection::vec(1e-6f64..1e3, 1..200),
    ) {
        let t = Telemetry::shared();
        let h = t.handle();
        for &n in &adds {
            h.counter_add("p_ops_total", "ops", n);
        }
        for &v in &obs {
            h.observe("p_lat_seconds", "lat", v);
            h.observe_exact("p_exact_seconds", "exact lat", v);
        }

        let reg = t.registry();
        let total: u64 = adds.iter().sum();
        prop_assert_eq!(reg.get("p_ops_total").unwrap().as_counter().unwrap().get(), total);

        for name in ["p_lat_seconds", "p_exact_seconds"] {
            let s = reg.get(name).unwrap().as_histogram().unwrap().snapshot();
            prop_assert_eq!(s.count, obs.len() as u64);
            let sum: f64 = obs.iter().sum();
            prop_assert!((s.sum - sum).abs() <= sum.abs() * 1e-9 + 1e-9);
        }
    }

    /// p50 ≤ p95 ≤ p99 ≤ max in both histogram modes and in the shared
    /// exact summary, for arbitrary inputs.
    #[test]
    fn percentiles_are_monotone(
        obs in proptest::collection::vec(1e-9f64..1e6, 1..300),
    ) {
        let bucketed = Histogram::bucketed();
        let exact = Histogram::exact();
        for &v in &obs {
            bucketed.observe(v);
            exact.observe(v);
        }
        for h in [&bucketed, &exact] {
            let s = h.snapshot();
            let p50 = s.percentile(0.50).unwrap();
            let p95 = s.percentile(0.95).unwrap();
            let p99 = s.percentile(0.99).unwrap();
            prop_assert!(p50 <= p95 && p95 <= p99 && p99 <= s.max,
                "{p50} {p95} {p99} max={}", s.max);
        }

        let sum = SampleSummary::from_sample(&obs).unwrap();
        prop_assert!(sum.p50 <= sum.p95 && sum.p95 <= sum.p99 && sum.p99 <= sum.max);
        prop_assert_eq!(sum.count, obs.len());
    }

    /// The bucketed percentile brackets the exact nearest-rank value from
    /// below-by-one-bucket and never under-reports it.
    #[test]
    fn bucketed_percentile_dominates_exact(
        obs in proptest::collection::vec(1e-6f64..1e3, 1..200),
        pct in 0.01f64..1.0,
    ) {
        let h = Histogram::bucketed();
        for &v in &obs {
            h.observe(v);
        }
        let mut sorted = obs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let truth = percentile_sorted(&sorted, pct).unwrap();
        let approx = h.snapshot().percentile(pct).unwrap();
        prop_assert!(approx >= truth - 1e-12, "approx {approx} < truth {truth}");
    }

    /// Merging two histograms equals observing both streams into one.
    #[test]
    fn merge_matches_combined_stream(
        a in proptest::collection::vec(1e-6f64..1e3, 0..100),
        b in proptest::collection::vec(1e-6f64..1e3, 0..100),
    ) {
        let ha = Histogram::bucketed();
        let hb = Histogram::bucketed();
        let combined = Histogram::bucketed();
        for &v in &a {
            ha.observe(v);
            combined.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            combined.observe(v);
        }
        ha.merge(&hb);
        let (m, c) = (ha.snapshot(), combined.snapshot());
        prop_assert_eq!(m.count, c.count);
        prop_assert_eq!(m.counts, c.counts);
        prop_assert!((m.sum - c.sum).abs() <= c.sum.abs() * 1e-9 + 1e-9);
    }
}
