//! Shared summary statistics: the single nearest-rank percentile
//! implementation used across the workspace.
//!
//! Several subsystems previously carried their own percentile math with
//! subtly different index conventions (truncation vs. rounding). This
//! module fixes one convention — **nearest-rank**: the p-th percentile of a
//! sorted sample of n values is the value at index `ceil(p·n) - 1`
//! (clamped) — so p50/p95/p99 agree everywhere, from the fog simulator's
//! latency report to the bench tables.

/// Nearest-rank percentile of an **already sorted** slice.
///
/// `p` is a fraction in `[0, 1]`. Returns `None` on an empty slice.
/// `p = 0` yields the minimum, `p = 1` the maximum, and the result is
/// always an element of the sample (no interpolation), which keeps the
/// statistic exact and deterministic.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        (0.0..=1.0).contains(&p),
        "percentile fraction out of range: {p}"
    );
    let n = sorted.len();
    let rank = (p * n as f64).ceil() as usize;
    let idx = rank.saturating_sub(1).min(n - 1);
    Some(sorted[idx])
}

/// Nearest-rank percentile of an unsorted sample (sorts a copy).
///
/// Convenience for call sites that only need one or two percentiles from a
/// small sample; hot paths should sort once and call
/// [`percentile_sorted`] repeatedly.
pub fn percentile(sample: &[f64], p: f64) -> Option<f64> {
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, p)
}

/// Arithmetic mean; `None` on an empty slice.
pub fn mean(sample: &[f64]) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    Some(sample.iter().sum::<f64>() / sample.len() as f64)
}

/// A small always-exact summary of one sample: count, sum, min, max and the
/// standard percentile trio. Used for report structs that quote exact
/// order statistics rather than bucketed approximations.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSummary {
    /// Number of observations.
    pub count: usize,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (nearest-rank p50).
    pub p50: f64,
    /// Nearest-rank p95.
    pub p95: f64,
    /// Nearest-rank p99.
    pub p99: f64,
}

impl SampleSummary {
    /// Summarizes a sample; `None` if it is empty.
    pub fn from_sample(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() {
            return None;
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(SampleSummary {
            count: sorted.len(),
            sum: sorted.iter().sum(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: percentile_sorted(&sorted, 0.50).expect("non-empty"),
            p95: percentile_sorted(&sorted, 0.95).expect("non-empty"),
            p99: percentile_sorted(&sorted, 0.99).expect("non-empty"),
        })
    }

    /// Arithmetic mean of the sample.
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(percentile_sorted(&[], 0.5), None);
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(mean(&[]), None);
        assert!(SampleSummary::from_sample(&[]).is_none());
    }

    #[test]
    fn nearest_rank_convention() {
        // Classic nearest-rank example: 5 values, p50 → ceil(2.5)=3rd value.
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile_sorted(&v, 0.50), Some(35.0));
        assert_eq!(percentile_sorted(&v, 0.30), Some(20.0));
        assert_eq!(percentile_sorted(&v, 0.40), Some(20.0));
        assert_eq!(percentile_sorted(&v, 0.0), Some(15.0));
        assert_eq!(percentile_sorted(&v, 1.0), Some(50.0));
    }

    #[test]
    fn single_value() {
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(percentile_sorted(&[7.0], p), Some(7.0));
        }
    }

    #[test]
    fn unsorted_input() {
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 0.5), Some(5.0));
    }

    #[test]
    fn summary_orders_percentiles() {
        let s = SampleSummary::from_sample(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean() - 3.875).abs() < 1e-12);
    }
}
