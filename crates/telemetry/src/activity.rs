//! The worker-activity board: which kernel each thread is running *right
//! now*, for wall-clock samplers.
//!
//! This is the **explicitly nondeterministic** half of profiling. The
//! board is a process-global map from thread to current kernel label,
//! updated by [`ActivityScope`] guards at kernel entry/exit and read by a
//! sampler (see `scprof::Sampler`) at a fixed wall-clock period. Sample
//! counts depend on scheduling and machine speed, so anything derived from
//! the board must stay out of goldens.
//!
//! The board is disabled by default; every `ActivityScope` then costs one
//! relaxed atomic load and nothing else, so kernels can be annotated
//! unconditionally. Deterministic work accounting never reads this module
//! — it flows through [`crate::WorkDelta`] instead.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD_KEY: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_KEY: u64 = NEXT_THREAD_KEY.fetch_add(1, Ordering::Relaxed);
}

fn board() -> &'static Mutex<BTreeMap<u64, Vec<String>>> {
    static BOARD: OnceLock<Mutex<BTreeMap<u64, Vec<String>>>> = OnceLock::new();
    BOARD.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Turns the activity board on or off (process-global). Off clears it.
pub fn set_activity_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::SeqCst);
    if !enabled {
        board().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Whether the board is currently collecting.
pub fn activity_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Snapshot of `(thread key, innermost kernel label)` for every thread
/// currently inside an [`ActivityScope`]. Keys are stable per thread for
/// the life of the process but carry no cross-run meaning.
pub fn activity_snapshot() -> Vec<(u64, String)> {
    board()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .filter_map(|(k, stack)| stack.last().map(|l| (*k, l.clone())))
        .collect()
}

/// RAII guard marking the current thread as running `label`. Scopes nest:
/// the innermost label wins, and dropping restores the outer one.
#[derive(Debug)]
pub struct ActivityScope {
    active: bool,
}

impl ActivityScope {
    /// Enters kernel `label` on this thread. When the board is disabled
    /// this is one atomic load — no allocation, no lock.
    pub fn enter(label: &str) -> ActivityScope {
        if !activity_enabled() {
            return ActivityScope { active: false };
        }
        let key = THREAD_KEY.with(|k| *k);
        board()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_default()
            .push(label.to_string());
        ActivityScope { active: true }
    }
}

impl Drop for ActivityScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let key = THREAD_KEY.with(|k| *k);
        let mut map = board().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stack) = map.get_mut(&key) {
            stack.pop();
            if stack.is_empty() {
                map.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scope_is_inert() {
        // Never enable the board in this test: it may run concurrently
        // with others. A scope entered while disabled records nothing.
        let s = ActivityScope::enter("neural/matmul");
        drop(s);
    }

    #[test]
    fn scopes_nest_and_clear() {
        set_activity_enabled(true);
        {
            let _outer = ActivityScope::enter("pipeline/mine");
            let snap = activity_snapshot();
            assert!(snap.iter().any(|(_, l)| l == "pipeline/mine"));
            {
                let _inner = ActivityScope::enter("compute/kmeans/assign");
                let snap = activity_snapshot();
                assert!(snap.iter().any(|(_, l)| l == "compute/kmeans/assign"));
            }
            let snap = activity_snapshot();
            assert!(snap.iter().any(|(_, l)| l == "pipeline/mine"));
        }
        set_activity_enabled(false);
        assert!(activity_snapshot().is_empty());
    }
}
