//! # sctelemetry — sim-time-aware observability for the smart-city stack
//!
//! The paper's four-layer cyberinfrastructure is defined by latencies, queue
//! depths, and cross-tier byte flows; this crate is the layer that makes
//! those visible. It provides:
//!
//! - a [`MetricsRegistry`] of [`Counter`]s, [`Gauge`]s, and [`Histogram`]s
//!   (log-scaled buckets for unbounded volumes, exact samples for
//!   report-grade order statistics),
//! - sim-time-aware [`trace::SpanRecord`]s and [`trace::EventRecord`]s whose
//!   timestamps are `simclock::SimTime`, so traces are **deterministic**:
//!   the same seed produces byte-identical exports,
//! - exporters: a deterministic JSON snapshot ([`json_snapshot`]) and a
//!   Prometheus text-format dump ([`prometheus_text`]).
//!
//! Instrumented code holds a [`TelemetryHandle`]; the disabled default costs
//! one `Option` check per call site (a few nanoseconds, no allocation), so
//! instrumentation stays unconditionally compiled in. Attach a full
//! [`Telemetry`] recorder to collect, or any custom [`Recorder`].
//!
//! Metric names follow `<crate>_<subsystem>_<thing>_<unit>`
//! (e.g. `scfog_sim_queue_wait_edge_seconds`); counters end in `_total`.
//!
//! # Examples
//!
//! ```
//! use sctelemetry::{Telemetry, prometheus_text};
//! use simclock::SimTime;
//!
//! let t = Telemetry::shared();
//! let h = t.handle();
//! h.counter_inc("demo_jobs_total", "jobs processed");
//! h.observe("demo_latency_seconds", "job latency", 0.012);
//! h.span("demo", "job", SimTime::ZERO, SimTime::from_millis(12));
//! let text = prometheus_text(t.registry());
//! assert!(text.contains("# TYPE demo_jobs_total counter"));
//! ```

pub mod activity;
pub mod export;
pub mod metrics;
pub mod report;
pub mod stats;
pub mod trace;
pub mod work;

pub use activity::{activity_enabled, activity_snapshot, set_activity_enabled, ActivityScope};
pub use export::{json_snapshot, prometheus_text, trace_json};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramMode, HistogramSnapshot, Metric, MetricEntry, MetricError,
    MetricsRegistry,
};
pub use report::Report;
pub use stats::{mean, percentile, percentile_sorted, SampleSummary};
pub use trace::{
    EventRecord, NoopRecorder, Recorder, SpanContext, SpanGuard, SpanId, SpanRecord, Telemetry,
    TelemetryHandle, TraceId, TraceRecord, WallTimer, STREAM_FOG, STREAM_PIPELINE, STREAM_SERVE,
};
pub use work::WorkDelta;
