//! Sim-time-aware spans and events, the [`Recorder`] sink trait, and the
//! cheap [`TelemetryHandle`] that instrumented code holds.
//!
//! Simulated subsystems do not share a wall clock — their notion of "when"
//! is `simclock::SimTime`. Spans therefore carry explicit start/end sim
//! times supplied by the caller, which makes traces **deterministic**: the
//! same seed produces byte-identical trace output. Wall-clock timing (for
//! benches and real pipelines) goes through [`TelemetryHandle::wall_timer`],
//! which feeds a histogram instead of the trace.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use simclock::SimTime;

use crate::work::WorkDelta;

/// `splitmix64` finalizer: the id-derivation mixer. Bijective over `u64`,
/// so distinct inputs can never collide, and pure arithmetic, so deriving
/// ids costs nothing even with telemetry disabled.
#[inline]
const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Trace-id stream salt for scserve request traces (see
/// [`TraceId::derive`]).
pub const STREAM_SERVE: u64 = 1;
/// Trace-id stream salt for scfog job traces.
pub const STREAM_FOG: u64 = 2;
/// Trace-id stream salt for smartcity-core pipeline runs.
pub const STREAM_PIPELINE: u64 = 3;

/// Identifier of one causal trace: one request, job, or pipeline run.
///
/// Derived deterministically from `(seed, stream, index)` — never random —
/// so the same seed names the same traces on every run and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derives the id of the `index`-th trace of `stream` under `seed`.
    ///
    /// `stream` namespaces independent trace sources sharing one recorder
    /// (e.g. serving requests vs. fog jobs) so their indices cannot
    /// collide.
    pub const fn derive(seed: u64, stream: u64, index: u64) -> TraceId {
        TraceId(mix64(
            mix64(seed ^ stream.wrapping_mul(0xD1B5_4A32_D192_ED03)) ^ index,
        ))
    }

    /// Fixed-width lowercase hex rendering (the export format).
    pub fn as_hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Identifier of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Fixed-width lowercase hex rendering (the export format).
    pub fn as_hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Propagated causal context: which trace a span belongs to, its own id,
/// and its parent span (if any). `Copy`, arithmetic-only derivation — the
/// context can flow through request paths with zero allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The parent span, or `None` for a trace root.
    pub parent: Option<SpanId>,
}

impl SpanContext {
    /// The root context of `trace`.
    pub const fn root(trace: TraceId) -> SpanContext {
        SpanContext {
            trace,
            span: SpanId(mix64(trace.0 ^ 0xA0B4_28DB)),
            parent: None,
        }
    }

    /// The context of this span's `seq`-th child. Deterministic: child ids
    /// depend only on the trace, the parent span, and the sequence number.
    pub const fn child(&self, seq: u64) -> SpanContext {
        SpanContext {
            trace: self.trace,
            span: SpanId(mix64(
                self.trace.0
                    ^ self.span.0
                    ^ seq.wrapping_add(1).wrapping_mul(0x5851_F42D_4C95_7F2D),
            )),
            parent: Some(self.span),
        }
    }
}

/// A completed span: a named interval of simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Subsystem that produced the span (e.g. `"scfog"`, `"pipeline"`).
    pub target: String,
    /// Operation name (e.g. `"ingest"`, `"stage/annotate"`).
    pub name: String,
    /// When the operation began, in simulated time.
    pub start: SimTime,
    /// When it finished, in simulated time.
    pub end: SimTime,
    /// Causal context, when the producer propagates one. Context-less
    /// spans remain valid (system-level annotations outside any trace).
    pub ctx: Option<SpanContext>,
}

impl SpanRecord {
    /// Span duration in (simulated) seconds.
    pub fn duration_s(&self) -> f64 {
        self.end.saturating_since(self.start).as_secs_f64()
    }
}

/// A point-in-time annotation on the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Subsystem that produced the event.
    pub target: String,
    /// Event name (e.g. `"replication/start"`).
    pub name: String,
    /// When it happened, in simulated time.
    pub at: SimTime,
    /// Free-form detail (kept short; exported verbatim).
    pub detail: String,
}

/// Ordered trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// See [`SpanRecord`].
    Span(SpanRecord),
    /// See [`EventRecord`].
    Event(EventRecord),
}

impl TraceRecord {
    /// Sort key: the record's (start) sim time.
    pub fn at(&self) -> SimTime {
        match self {
            TraceRecord::Span(s) => s.start,
            TraceRecord::Event(e) => e.at,
        }
    }

    /// The producing subsystem.
    pub fn target(&self) -> &str {
        match self {
            TraceRecord::Span(s) => &s.target,
            TraceRecord::Event(e) => &e.target,
        }
    }

    /// The operation or event name.
    pub fn name(&self) -> &str {
        match self {
            TraceRecord::Span(s) => &s.name,
            TraceRecord::Event(e) => &e.name,
        }
    }
}

/// Sink for telemetry signals. All methods default to no-ops so a recorder
/// may implement only what it cares about; [`NoopRecorder`] implements
/// nothing at all.
pub trait Recorder: Send + Sync {
    /// Adds to a named counter.
    fn add_to_counter(&self, name: &str, help: &str, n: u64) {
        let _ = (name, help, n);
    }

    /// Sets a named gauge.
    fn set_gauge(&self, name: &str, help: &str, v: i64) {
        let _ = (name, help, v);
    }

    /// Records one observation into a named (bucketed) histogram.
    fn observe(&self, name: &str, help: &str, v: f64) {
        let _ = (name, help, v);
    }

    /// Records one observation into a named **exact** histogram (every
    /// sample retained; percentiles are exact order statistics). For
    /// bounded, report-grade samples only.
    fn observe_exact(&self, name: &str, help: &str, v: f64) {
        let _ = (name, help, v);
    }

    /// Appends a completed span to the trace.
    fn record_span(&self, span: SpanRecord) {
        let _ = span;
    }

    /// Appends an event to the trace.
    fn record_event(&self, event: EventRecord) {
        let _ = event;
    }

    /// Attributes exact work (`flops`, `bytes`, …) to kernel `kernel`.
    ///
    /// Kernel names use `/` as a frame separator, e.g.
    /// `"compute/kmeans/assign"`. Deltas are integers and accumulation is
    /// addition, so totals are independent of thread count — see
    /// [`WorkDelta`]. The standard [`Telemetry`] recorder ignores work;
    /// attach a profiler (e.g. `scprof::Profiler`) to collect it.
    fn record_work(&self, kernel: &str, work: WorkDelta) {
        let _ = (kernel, work);
    }
}

/// Recorder that drops everything (the disabled default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Cheap, cloneable handle held by instrumented code.
///
/// Disabled handles (the default) cost one `Option` check per call site —
/// a few nanoseconds, no allocation, no locking — so instrumentation can
/// stay unconditionally compiled in. Strings for spans/events are only
/// materialized when a recorder is attached.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl TelemetryHandle {
    /// The disabled handle; every operation is a no-op.
    pub fn disabled() -> Self {
        TelemetryHandle { inner: None }
    }

    /// A handle routing to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        TelemetryHandle {
            inner: Some(recorder),
        }
    }

    /// Whether signals are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, help: &str, n: u64) {
        if let Some(r) = &self.inner {
            r.add_to_counter(name, help, n);
        }
    }

    /// Adds one to counter `name`.
    #[inline]
    pub fn counter_inc(&self, name: &str, help: &str) {
        self.counter_add(name, help, 1);
    }

    /// Sets gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &str, help: &str, v: i64) {
        if let Some(r) = &self.inner {
            r.set_gauge(name, help, v);
        }
    }

    /// Observes `v` into bucketed histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, help: &str, v: f64) {
        if let Some(r) = &self.inner {
            r.observe(name, help, v);
        }
    }

    /// Observes `v` into exact histogram `name` (every sample kept).
    #[inline]
    pub fn observe_exact(&self, name: &str, help: &str, v: f64) {
        if let Some(r) = &self.inner {
            r.observe_exact(name, help, v);
        }
    }

    /// Records a completed sim-time span with no causal context.
    #[inline]
    pub fn span(&self, target: &str, name: &str, start: SimTime, end: SimTime) {
        if let Some(r) = &self.inner {
            r.record_span(SpanRecord {
                target: target.to_string(),
                name: name.to_string(),
                start,
                end,
                ctx: None,
            });
        }
    }

    /// Records a completed sim-time span carrying causal context `ctx`.
    /// Disabled handles skip everything — no strings are materialized.
    #[inline]
    pub fn span_in(
        &self,
        target: &str,
        name: &str,
        start: SimTime,
        end: SimTime,
        ctx: SpanContext,
    ) {
        if let Some(r) = &self.inner {
            r.record_span(SpanRecord {
                target: target.to_string(),
                name: name.to_string(),
                start,
                end,
                ctx: Some(ctx),
            });
        }
    }

    /// Opens a span under `ctx`: returns a guard that derives child
    /// contexts ([`SpanGuard::child_ctx`]), records child spans
    /// ([`SpanGuard::child_span`]), and records the span itself on
    /// [`SpanGuard::finish`].
    ///
    /// The guard is `Copy`-field-only (borrowed names, arithmetic-derived
    /// ids): with telemetry disabled, propagating context through it is a
    /// complete no-op — no allocation, no locking.
    pub fn span_guard<'a>(
        &'a self,
        target: &'a str,
        name: &'a str,
        start: SimTime,
        ctx: SpanContext,
    ) -> SpanGuard<'a> {
        SpanGuard {
            handle: self,
            target,
            name,
            start,
            ctx,
            children: 0,
        }
    }

    /// Records a sim-time event. `detail` is only materialized when enabled.
    #[inline]
    pub fn event(&self, target: &str, name: &str, at: SimTime, detail: &str) {
        if let Some(r) = &self.inner {
            r.record_event(EventRecord {
                target: target.to_string(),
                name: name.to_string(),
                at,
                detail: detail.to_string(),
            });
        }
    }

    /// Attributes `work` to kernel `kernel` (see [`Recorder::record_work`]).
    /// Disabled handles skip everything; zero deltas are dropped at the
    /// recorder's discretion, so callers need not special-case them.
    #[inline]
    pub fn work(&self, kernel: &str, work: WorkDelta) {
        if let Some(r) = &self.inner {
            r.record_work(kernel, work);
        }
    }

    /// Starts a wall-clock timer that, on drop, observes elapsed seconds
    /// into histogram `name`. For benches and real (non-simulated) paths.
    pub fn wall_timer<'a>(&'a self, name: &'a str, help: &'a str) -> WallTimer<'a> {
        WallTimer {
            handle: self,
            name,
            help,
            start: if self.is_enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }
}

/// Guard returned by [`TelemetryHandle::wall_timer`].
pub struct WallTimer<'a> {
    handle: &'a TelemetryHandle,
    name: &'a str,
    help: &'a str,
    start: Option<Instant>,
}

impl Drop for WallTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.handle
                .observe(self.name, self.help, start.elapsed().as_secs_f64());
        }
    }
}

/// In-flight span with causal context, returned by
/// [`TelemetryHandle::span_guard`].
///
/// The guard tracks a child sequence counter so that every child context
/// it hands out is distinct and deterministic (child ids depend only on
/// the parent context and the sequence number, never on timing). Nothing
/// is recorded until [`SpanGuard::finish`]; child spans record as they are
/// declared. All derivation is pure arithmetic on `Copy` data, so a guard
/// over a disabled handle allocates nothing.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    handle: &'a TelemetryHandle,
    target: &'a str,
    name: &'a str,
    start: SimTime,
    ctx: SpanContext,
    children: u64,
}

impl SpanGuard<'_> {
    /// This span's context (for propagation into callees).
    pub fn context(&self) -> SpanContext {
        self.ctx
    }

    /// Derives the next child context without recording anything — for
    /// children whose spans are recorded elsewhere (e.g. async completions).
    pub fn child_ctx(&mut self) -> SpanContext {
        let ctx = self.ctx.child(self.children);
        self.children += 1;
        ctx
    }

    /// Records a completed child span `[start, end]` under this span and
    /// returns its context.
    pub fn child_span(&mut self, name: &str, start: SimTime, end: SimTime) -> SpanContext {
        let ctx = self.child_ctx();
        self.handle.span_in(self.target, name, start, end, ctx);
        ctx
    }

    /// Records an event at `at` on this span's target.
    pub fn event(&self, name: &str, at: SimTime, detail: &str) {
        self.handle.event(self.target, name, at, detail);
    }

    /// Records the span itself, ending at `end`.
    pub fn finish(self, end: SimTime) {
        self.handle
            .span_in(self.target, self.name, self.start, end, self.ctx);
    }
}

/// The standard full recorder: a [`crate::MetricsRegistry`] plus an ordered
/// trace buffer. Construct once per run, hand out [`TelemetryHandle`]s, and
/// export at the end.
#[derive(Debug, Default)]
pub struct Telemetry {
    registry: crate::MetricsRegistry,
    trace: Mutex<Vec<TraceRecord>>,
}

impl Telemetry {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder wrapped in `Arc`, ready for handles.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// A handle routing to this recorder.
    pub fn handle(self: &Arc<Self>) -> TelemetryHandle {
        TelemetryHandle::new(self.clone() as Arc<dyn Recorder>)
    }

    /// The metric store.
    pub fn registry(&self) -> &crate::MetricsRegistry {
        &self.registry
    }

    /// Copy of the trace, ordered by `(sim time, target, name)` — a total
    /// enough key that recording order (which may vary under concurrency)
    /// never leaks into exports. The sort is stable for full ties.
    pub fn trace(&self) -> Vec<TraceRecord> {
        let mut t = self.trace.lock().unwrap_or_else(|e| e.into_inner()).clone();
        t.sort_by(|a, b| {
            a.at()
                .cmp(&b.at())
                .then_with(|| a.target().cmp(b.target()))
                .then_with(|| a.name().cmp(b.name()))
        });
        t
    }

    /// Number of trace records.
    pub fn trace_len(&self) -> usize {
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Recorder for Telemetry {
    fn add_to_counter(&self, name: &str, help: &str, n: u64) {
        self.registry
            .counter(name, help)
            .as_counter()
            .expect("counter")
            .add(n);
    }

    fn set_gauge(&self, name: &str, help: &str, v: i64) {
        self.registry
            .gauge(name, help)
            .as_gauge()
            .expect("gauge")
            .set(v);
    }

    fn observe(&self, name: &str, help: &str, v: f64) {
        self.registry
            .histogram(name, help)
            .as_histogram()
            .expect("histogram")
            .observe(v);
    }

    fn observe_exact(&self, name: &str, help: &str, v: f64) {
        self.registry
            .exact_histogram(name, help)
            .as_histogram()
            .expect("histogram")
            .observe(v);
    }

    fn record_span(&self, span: SpanRecord) {
        self.trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(TraceRecord::Span(span));
    }

    fn record_event(&self, event: EventRecord) {
        self.trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(TraceRecord::Event(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        h.counter_inc("x_total", "x");
        h.observe("y_seconds", "y", 1.0);
        h.span("t", "s", SimTime::from_secs(0), SimTime::from_secs(1));
        drop(h.wall_timer("w_seconds", "w"));
    }

    #[test]
    fn telemetry_records_everything() {
        let t = Telemetry::shared();
        let h = t.handle();
        assert!(h.is_enabled());
        h.counter_add("jobs_total", "jobs", 5);
        h.gauge_set("lag", "lag", 3);
        h.observe("latency_seconds", "lat", 0.25);
        h.observe_exact("exact_seconds", "exact lat", 0.5);
        h.span(
            "sim",
            "job",
            SimTime::from_millis(10),
            SimTime::from_millis(30),
        );
        h.event("sim", "done", SimTime::from_millis(30), "ok");

        assert_eq!(
            t.registry()
                .get("jobs_total")
                .unwrap()
                .as_counter()
                .unwrap()
                .get(),
            5
        );
        assert_eq!(
            t.registry().get("lag").unwrap().as_gauge().unwrap().get(),
            3
        );
        let exact = t.registry().get("exact_seconds").unwrap();
        assert_eq!(
            exact.as_histogram().unwrap().mode(),
            crate::HistogramMode::Exact
        );
        let trace = t.trace();
        assert_eq!(trace.len(), 2);
        match &trace[0] {
            TraceRecord::Span(s) => assert!((s.duration_s() - 0.020).abs() < 1e-12),
            other => panic!("expected span first, got {other:?}"),
        }
    }

    #[test]
    fn trace_sorts_by_sim_time() {
        let t = Telemetry::shared();
        let h = t.handle();
        h.event("a", "late", SimTime::from_secs(9), "");
        h.event("a", "early", SimTime::from_secs(1), "");
        let trace = t.trace();
        assert_eq!(trace[0].at(), SimTime::from_secs(1));
        assert_eq!(trace[1].at(), SimTime::from_secs(9));
    }

    #[test]
    fn trace_ids_are_deterministic_and_stream_scoped() {
        assert_eq!(TraceId::derive(42, 1, 7), TraceId::derive(42, 1, 7));
        assert_ne!(TraceId::derive(42, 1, 7), TraceId::derive(42, 2, 7));
        assert_ne!(TraceId::derive(42, 1, 7), TraceId::derive(43, 1, 7));
        assert_eq!(TraceId(0xabc).as_hex(), "0000000000000abc");
    }

    #[test]
    fn child_contexts_are_distinct_and_parented() {
        let root = SpanContext::root(TraceId::derive(1, 1, 0));
        assert!(root.parent.is_none());
        let a = root.child(0);
        let b = root.child(1);
        assert_eq!(a.parent, Some(root.span));
        assert_eq!(a.trace, root.trace);
        assert_ne!(a.span, b.span);
        assert_ne!(a.span, root.span);
        // Grandchildren diverge from children even at the same seq.
        assert_ne!(a.child(0).span, b.child(0).span);
    }

    #[test]
    fn span_guard_records_root_and_children() {
        let t = Telemetry::shared();
        let h = t.handle();
        let root = SpanContext::root(TraceId::derive(9, 1, 0));
        let mut g = h.span_guard("tgt", "request", SimTime::ZERO, root);
        let c0 = g.child_span("queue", SimTime::ZERO, SimTime::from_millis(1));
        let c1 = g.child_ctx();
        h.span_in(
            "tgt",
            "backend",
            SimTime::from_millis(1),
            SimTime::from_millis(3),
            c1,
        );
        g.finish(SimTime::from_millis(3));

        let spans: Vec<SpanRecord> = t
            .trace()
            .into_iter()
            .filter_map(|r| match r {
                TraceRecord::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 3);
        for s in &spans {
            assert_eq!(s.ctx.unwrap().trace, root.trace);
        }
        assert_eq!(c0.parent, Some(root.span));
        assert_eq!(c1.parent, Some(root.span));
        assert_ne!(c0.span, c1.span);
        let root_span = spans.iter().find(|s| s.name == "request").unwrap();
        assert_eq!(root_span.ctx.unwrap().parent, None);
    }

    #[test]
    fn disabled_span_guard_is_inert() {
        let h = TelemetryHandle::disabled();
        let root = SpanContext::root(TraceId::derive(3, 1, 0));
        let mut g = h.span_guard("tgt", "request", SimTime::ZERO, root);
        let child = g.child_span("c", SimTime::ZERO, SimTime::from_millis(1));
        assert_eq!(child.parent, Some(root.span));
        g.finish(SimTime::from_millis(1));
    }

    #[test]
    fn dynamic_metric_names_work() {
        let t = Telemetry::shared();
        let h = t.handle();
        for tier in ["edge", "fog"] {
            h.observe(&format!("scfog_sim_busy_{tier}_seconds"), "busy", 0.1);
        }
        assert!(t.registry().get("scfog_sim_busy_edge_seconds").is_some());
        assert!(t.registry().get("scfog_sim_busy_fog_seconds").is_some());
    }
}
