//! Sim-time-aware spans and events, the [`Recorder`] sink trait, and the
//! cheap [`TelemetryHandle`] that instrumented code holds.
//!
//! Simulated subsystems do not share a wall clock — their notion of "when"
//! is `simclock::SimTime`. Spans therefore carry explicit start/end sim
//! times supplied by the caller, which makes traces **deterministic**: the
//! same seed produces byte-identical trace output. Wall-clock timing (for
//! benches and real pipelines) goes through [`TelemetryHandle::wall_timer`],
//! which feeds a histogram instead of the trace.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use simclock::SimTime;

/// A completed span: a named interval of simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Subsystem that produced the span (e.g. `"scfog"`, `"pipeline"`).
    pub target: String,
    /// Operation name (e.g. `"ingest"`, `"stage/annotate"`).
    pub name: String,
    /// When the operation began, in simulated time.
    pub start: SimTime,
    /// When it finished, in simulated time.
    pub end: SimTime,
}

impl SpanRecord {
    /// Span duration in (simulated) seconds.
    pub fn duration_s(&self) -> f64 {
        self.end.saturating_since(self.start).as_secs_f64()
    }
}

/// A point-in-time annotation on the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Subsystem that produced the event.
    pub target: String,
    /// Event name (e.g. `"replication/start"`).
    pub name: String,
    /// When it happened, in simulated time.
    pub at: SimTime,
    /// Free-form detail (kept short; exported verbatim).
    pub detail: String,
}

/// Ordered trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// See [`SpanRecord`].
    Span(SpanRecord),
    /// See [`EventRecord`].
    Event(EventRecord),
}

impl TraceRecord {
    /// Sort key: the record's (start) sim time.
    pub fn at(&self) -> SimTime {
        match self {
            TraceRecord::Span(s) => s.start,
            TraceRecord::Event(e) => e.at,
        }
    }
}

/// Sink for telemetry signals. All methods default to no-ops so a recorder
/// may implement only what it cares about; [`NoopRecorder`] implements
/// nothing at all.
pub trait Recorder: Send + Sync {
    /// Adds to a named counter.
    fn add_to_counter(&self, name: &str, help: &str, n: u64) {
        let _ = (name, help, n);
    }

    /// Sets a named gauge.
    fn set_gauge(&self, name: &str, help: &str, v: i64) {
        let _ = (name, help, v);
    }

    /// Records one observation into a named (bucketed) histogram.
    fn observe(&self, name: &str, help: &str, v: f64) {
        let _ = (name, help, v);
    }

    /// Records one observation into a named **exact** histogram (every
    /// sample retained; percentiles are exact order statistics). For
    /// bounded, report-grade samples only.
    fn observe_exact(&self, name: &str, help: &str, v: f64) {
        let _ = (name, help, v);
    }

    /// Appends a completed span to the trace.
    fn record_span(&self, span: SpanRecord) {
        let _ = span;
    }

    /// Appends an event to the trace.
    fn record_event(&self, event: EventRecord) {
        let _ = event;
    }
}

/// Recorder that drops everything (the disabled default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Cheap, cloneable handle held by instrumented code.
///
/// Disabled handles (the default) cost one `Option` check per call site —
/// a few nanoseconds, no allocation, no locking — so instrumentation can
/// stay unconditionally compiled in. Strings for spans/events are only
/// materialized when a recorder is attached.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl TelemetryHandle {
    /// The disabled handle; every operation is a no-op.
    pub fn disabled() -> Self {
        TelemetryHandle { inner: None }
    }

    /// A handle routing to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        TelemetryHandle {
            inner: Some(recorder),
        }
    }

    /// Whether signals are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, help: &str, n: u64) {
        if let Some(r) = &self.inner {
            r.add_to_counter(name, help, n);
        }
    }

    /// Adds one to counter `name`.
    #[inline]
    pub fn counter_inc(&self, name: &str, help: &str) {
        self.counter_add(name, help, 1);
    }

    /// Sets gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &str, help: &str, v: i64) {
        if let Some(r) = &self.inner {
            r.set_gauge(name, help, v);
        }
    }

    /// Observes `v` into bucketed histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, help: &str, v: f64) {
        if let Some(r) = &self.inner {
            r.observe(name, help, v);
        }
    }

    /// Observes `v` into exact histogram `name` (every sample kept).
    #[inline]
    pub fn observe_exact(&self, name: &str, help: &str, v: f64) {
        if let Some(r) = &self.inner {
            r.observe_exact(name, help, v);
        }
    }

    /// Records a completed sim-time span.
    #[inline]
    pub fn span(&self, target: &str, name: &str, start: SimTime, end: SimTime) {
        if let Some(r) = &self.inner {
            r.record_span(SpanRecord {
                target: target.to_string(),
                name: name.to_string(),
                start,
                end,
            });
        }
    }

    /// Records a sim-time event. `detail` is only materialized when enabled.
    #[inline]
    pub fn event(&self, target: &str, name: &str, at: SimTime, detail: &str) {
        if let Some(r) = &self.inner {
            r.record_event(EventRecord {
                target: target.to_string(),
                name: name.to_string(),
                at,
                detail: detail.to_string(),
            });
        }
    }

    /// Starts a wall-clock timer that, on drop, observes elapsed seconds
    /// into histogram `name`. For benches and real (non-simulated) paths.
    pub fn wall_timer<'a>(&'a self, name: &'a str, help: &'a str) -> WallTimer<'a> {
        WallTimer {
            handle: self,
            name,
            help,
            start: if self.is_enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }
}

/// Guard returned by [`TelemetryHandle::wall_timer`].
pub struct WallTimer<'a> {
    handle: &'a TelemetryHandle,
    name: &'a str,
    help: &'a str,
    start: Option<Instant>,
}

impl Drop for WallTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.handle
                .observe(self.name, self.help, start.elapsed().as_secs_f64());
        }
    }
}

/// The standard full recorder: a [`crate::MetricsRegistry`] plus an ordered
/// trace buffer. Construct once per run, hand out [`TelemetryHandle`]s, and
/// export at the end.
#[derive(Debug, Default)]
pub struct Telemetry {
    registry: crate::MetricsRegistry,
    trace: Mutex<Vec<TraceRecord>>,
}

impl Telemetry {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder wrapped in `Arc`, ready for handles.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// A handle routing to this recorder.
    pub fn handle(self: &Arc<Self>) -> TelemetryHandle {
        TelemetryHandle::new(self.clone() as Arc<dyn Recorder>)
    }

    /// The metric store.
    pub fn registry(&self) -> &crate::MetricsRegistry {
        &self.registry
    }

    /// Copy of the trace, ordered by sim time (stable for equal times).
    pub fn trace(&self) -> Vec<TraceRecord> {
        let mut t = self.trace.lock().unwrap_or_else(|e| e.into_inner()).clone();
        t.sort_by_key(|r| r.at());
        t
    }

    /// Number of trace records.
    pub fn trace_len(&self) -> usize {
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl Recorder for Telemetry {
    fn add_to_counter(&self, name: &str, help: &str, n: u64) {
        self.registry
            .counter(name, help)
            .as_counter()
            .expect("counter")
            .add(n);
    }

    fn set_gauge(&self, name: &str, help: &str, v: i64) {
        self.registry
            .gauge(name, help)
            .as_gauge()
            .expect("gauge")
            .set(v);
    }

    fn observe(&self, name: &str, help: &str, v: f64) {
        self.registry
            .histogram(name, help)
            .as_histogram()
            .expect("histogram")
            .observe(v);
    }

    fn observe_exact(&self, name: &str, help: &str, v: f64) {
        self.registry
            .exact_histogram(name, help)
            .as_histogram()
            .expect("histogram")
            .observe(v);
    }

    fn record_span(&self, span: SpanRecord) {
        self.trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(TraceRecord::Span(span));
    }

    fn record_event(&self, event: EventRecord) {
        self.trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(TraceRecord::Event(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        h.counter_inc("x_total", "x");
        h.observe("y_seconds", "y", 1.0);
        h.span("t", "s", SimTime::from_secs(0), SimTime::from_secs(1));
        drop(h.wall_timer("w_seconds", "w"));
    }

    #[test]
    fn telemetry_records_everything() {
        let t = Telemetry::shared();
        let h = t.handle();
        assert!(h.is_enabled());
        h.counter_add("jobs_total", "jobs", 5);
        h.gauge_set("lag", "lag", 3);
        h.observe("latency_seconds", "lat", 0.25);
        h.observe_exact("exact_seconds", "exact lat", 0.5);
        h.span(
            "sim",
            "job",
            SimTime::from_millis(10),
            SimTime::from_millis(30),
        );
        h.event("sim", "done", SimTime::from_millis(30), "ok");

        assert_eq!(
            t.registry()
                .get("jobs_total")
                .unwrap()
                .as_counter()
                .unwrap()
                .get(),
            5
        );
        assert_eq!(
            t.registry().get("lag").unwrap().as_gauge().unwrap().get(),
            3
        );
        let exact = t.registry().get("exact_seconds").unwrap();
        assert_eq!(
            exact.as_histogram().unwrap().mode(),
            crate::HistogramMode::Exact
        );
        let trace = t.trace();
        assert_eq!(trace.len(), 2);
        match &trace[0] {
            TraceRecord::Span(s) => assert!((s.duration_s() - 0.020).abs() < 1e-12),
            other => panic!("expected span first, got {other:?}"),
        }
    }

    #[test]
    fn trace_sorts_by_sim_time() {
        let t = Telemetry::shared();
        let h = t.handle();
        h.event("a", "late", SimTime::from_secs(9), "");
        h.event("a", "early", SimTime::from_secs(1), "");
        let trace = t.trace();
        assert_eq!(trace[0].at(), SimTime::from_secs(1));
        assert_eq!(trace[1].at(), SimTime::from_secs(9));
    }

    #[test]
    fn dynamic_metric_names_work() {
        let t = Telemetry::shared();
        let h = t.handle();
        for tier in ["edge", "fog"] {
            h.observe(&format!("scfog_sim_busy_{tier}_seconds"), "busy", 0.1);
        }
        assert!(t.registry().get("scfog_sim_busy_edge_seconds").is_some());
        assert!(t.registry().get("scfog_sim_busy_fog_seconds").is_some());
    }
}
