//! Deterministic work accounting: the [`WorkDelta`] attributed to named
//! kernels via [`crate::Recorder::record_work`].
//!
//! A `WorkDelta` is a bundle of exact integer costs — floating-point
//! operations, bytes moved, modeled cache hits/misses, items processed —
//! attributed to one named kernel (e.g. `"neural/matmul"`). Because every
//! field is an integer and accumulation is pure addition (commutative and
//! associative), per-kernel totals are **independent of thread count and
//! scheduling**: the same seed yields byte-identical profiles at any
//! `SCPAR_THREADS`. Only derived *rates* (GFLOP/s) depend on a clock.
//!
//! Kernel names use `/` as a frame separator (`"compute/kmeans/assign"`)
//! so profiles can be folded into flamegraph stacks.

use std::ops::{Add, AddAssign};

/// Exact integer costs attributed to one kernel invocation (or a batch of
/// them). All fields default to zero; use the builder-style constructors
/// to set the dimensions a kernel actually spends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkDelta {
    /// Floating-point operations (multiply-adds count as two).
    pub flops: u64,
    /// Bytes read plus bytes written by the kernel.
    pub bytes: u64,
    /// Modeled cache hits (e.g. KC-panel reuse in blocked matmul).
    pub cache_hits: u64,
    /// Modeled cache misses (cold panel loads).
    pub cache_misses: u64,
    /// Logical items processed (rows, events, requests, points).
    pub items: u64,
}

impl WorkDelta {
    /// A delta of `n` floating-point operations.
    pub const fn flops(n: u64) -> WorkDelta {
        WorkDelta {
            flops: n,
            bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            items: 0,
        }
    }

    /// A delta of `n` logical items.
    pub const fn items(n: u64) -> WorkDelta {
        WorkDelta {
            flops: 0,
            bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            items: n,
        }
    }

    /// A delta of `n` bytes moved.
    pub const fn bytes(n: u64) -> WorkDelta {
        WorkDelta {
            flops: 0,
            bytes: n,
            cache_hits: 0,
            cache_misses: 0,
            items: 0,
        }
    }

    /// Sets the bytes-moved dimension.
    pub const fn with_bytes(mut self, n: u64) -> WorkDelta {
        self.bytes = n;
        self
    }

    /// Sets the items dimension.
    pub const fn with_items(mut self, n: u64) -> WorkDelta {
        self.items = n;
        self
    }

    /// Sets the modeled cache dimensions.
    pub const fn with_cache(mut self, hits: u64, misses: u64) -> WorkDelta {
        self.cache_hits = hits;
        self.cache_misses = misses;
        self
    }

    /// Whether every dimension is zero.
    pub const fn is_zero(&self) -> bool {
        self.flops == 0
            && self.bytes == 0
            && self.cache_hits == 0
            && self.cache_misses == 0
            && self.items == 0
    }
}

impl Add for WorkDelta {
    type Output = WorkDelta;

    fn add(self, rhs: WorkDelta) -> WorkDelta {
        WorkDelta {
            flops: self.flops + rhs.flops,
            bytes: self.bytes + rhs.bytes,
            cache_hits: self.cache_hits + rhs.cache_hits,
            cache_misses: self.cache_misses + rhs.cache_misses,
            items: self.items + rhs.items,
        }
    }
}

impl AddAssign for WorkDelta {
    fn add_assign(&mut self, rhs: WorkDelta) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let w = WorkDelta::flops(10)
            .with_bytes(80)
            .with_items(2)
            .with_cache(3, 1);
        assert_eq!(w.flops, 10);
        assert_eq!(w.bytes, 80);
        assert_eq!(w.items, 2);
        assert_eq!(w.cache_hits, 3);
        assert_eq!(w.cache_misses, 1);
        assert!(!w.is_zero());
        assert!(WorkDelta::default().is_zero());
    }

    #[test]
    fn addition_is_fieldwise() {
        let mut a = WorkDelta::flops(1).with_items(5);
        a += WorkDelta::bytes(7).with_cache(2, 3);
        assert_eq!(
            a,
            WorkDelta::flops(1)
                .with_bytes(7)
                .with_items(5)
                .with_cache(2, 3)
        );
    }
}
