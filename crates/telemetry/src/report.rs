//! A shared, layer-agnostic view over end-of-run reports.
//!
//! Every layer of the stack produces its own report struct — the fog
//! simulator's `SimReport`, the data pipeline's `PipelineReport`, the DFS
//! cluster's `ClusterStats` — and every consumer (dashboards, benches,
//! experiment scripts) wants the same two things from all of them: a flat
//! list of named numbers and a JSON document. [`Report`] is that contract.
//!
//! Implementations must keep [`Report::kv`] **deterministic**: a fixed key
//! set in a fixed order for a given run, so that downstream dashboards and
//! golden-file tests are byte-stable.
//!
//! # Examples
//!
//! ```
//! use sctelemetry::Report;
//!
//! struct Demo {
//!     jobs: usize,
//! }
//!
//! impl Report for Demo {
//!     fn kv(&self) -> Vec<(String, f64)> {
//!         vec![("jobs".to_string(), self.jobs as f64)]
//!     }
//! }
//!
//! let d = Demo { jobs: 7 };
//! assert_eq!(d.to_json()["jobs"], 7.0);
//! ```

use serde_json::{json, Map, Value};

/// A flat, name-ordered numeric summary of one run, renderable as JSON.
///
/// The default [`to_json`](Report::to_json) builds a JSON object straight
/// from [`kv`](Report::kv); override it only when a report has structure
/// that a flat map cannot express.
pub trait Report {
    /// Named numeric facts about the run, in a stable order.
    fn kv(&self) -> Vec<(String, f64)>;

    /// JSON object view of the report (by default, the [`kv`](Report::kv)
    /// pairs as one flat object).
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self.kv() {
            map.insert(k, json!(v));
        }
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;

    impl Report for Fixed {
        fn kv(&self) -> Vec<(String, f64)> {
            vec![("alpha".to_string(), 1.5), ("beta".to_string(), -2.0)]
        }
    }

    #[test]
    fn default_json_mirrors_kv() {
        let json = Fixed.to_json();
        assert_eq!(json["alpha"], 1.5);
        assert_eq!(json["beta"], -2.0);
        assert_eq!(json.as_object().unwrap().len(), 2);
    }
}
