//! Exporters: deterministic JSON snapshots, Prometheus text format, and a
//! JSON trace dump.
//!
//! Determinism contract: the registry iterates metrics in sorted-name order
//! and traces sort by sim time, so two runs with identical seeds produce
//! **byte-identical** output from every function here. Floats are printed
//! with Rust's shortest-roundtrip formatting, which is deterministic.

use std::fmt::Write as _;

use serde_json::{json, Map, Value};

use crate::metrics::{HistogramMode, HistogramSnapshot, Metric, MetricsRegistry};
use crate::trace::{Telemetry, TraceRecord};

/// Quantiles quoted by both exporters for histograms.
const QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

fn f64_json(v: f64) -> Value {
    // The shim serializes non-finite floats as null; make that explicit so
    // empty-histogram min/max export as null rather than NaN surprises.
    if v.is_finite() {
        json!(v)
    } else {
        Value::Null
    }
}

fn histogram_json(snap: &HistogramSnapshot) -> Value {
    let mut m = Map::new();
    m.insert("type".to_string(), json!("histogram"));
    m.insert(
        "mode".to_string(),
        json!(match snap.mode {
            HistogramMode::Bucketed => "bucketed",
            HistogramMode::Exact => "exact",
        }),
    );
    m.insert("count".to_string(), json!(snap.count));
    m.insert("sum".to_string(), f64_json(snap.sum));
    m.insert("min".to_string(), f64_json(snap.min));
    m.insert("max".to_string(), f64_json(snap.max));
    m.insert(
        "mean".to_string(),
        snap.mean().map(f64_json).unwrap_or(Value::Null),
    );
    for (p, label) in QUANTILES {
        m.insert(
            format!("p{}", label.trim_start_matches("0.")),
            snap.percentile(p).map(f64_json).unwrap_or(Value::Null),
        );
    }
    if snap.mode == HistogramMode::Bucketed {
        // Only non-empty buckets: keeps snapshots compact and still exact.
        let buckets: Vec<Value> = snap
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let le = if i < snap.bounds.len() {
                    f64_json(snap.bounds[i])
                } else {
                    json!("+Inf")
                };
                json!({"le": le, "count": c})
            })
            .collect();
        m.insert("buckets".to_string(), Value::Array(buckets));
    }
    Value::Object(m)
}

/// Deterministic JSON snapshot of every metric in the registry.
///
/// Shape: `{"metrics": {"<name>": {"type": ..., "help": ..., ...}}}` with
/// names in sorted order (the registry is a BTree map) — identical seeds
/// produce byte-identical serialized snapshots.
pub fn json_snapshot(registry: &MetricsRegistry) -> Value {
    let mut metrics = Map::new();
    registry.for_each(|name, entry| {
        let mut body = match &entry.metric {
            Metric::Counter(c) => {
                let mut m = Map::new();
                m.insert("type".to_string(), json!("counter"));
                m.insert("value".to_string(), json!(c.get()));
                m
            }
            Metric::Gauge(g) => {
                let mut m = Map::new();
                m.insert("type".to_string(), json!("gauge"));
                m.insert("value".to_string(), json!(g.get()));
                m
            }
            Metric::Histogram(h) => match histogram_json(&h.snapshot()) {
                Value::Object(m) => m,
                _ => unreachable!("histogram_json returns an object"),
            },
        };
        body.insert("help".to_string(), json!(entry.help.clone()));
        metrics.insert(name.to_string(), Value::Object(body));
    });
    json!({ "metrics": Value::Object(metrics) })
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn prom_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    match snap.mode {
        HistogramMode::Bucketed => {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in snap.counts.iter().enumerate() {
                cumulative += c;
                if i < snap.bounds.len() {
                    // Skip leading/trailing all-empty buckets: emit a bucket
                    // line once it carries data, then stop after the rank is
                    // exhausted. Deterministic and much shorter than all 61.
                    if cumulative == 0 {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        prom_f64(snap.bounds[i])
                    );
                    if cumulative == snap.count {
                        break;
                    }
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
            let _ = writeln!(out, "{name}_sum {}", prom_f64(snap.sum));
            let _ = writeln!(out, "{name}_count {}", snap.count);
        }
        HistogramMode::Exact => {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (p, label) in QUANTILES {
                if let Some(v) = snap.percentile(p) {
                    let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", prom_f64(v));
                }
            }
            let _ = writeln!(out, "{name}_sum {}", prom_f64(snap.sum));
            let _ = writeln!(out, "{name}_count {}", snap.count);
        }
    }
}

/// Unit of a metric, inferred from its name suffix (OpenMetrics
/// convention, `_total` stripped first for counters). Returns `None`
/// when the name carries no recognised unit.
pub fn metric_unit(name: &str) -> Option<&'static str> {
    let base = name.strip_suffix("_total").unwrap_or(name);
    if base.ends_with("_seconds") {
        Some("seconds")
    } else if base.ends_with("_ms") || base.ends_with("_millis") {
        Some("milliseconds")
    } else if base.ends_with("_us") || base.ends_with("_micros") {
        Some("microseconds")
    } else if base.ends_with("_bytes") {
        Some("bytes")
    } else if base.ends_with("_ratio") || base.ends_with("_fraction") {
        Some("ratio")
    } else {
        None
    }
}

/// Prometheus text-exposition dump of the registry (`# HELP`/`# TYPE`
/// preambles, `# UNIT` lines for metrics whose names carry a recognised
/// unit suffix, `_bucket`/`_sum`/`_count` series for histograms,
/// summaries with `quantile` labels for exact histograms).
/// Deterministic: metrics are emitted in sorted-name order.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    registry.for_each(|name, entry| {
        if !entry.help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
        }
        if let Some(unit) = metric_unit(name) {
            let _ = writeln!(out, "# UNIT {name} {unit}");
        }
        match &entry.metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", g.get());
            }
            Metric::Histogram(h) => prom_histogram(&mut out, name, &h.snapshot()),
        }
    });
    out
}

/// JSON dump of the recorded trace, sorted deterministically by
/// `(start, target, name)` with span ids as the final tie-break — never by
/// recording order, which may vary under concurrency. Timestamps are
/// integer microseconds of simulated time; spans carrying a causal
/// [`crate::SpanContext`] export `trace`/`span`/`parent` ids as fixed-width
/// hex strings (JSON numbers would lose `u64` precision past 2^53).
pub fn trace_json(telemetry: &Telemetry) -> Value {
    let span_key = |r: &TraceRecord| match r {
        TraceRecord::Span(s) => s.ctx.map(|c| c.span.0).unwrap_or(0),
        TraceRecord::Event(_) => u64::MAX,
    };
    let mut trace = telemetry.trace();
    trace.sort_by(|a, b| {
        a.at()
            .cmp(&b.at())
            .then_with(|| a.target().cmp(b.target()))
            .then_with(|| a.name().cmp(b.name()))
            .then_with(|| span_key(a).cmp(&span_key(b)))
    });
    let records: Vec<Value> = trace
        .iter()
        .map(|r| match r {
            TraceRecord::Span(s) => {
                let mut m = Map::new();
                m.insert("kind".to_string(), json!("span"));
                m.insert("target".to_string(), json!(s.target.clone()));
                m.insert("name".to_string(), json!(s.name.clone()));
                m.insert("start_us".to_string(), json!(s.start.as_micros()));
                m.insert("end_us".to_string(), json!(s.end.as_micros()));
                if let Some(ctx) = s.ctx {
                    m.insert("trace".to_string(), json!(ctx.trace.as_hex()));
                    m.insert("span".to_string(), json!(ctx.span.as_hex()));
                    m.insert(
                        "parent".to_string(),
                        ctx.parent.map(|p| json!(p.as_hex())).unwrap_or(Value::Null),
                    );
                }
                Value::Object(m)
            }
            TraceRecord::Event(e) => json!({
                "kind": "event",
                "target": e.target.clone(),
                "name": e.name.clone(),
                "at_us": e.at.as_micros(),
                "detail": e.detail.clone(),
            }),
        })
        .collect();
    json!({ "trace": Value::Array(records) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimTime;

    fn demo_telemetry() -> std::sync::Arc<Telemetry> {
        let t = Telemetry::shared();
        let h = t.handle();
        h.counter_add("x_jobs_total", "jobs", 7);
        h.gauge_set("x_lag", "lag", -2);
        for i in 1..=100 {
            h.observe("x_latency_seconds", "latency", i as f64 * 1e-3);
        }
        for v in [0.1, 0.2, 0.3] {
            h.observe_exact("x_report_seconds", "report latency", v);
        }
        h.span("demo", "job", SimTime::ZERO, SimTime::from_millis(5));
        h.event("demo", "done", SimTime::from_millis(5), "ok");
        t
    }

    #[test]
    fn prometheus_has_preambles_and_series() {
        let t = demo_telemetry();
        let text = prometheus_text(t.registry());
        assert!(text.contains("# HELP x_jobs_total jobs"));
        assert!(text.contains("# TYPE x_jobs_total counter"));
        assert!(text.contains("x_jobs_total 7"));
        assert!(text.contains("# TYPE x_lag gauge"));
        assert!(text.contains("x_lag -2"));
        assert!(text.contains("# TYPE x_latency_seconds histogram"));
        assert!(text.contains("x_latency_seconds_bucket{le=\"+Inf\"} 100"));
        assert!(text.contains("x_latency_seconds_count 100"));
        assert!(text.contains("# TYPE x_report_seconds summary"));
        assert!(text.contains("x_report_seconds{quantile=\"0.5\"} 0.2"));
    }

    #[test]
    fn unit_lines_follow_the_name_suffix() {
        assert_eq!(metric_unit("x_latency_seconds"), Some("seconds"));
        assert_eq!(metric_unit("x_elapsed_seconds_total"), Some("seconds"));
        assert_eq!(metric_unit("x_p99_ms"), Some("milliseconds"));
        assert_eq!(metric_unit("x_wait_us"), Some("microseconds"));
        assert_eq!(metric_unit("x_heap_bytes"), Some("bytes"));
        assert_eq!(metric_unit("x_shed_fraction"), Some("ratio"));
        assert_eq!(metric_unit("x_jobs_total"), None);
        assert_eq!(metric_unit("x_lag"), None);

        let t = demo_telemetry();
        let text = prometheus_text(t.registry());
        assert!(text.contains("# UNIT x_latency_seconds seconds"));
        assert!(text.contains("# UNIT x_report_seconds seconds"));
        assert!(
            !text.contains("# UNIT x_jobs_total"),
            "unitless names must not get a UNIT line"
        );
    }

    #[test]
    fn bucket_lines_are_cumulative() {
        let t = Telemetry::shared();
        let h = t.handle();
        h.observe("h_seconds", "h", 0.001);
        h.observe("h_seconds", "h", 0.002);
        let text = prometheus_text(t.registry());
        // The +Inf bucket always equals the total count.
        assert!(text.contains("h_seconds_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn json_snapshot_is_deterministic() {
        let a = serde_json::to_string(&json_snapshot(demo_telemetry().registry())).unwrap();
        let b = serde_json::to_string(&json_snapshot(demo_telemetry().registry())).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"x_jobs_total\""));
        assert!(a.contains("\"type\":\"counter\""));
        assert!(a.contains("\"p95\""));
    }

    #[test]
    fn trace_json_orders_by_sim_time() {
        let t = demo_telemetry();
        let v = trace_json(&t);
        let trace = v.get("trace").and_then(|t| t.as_array()).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].get("kind").and_then(|k| k.as_str()), Some("span"));
        assert_eq!(trace[0].get("start_us").and_then(|k| k.as_u64()), Some(0));
        assert_eq!(trace[1].get("at_us").and_then(|k| k.as_u64()), Some(5000));
    }

    #[test]
    fn trace_json_exports_causal_ids_and_sorts_ties() {
        use crate::trace::{SpanContext, TraceId};
        let t = Telemetry::shared();
        let h = t.handle();
        let root = SpanContext::root(TraceId::derive(42, 1, 0));
        // Record children before the root: the export must still order by
        // (start, target, name), not recording order.
        h.span_in(
            "z",
            "child",
            SimTime::ZERO,
            SimTime::from_millis(1),
            root.child(0),
        );
        h.span_in("a", "root", SimTime::ZERO, SimTime::from_millis(2), root);
        let v = trace_json(&t);
        let trace = v.get("trace").and_then(|t| t.as_array()).unwrap();
        assert_eq!(trace[0].get("target").and_then(|t| t.as_str()), Some("a"));
        assert_eq!(
            trace[0].get("trace").and_then(|t| t.as_str()),
            Some(root.trace.as_hex().as_str())
        );
        assert_eq!(trace[0].get("parent"), Some(&Value::Null));
        assert_eq!(
            trace[1].get("parent").and_then(|p| p.as_str()),
            Some(root.span.as_hex().as_str())
        );
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let reg = MetricsRegistry::new();
        assert_eq!(prometheus_text(&reg), "");
        let v = json_snapshot(&reg);
        assert!(v.get("metrics").is_some());
    }
}
