//! Metric instruments and the registry that owns them.
//!
//! Naming convention (enforced by review, documented in README):
//! `<crate>_<subsystem>_<thing>_<unit>`, e.g. `scfog_sim_queue_wait_seconds`
//! or `scstream_topic_publish_total`. Counters end in `_total`; durations
//! are `_seconds`; sizes are `_bytes`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::stats::percentile_sorted;

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable signed value (e.g. queue depth, consumer lag).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// How a histogram stores observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramMode {
    /// Fixed log-scaled buckets: O(1) memory, percentile error bounded by
    /// the bucket ratio. The default for unbounded-volume instrumentation.
    Bucketed,
    /// Keeps every observation: exact percentiles, memory grows with the
    /// sample. For report-grade statistics over bounded samples.
    Exact,
}

/// Log-scaled-bucket histogram with optional exact-sample mode.
///
/// Bucketed mode uses buckets whose upper bounds grow geometrically from
/// `min_bound` by `ratio` per bucket, plus an overflow bucket. Percentiles
/// are reported as the upper bound of the bucket containing the rank —
/// a value ≥ the true percentile, within one bucket ratio.
#[derive(Debug)]
pub struct Histogram {
    inner: Mutex<HistState>,
    mode: HistogramMode,
    /// Upper bounds of the finite buckets (ascending).
    bounds: Vec<f64>,
}

#[derive(Debug, Default)]
struct HistState {
    /// One count per finite bucket plus a final overflow bucket.
    counts: Vec<u64>,
    /// All observations, kept only in [`HistogramMode::Exact`].
    samples: Vec<f64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Default smallest bucket bound: 1 µs when observing seconds.
pub const DEFAULT_MIN_BOUND: f64 = 1.0e-6;
/// Default geometric bucket growth factor (≤ ~26% relative error).
pub const DEFAULT_RATIO: f64 = 1.6;
/// Default bucket count: covers 1 µs .. ~3.2e6 s with ratio 1.6.
pub const DEFAULT_BUCKETS: usize = 61;

impl Histogram {
    /// Bucketed histogram with the default log scale.
    pub fn bucketed() -> Self {
        Self::with_buckets(DEFAULT_MIN_BOUND, DEFAULT_RATIO, DEFAULT_BUCKETS)
    }

    /// Exact histogram retaining every observation.
    pub fn exact() -> Self {
        Histogram {
            inner: Mutex::new(HistState::new(0)),
            mode: HistogramMode::Exact,
            bounds: Vec::new(),
        }
    }

    /// Bucketed histogram with a custom log scale.
    pub fn with_buckets(min_bound: f64, ratio: f64, buckets: usize) -> Self {
        assert!(
            min_bound > 0.0 && ratio > 1.0 && buckets > 0,
            "invalid bucket scale"
        );
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = min_bound;
        for _ in 0..buckets {
            bounds.push(b);
            b *= ratio;
        }
        Histogram {
            inner: Mutex::new(HistState::new(buckets + 1)),
            mode: HistogramMode::Bucketed,
            bounds,
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        st.count += 1;
        st.sum += v;
        if st.count == 1 {
            st.min = v;
            st.max = v;
        } else {
            st.min = st.min.min(v);
            st.max = st.max.max(v);
        }
        match self.mode {
            HistogramMode::Exact => st.samples.push(v),
            HistogramMode::Bucketed => {
                let idx = self.bucket_index(v);
                st.counts[idx] += 1;
            }
        }
    }

    fn bucket_index(&self, v: f64) -> usize {
        // Linear scan is fine: bucket counts are small and the partition
        // point is usually near the front for sub-second latencies.
        self.bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len())
    }

    /// Mode this histogram was created with.
    pub fn mode(&self) -> HistogramMode {
        self.mode
    }

    /// Upper bounds of the finite buckets (empty in exact mode).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Short human description of the storage layout, used in
    /// [`MetricError::HistogramLayoutMismatch`] messages.
    fn layout(&self) -> String {
        match self.mode {
            HistogramMode::Exact => "exact".to_string(),
            HistogramMode::Bucketed => format!(
                "bucketed({} buckets, min bound {:e}, ratio {:.3})",
                self.bounds.len(),
                self.bounds.first().copied().unwrap_or(f64::NAN),
                if self.bounds.len() >= 2 {
                    self.bounds[1] / self.bounds[0]
                } else {
                    f64::NAN
                },
            ),
        }
    }

    /// Immutable summary of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut samples = st.samples.clone();
        samples.sort_by(|a, b| a.total_cmp(b));
        HistogramSnapshot {
            mode: self.mode,
            bounds: self.bounds.clone(),
            counts: st.counts.clone(),
            sorted_samples: samples,
            count: st.count,
            sum: st.sum,
            min: if st.count > 0 { st.min } else { f64::NAN },
            max: if st.count > 0 { st.max } else { f64::NAN },
        }
    }

    /// Total observation count. Unlike [`Histogram::snapshot`] this takes
    /// the lock and reads one field — no clone, no sort, no allocation —
    /// so scrapers (sctsdb) can poll it on a cadence for free.
    pub fn count(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).count
    }

    /// Sum of every observation; the allocation-free companion of
    /// [`Histogram::count`] for scrape-path `_count`/`_sum` series.
    pub fn sum(&self) -> f64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).sum
    }

    /// Folds another histogram's observations into this one. Both must
    /// have the same mode and (for bucketed) the same bucket bounds.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(self.mode, other.mode, "histogram mode mismatch in merge");
        assert_eq!(
            self.bounds, other.bounds,
            "histogram bounds mismatch in merge"
        );
        let theirs = other.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if theirs.count == 0 {
            return;
        }
        if st.count == 0 {
            st.min = theirs.min;
            st.max = theirs.max;
        } else {
            st.min = st.min.min(theirs.min);
            st.max = st.max.max(theirs.max);
        }
        st.count += theirs.count;
        st.sum += theirs.sum;
        for (mine, t) in st.counts.iter_mut().zip(theirs.counts.iter()) {
            *mine += t;
        }
        st.samples.extend_from_slice(&theirs.samples);
    }
}

impl HistState {
    fn new(buckets: usize) -> Self {
        HistState {
            counts: vec![0; buckets],
            ..Default::default()
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Storage mode of the source histogram.
    pub mode: HistogramMode,
    /// Finite bucket upper bounds (empty in exact mode).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, final entry is overflow (empty in exact mode).
    pub counts: Vec<u64>,
    /// Sorted observations (empty in bucketed mode).
    pub sorted_samples: Vec<f64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation (NaN when empty).
    pub min: f64,
    /// Maximum observation (NaN when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 1]`; `None` when empty.
    ///
    /// Exact mode delegates to [`crate::stats::percentile_sorted`]. Bucketed
    /// mode reports the upper bound of the bucket holding the rank (clamped
    /// to the observed max so p100 equals the true maximum).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        match self.mode {
            HistogramMode::Exact => percentile_sorted(&self.sorted_samples, p),
            HistogramMode::Bucketed => {
                let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
                let mut seen = 0u64;
                for (i, &c) in self.counts.iter().enumerate() {
                    seen += c;
                    if seen >= rank {
                        let bound = if i < self.bounds.len() {
                            self.bounds[i]
                        } else {
                            self.max
                        };
                        return Some(bound.min(self.max));
                    }
                }
                Some(self.max)
            }
        }
    }
}

/// Why a metric registration was refused.
///
/// Historically the registry returned whichever instrument registered
/// *first* under a name: a second crate asking for an exact histogram
/// where a bucketed one already lived would silently feed its
/// report-grade observations into log-scaled buckets (the kind checks
/// only asserted "is a histogram", not "is the same layout"). The
/// `try_*` registration methods surface both collisions as typed errors;
/// the infallible methods panic with the same message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// `name` is already registered as a different instrument kind.
    KindMismatch {
        /// The colliding metric name.
        name: String,
        /// Kind already in the registry (`"counter"`, `"gauge"`, `"histogram"`).
        existing: &'static str,
        /// Kind the caller asked for.
        requested: &'static str,
    },
    /// `name` is a histogram, but with a different storage layout
    /// (exact vs. bucketed, or different bucket bounds).
    HistogramLayoutMismatch {
        /// The colliding metric name.
        name: String,
        /// Layout already in the registry, e.g. `"bucketed(61 buckets, …)"`.
        existing: String,
        /// Layout the caller asked for.
        requested: String,
    },
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::KindMismatch {
                name,
                existing,
                requested,
            } => write!(
                f,
                "metric {name:?} is already registered as a {existing}, not a {requested}"
            ),
            MetricError::HistogramLayoutMismatch {
                name,
                existing,
                requested,
            } => write!(
                f,
                "histogram {name:?} is already registered with layout {existing}, \
                 which conflicts with requested layout {requested}"
            ),
        }
    }
}

impl std::error::Error for MetricError {}

/// One metric as stored in the registry.
#[derive(Debug)]
pub enum Metric {
    /// See [`Counter`].
    Counter(Counter),
    /// See [`Gauge`].
    Gauge(Gauge),
    /// See [`Histogram`].
    Histogram(Histogram),
}

/// Registered metadata + instrument.
#[derive(Debug)]
pub struct MetricEntry {
    /// Human description, exported as Prometheus `# HELP`.
    pub help: String,
    /// The instrument itself.
    pub metric: Metric,
}

/// Owns every metric by name; name order (BTreeMap) makes every export
/// deterministic.
///
/// Cloning the registry handle is cheap (`Arc`); instruments returned by
/// the `*_or_register` methods are `Arc`s too, so call sites can cache
/// them and update without any map lookup.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Arc<MetricEntry>>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register_with(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Arc<MetricEntry> {
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(MetricEntry {
                    help: help.to_string(),
                    metric: make(),
                })
            })
            .clone()
    }

    /// Checks that an already-registered entry matches the requested
    /// `kind`, and — for histograms — the requested storage layout.
    fn check_compatible(
        name: &str,
        e: &MetricEntry,
        kind: &'static str,
        want: Option<&Histogram>,
    ) -> Result<(), MetricError> {
        let existing = match &e.metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        };
        if existing != kind {
            return Err(MetricError::KindMismatch {
                name: name.to_string(),
                existing,
                requested: kind,
            });
        }
        if let (Some(want), Metric::Histogram(have)) = (want, &e.metric) {
            if have.mode() != want.mode() || have.bounds() != want.bounds() {
                return Err(MetricError::HistogramLayoutMismatch {
                    name: name.to_string(),
                    existing: have.layout(),
                    requested: want.layout(),
                });
            }
        }
        Ok(())
    }

    /// Returns the counter `name`, registering it on first use, or a
    /// [`MetricError::KindMismatch`] if `name` exists as another kind.
    pub fn try_counter(&self, name: &str, help: &str) -> Result<Arc<MetricEntry>, MetricError> {
        let e = self.register_with(name, help, || Metric::Counter(Counter::default()));
        Self::check_compatible(name, &e, "counter", None)?;
        Ok(e)
    }

    /// Returns the gauge `name`, registering it on first use, or a
    /// [`MetricError::KindMismatch`] if `name` exists as another kind.
    pub fn try_gauge(&self, name: &str, help: &str) -> Result<Arc<MetricEntry>, MetricError> {
        let e = self.register_with(name, help, || Metric::Gauge(Gauge::default()));
        Self::check_compatible(name, &e, "gauge", None)?;
        Ok(e)
    }

    /// Returns the default-layout bucketed histogram `name`, registering
    /// it on first use. Errors if `name` exists as another kind *or* as a
    /// histogram with a different storage layout (exact mode, or other
    /// bucket bounds) — previously such collisions silently returned the
    /// first-registered instrument.
    pub fn try_histogram(&self, name: &str, help: &str) -> Result<Arc<MetricEntry>, MetricError> {
        let want = Histogram::bucketed();
        let e = self.register_with(name, help, || Metric::Histogram(Histogram::bucketed()));
        Self::check_compatible(name, &e, "histogram", Some(&want))?;
        Ok(e)
    }

    /// Returns the exact-mode histogram `name`, registering it on first
    /// use. Errors on kind or layout collisions (see [`Self::try_histogram`]).
    pub fn try_exact_histogram(
        &self,
        name: &str,
        help: &str,
    ) -> Result<Arc<MetricEntry>, MetricError> {
        let want = Histogram::exact();
        let e = self.register_with(name, help, || Metric::Histogram(Histogram::exact()));
        Self::check_compatible(name, &e, "histogram", Some(&want))?;
        Ok(e)
    }

    /// Returns the custom-scale bucketed histogram `name`, registering it
    /// on first use. Errors on kind or layout collisions.
    pub fn try_histogram_with(
        &self,
        name: &str,
        help: &str,
        min_bound: f64,
        ratio: f64,
        buckets: usize,
    ) -> Result<Arc<MetricEntry>, MetricError> {
        let want = Histogram::with_buckets(min_bound, ratio, buckets);
        let e = self.register_with(name, help, || {
            Metric::Histogram(Histogram::with_buckets(min_bound, ratio, buckets))
        });
        Self::check_compatible(name, &e, "histogram", Some(&want))?;
        Ok(e)
    }

    /// Returns the counter `name`, registering it on first use.
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<MetricEntry> {
        self.try_counter(name, help)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns the gauge `name`, registering it on first use.
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<MetricEntry> {
        self.try_gauge(name, help).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns the bucketed histogram `name`, registering it on first use.
    ///
    /// Panics on kind or storage-layout collisions (see [`Self::try_histogram`]).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<MetricEntry> {
        self.try_histogram(name, help)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns the exact-mode histogram `name`, registering it on first use.
    ///
    /// Panics on kind or storage-layout collisions (see [`Self::try_histogram`]).
    pub fn exact_histogram(&self, name: &str, help: &str) -> Arc<MetricEntry> {
        self.try_exact_histogram(name, help)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Looks up a metric without registering.
    pub fn get(&self, name: &str) -> Option<Arc<MetricEntry>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Names currently registered, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every `(name, entry)` in sorted-name order.
    pub fn for_each(&self, mut f: impl FnMut(&str, &MetricEntry)) {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for (name, entry) in map.iter() {
            f(name, entry);
        }
    }
}

impl MetricEntry {
    /// The counter inside, if this entry is one.
    pub fn as_counter(&self) -> Option<&Counter> {
        match &self.metric {
            Metric::Counter(c) => Some(c),
            _ => None,
        }
    }

    /// The gauge inside, if this entry is one.
    pub fn as_gauge(&self) -> Option<&Gauge> {
        match &self.metric {
            Metric::Gauge(g) => Some(g),
            _ => None,
        }
    }

    /// The histogram inside, if this entry is one.
    pub fn as_histogram(&self) -> Option<&Histogram> {
        match &self.metric {
            Metric::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a_total", "a");
        c.as_counter().unwrap().add(3);
        reg.counter("a_total", "a").as_counter().unwrap().inc();
        assert_eq!(reg.get("a_total").unwrap().as_counter().unwrap().get(), 4);

        let g = reg.gauge("lag", "lag");
        g.as_gauge().unwrap().set(10);
        g.as_gauge().unwrap().add(-3);
        assert_eq!(g.as_gauge().unwrap().get(), 7);
    }

    #[test]
    fn bucketed_percentile_brackets_truth() {
        let h = Histogram::bucketed();
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-3); // 1ms .. 1s
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let p50 = s.percentile(0.5).unwrap();
        // Bucketed p50 over-reports by at most one bucket ratio.
        assert!(
            (0.5..=0.5 * DEFAULT_RATIO * DEFAULT_RATIO).contains(&p50),
            "{p50}"
        );
        assert_eq!(s.percentile(1.0), Some(1.0));
    }

    #[test]
    fn exact_percentiles() {
        let h = Histogram::exact();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), Some(3.0));
        assert_eq!(s.percentile(1.0), Some(5.0));
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean(), Some(3.0));
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::bucketed();
        let b = Histogram::bucketed();
        for i in 0..10 {
            a.observe(0.001 * (i + 1) as f64);
            b.observe(0.1 * (i + 1) as f64);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 20);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.min, 0.001);
    }

    #[test]
    fn registry_is_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total", "z");
        reg.counter("a_total", "a");
        reg.gauge("m_depth", "m");
        assert_eq!(reg.names(), vec!["a_total", "m_depth", "z_total"]);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("x", "x");
        reg.counter("x", "x");
    }

    #[test]
    fn try_registration_reports_kind_mismatch() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a");
        let err = reg.try_gauge("a_total", "a").unwrap_err();
        assert_eq!(
            err,
            MetricError::KindMismatch {
                name: "a_total".to_string(),
                existing: "counter",
                requested: "gauge",
            }
        );
    }

    /// Regression test: registering the same name as a bucketed and then
    /// an exact histogram used to silently return the first-registered
    /// instrument — exact "report-grade" observations would land in
    /// log-scaled buckets with no diagnostic. Now it is a typed error.
    #[test]
    fn histogram_mode_collision_is_a_typed_error() {
        let reg = MetricsRegistry::new();
        reg.histogram("lat_seconds", "lat");
        let err = reg.try_exact_histogram("lat_seconds", "lat").unwrap_err();
        match &err {
            MetricError::HistogramLayoutMismatch {
                name,
                existing,
                requested,
            } => {
                assert_eq!(name, "lat_seconds");
                assert!(existing.starts_with("bucketed("), "{existing}");
                assert_eq!(requested, "exact");
            }
            other => panic!("expected layout mismatch, got {other:?}"),
        }
        // And the reverse direction.
        let reg = MetricsRegistry::new();
        reg.exact_histogram("lat_seconds", "lat");
        assert!(reg.try_histogram("lat_seconds", "lat").is_err());
    }

    #[test]
    fn histogram_bucket_layout_collision_is_a_typed_error() {
        let reg = MetricsRegistry::new();
        reg.try_histogram_with("q_seconds", "q", 1e-3, 2.0, 10)
            .unwrap();
        // Same custom layout re-registers fine.
        reg.try_histogram_with("q_seconds", "q", 1e-3, 2.0, 10)
            .unwrap();
        // Different bounds do not.
        let err = reg
            .try_histogram_with("q_seconds", "q", 1e-6, 1.6, 61)
            .unwrap_err();
        assert!(matches!(err, MetricError::HistogramLayoutMismatch { .. }));
        // Nor does the default layout.
        assert!(reg.try_histogram("q_seconds", "q").is_err());
    }

    #[test]
    #[should_panic(expected = "conflicts with requested layout")]
    fn infallible_histogram_panics_on_layout_collision() {
        let reg = MetricsRegistry::new();
        reg.exact_histogram("lat_seconds", "lat");
        reg.histogram("lat_seconds", "lat");
    }

    #[test]
    fn matching_re_registration_is_fine() {
        let reg = MetricsRegistry::new();
        let a = reg.try_histogram("h_seconds", "h").unwrap();
        let b = reg.try_histogram("h_seconds", "h").unwrap();
        a.as_histogram().unwrap().observe(0.5);
        assert_eq!(b.as_histogram().unwrap().snapshot().count, 1);
        assert!(reg.try_exact_histogram("e_seconds", "e").is_ok());
        assert!(reg.try_counter("c_total", "c").is_ok());
        assert!(reg.try_gauge("g", "g").is_ok());
    }
}
