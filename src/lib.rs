//! # smartcity — distributed cyberinfrastructure for smart cities
//!
//! Facade crate re-exporting every subsystem of the reproduction of
//! *"Towards Distributed Cyberinfrastructure for Smart Cities using Big Data
//! and Deep Learning Technologies"* (ICDCS 2018).
//!
//! The paper's four-layer architecture maps onto these crates:
//!
//! - **Data layer** — [`data`] (synthetic videos, tweets, Waze, city & crime
//!   records), [`geo`] (camera registry, spatial index).
//! - **Hardware layer** — [`fog`] (four-tier edge/fog/server/cloud
//!   discrete-event simulator), [`simclock`].
//! - **Software layer** — [`dfs`] (HDFS-like), [`nosql`] (HBase-like
//!   wide-column + MongoDB-like document store), [`stream`] (Flume/Kafka-like
//!   ingestion), [`compute`] (YARN-like scheduler + Spark-like dataflow +
//!   MLlib-lite), [`neural`] (TensorFlow-substitute DL framework),
//!   [`drl`] (deep reinforcement learning).
//! - **Application layer** — [`core`] (vehicle detection, action recognition,
//!   social-network narrowing, visualization export), [`social`].
//! - **Observability** — [`telemetry`] (metrics registry, sim-time-aware
//!   tracing, JSON / Prometheus exporters used by every layer above),
//!   [`observe`] (causal span trees, critical-path extraction with
//!   p50/p99/max exemplars, Chrome-trace / flamegraph exporters, and a
//!   deterministic multi-window burn-rate SLO alerting engine),
//!   [`tsdb`] (deterministic in-memory time-series store: Gorilla-style
//!   delta-of-delta + XOR compression, windowed rollups with a retention
//!   ladder, PromQL-flavoured queries and recording rules, registry
//!   scraping on a sim-time cadence, and the E19 flight-recorder
//!   artifact).
//! - **Runtime** — [`par`] (deterministic worker pool: any thread count
//!   produces byte-identical results; set via `SCPAR_THREADS`),
//!   [`fault`] (seed-driven fault injection plus retry / timeout /
//!   circuit-breaker policies wired into the fog, DFS, and stream layers),
//!   [`tune`] (deterministic kernel autotuning from the committed
//!   `tuning_table.json`; opt in via `SCTUNE=1`).
//! - **Serving** — [`serve`] (consistent-hash sharding, LRU+TTL query and
//!   inference caches, micro-batched inference, admission control with
//!   load shedding; the tier between the stack and its many consumers).
//!
//! # Quickstart
//!
//! ```
//! use smartcity::core::infrastructure::Cyberinfrastructure;
//!
//! let infra = Cyberinfrastructure::builder().seed(7).build();
//! let report = infra.health_report();
//! assert!(report.layers >= 4);
//! ```

pub use sccompute as compute;
pub use scdata as data;
pub use scdfs as dfs;
pub use scdrl as drl;
pub use scfault as fault;
pub use scfog as fog;
pub use scgeo as geo;
pub use scmetro as metro;
pub use scneural as neural;
pub use scnosql as nosql;
pub use scobserve as observe;
pub use scpar as par;
pub use scprof as prof;
pub use scserve as serve;
pub use scsimd as simd;
pub use scsocial as social;
pub use scstream as stream;
pub use sctelemetry as telemetry;
pub use sctsdb as tsdb;
pub use sctune as tune;
pub use simclock;
pub use smartcity_core as core;
