//! Quickstart: stand up the cyberinfrastructure, archive a camera segment,
//! run the Fig. 4 pipeline end-to-end, and print a health report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smartcity::core::infrastructure::Cyberinfrastructure;
use smartcity::core::pipeline::CityDataPipeline;

fn main() {
    // 1. Build the four-layer infrastructure (Fig. 1).
    let mut infra = Cyberinfrastructure::builder().seed(42).build();
    println!("== Smart-city cyberinfrastructure ==");
    let h = infra.health_report();
    println!(
        "layers={} cameras={} fog_nodes={} datanodes={}/{}",
        h.layers, h.cameras, h.fog_nodes, h.datanodes_alive, h.datanodes_total
    );

    // 2. Data layer: archive a synthetic video segment from the nearest
    //    camera to downtown Baton Rouge into the DFS (3-way replicated).
    let downtown = scgeo::GeoPoint::new(30.4515, -91.1871);
    let cam = infra.cameras().nearest(downtown, 1)[0].id;
    let segment = vec![0xAB; 256 * 1024];
    let path = infra
        .archive_video_segment(cam, 1, &segment)
        .expect("archive segment");
    println!("archived {} bytes from {cam} at {path}", segment.len());

    // 3. Software layer: run the collection → storage → analysis →
    //    visualization pipeline (Fig. 4) against the infrastructure's own
    //    topic, document store, and annotation table.
    let pipeline = CityDataPipeline::new(42, 400, 80);
    let (topic, store, annotations) = infra.pipeline_stores();
    let report = pipeline
        .runner(topic, store, annotations)
        .run()
        .expect("generated pipeline data is always valid");
    println!(
        "pipeline: ingested={} stored={} annotated={} hotspots={}",
        report.ingested,
        report.stored,
        report.annotated,
        report.hotspots.len()
    );
    for (i, hs) in report.hotspots.iter().enumerate() {
        println!("  hotspot {i}: {hs}");
    }
    println!(
        "dashboard KPIs: {}",
        serde_json::to_string(&report.dashboard["kpis"]).expect("serializable")
    );
    println!(
        "geojson features: {}",
        report.geojson["features"].as_array().map_or(0, Vec::len)
    );

    // 4. Fault tolerance: lose two datanodes and read the segment back.
    infra.dfs_mut().kill_node(0).expect("node exists");
    infra.dfs_mut().kill_node(1).expect("node exists");
    let recovered = infra.dfs().read(&path).expect("replicated read");
    assert_eq!(recovered.len(), segment.len());
    println!("segment readable after 2 datanode failures ✔");
}
