//! Suspicious-behaviour monitoring (paper §IV-A2).
//!
//! Trains the Fig. 7 CNN+LSTM recognizer, then monitors a stream of clips
//! from street cameras. Confident clips are classified on the local device
//! (exit 1); uncertain ones ship their ResNet-block-1 feature maps to the
//! analysis server (output 2). Recognized suspicious behaviours raise
//! operator alerts with time, location, and activity type — exactly the
//! fields the paper logs to its database.
//!
//! ```sh
//! cargo run --release --example crime_watch
//! ```

use scdata::actions::ClipGenerator;
use scneural::early_exit::ExitPoint;
use simclock::{SimDuration, SimTime};
use smartcity::core::apps::actions::ActionRecognizer;
use smartcity::core::infrastructure::Cyberinfrastructure;

fn main() {
    // Train the two-exit recognizer.
    let mut gen = ClipGenerator::new(16, 16, 8, 21);
    let (train_clips, train_labels) = gen.dataset(8);
    let mut recognizer = ActionRecognizer::new(16, 8, 6, 0.6, 22);
    println!(
        "training CNN+LSTM recognizer on {} clips ...",
        train_clips.len()
    );
    recognizer.train(&train_clips, &train_labels, 60);
    let (acc, offload) = recognizer.evaluate(&train_clips, &train_labels);
    println!("train accuracy {acc:.3}, server-offload fraction {offload:.3}");

    // Monitor a live-ish stream of clips from downtown cameras.
    let infra = Cyberinfrastructure::builder().seed(23).build();
    let downtown = scgeo::GeoPoint::new(30.4515, -91.1871);
    let cameras = infra.cameras().nearest(downtown, 4);
    let mut stream_gen = ClipGenerator::new(16, 16, 8, 24);
    let (watch_clips, _) = stream_gen.dataset(2);

    let mut clock = SimTime::ZERO;
    let mut alerts = 0;
    for (i, clip) in watch_clips.iter().enumerate() {
        clock += SimDuration::from_secs(30);
        let cam = cameras[i % cameras.len()];
        let rec = &recognizer.recognize(std::slice::from_ref(clip))[0];
        let path = match rec.exit {
            ExitPoint::Local => "device exit-1",
            ExitPoint::Server => "server output-2",
        };
        if rec.raises_alert() {
            alerts += 1;
            println!(
                "ALERT t={clock} cam={} ({}) activity={} conf={:.2} entropy={:.2} via {path} \
                 [operator review queued]",
                cam.id,
                cam.city,
                rec.class.name(),
                rec.confidence,
                rec.entropy
            );
        } else {
            println!(
                "  ok  t={clock} cam={} activity={} via {path}",
                cam.id,
                rec.class.name()
            );
        }
    }
    println!("{alerts} alerts forwarded to the human operator");
}
