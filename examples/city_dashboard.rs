//! City dashboard export (paper §II-C3).
//!
//! Builds the artifacts a D3 web frontend would consume — GeoJSON
//! incident layer, dashboard JSON, the cross-layer report panel (now
//! including the scserve serving tier plus `critical_path` and `alerts`
//! observability panels), rendered SVG charts, a Prometheus metrics
//! snapshot, and a `trace.json` with the exemplar request traces and the
//! SLO alert report — and writes them into `target/dashboard/`.
//!
//! The heavy lifting lives in `smartcity::core::artifacts`, a pure
//! function of the seed; the golden-master suite pins the seed-42 output
//! byte-for-byte, while this example ships the seed-77 city.
//!
//! ```sh
//! cargo run --release --example city_dashboard
//! open target/dashboard/coverage.svg
//! ```

use std::fs;

use smartcity::core::artifacts::build_dashboard_artifacts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/dashboard");
    fs::create_dir_all(out_dir)?;

    let artifacts = build_dashboard_artifacts(77, 800, 160);
    println!(
        "pipeline: {} events stored, {} hotspots, {} SLO alerts",
        artifacts.stored, artifacts.hotspots, artifacts.alerts
    );

    println!("\npipeline telemetry (Prometheus text format):");
    for line in artifacts
        .metrics_prom
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(8)
    {
        println!("  {line}");
    }
    println!(
        "  ... ({} lines total)",
        artifacts.metrics_prom.lines().count()
    );

    for (name, contents) in artifacts.files() {
        fs::write(out_dir.join(name), contents)?;
        println!("wrote target/dashboard/{name} ({} bytes)", contents.len());
    }
    Ok(())
}
