//! City dashboard export (paper §II-C3).
//!
//! Runs the mining pipeline with telemetry attached and writes the actual
//! artifacts a D3 web frontend would consume — GeoJSON incident layer,
//! dashboard JSON (including the telemetry panel), a Prometheus metrics
//! snapshot, and rendered SVG charts — into `target/dashboard/`.
//!
//! ```sh
//! cargo run --release --example city_dashboard
//! open target/dashboard/coverage.svg
//! ```

use std::fs;

use smartcity::core::infrastructure::Cyberinfrastructure;
use smartcity::core::pipeline::CityDataPipeline;
use smartcity::core::viz::{dashboard_with_reports, svg_bar_chart, svg_line_chart, Series};
use smartcity::telemetry::{prometheus_text, Report, Telemetry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/dashboard");
    fs::create_dir_all(out_dir)?;

    // Run the pipeline with a recorder attached: stage spans, counters, and
    // the storage consumer group's metrics all land in one registry.
    let telemetry = Telemetry::shared();
    let mut infra = Cyberinfrastructure::builder().seed(77).build();
    let pipeline = CityDataPipeline::new(77, 800, 160);
    let (topic, store, annotations) = infra.pipeline_stores();
    let report = pipeline
        .runner(topic, store, annotations)
        .recorder(&telemetry)
        .run()
        .expect("generated pipeline data is always valid");
    println!(
        "pipeline: {} events stored, {} hotspots",
        report.stored,
        report.hotspots.len()
    );

    // 1. Incident map layer.
    fs::write(
        out_dir.join("incidents.geojson"),
        serde_json::to_string_pretty(&report.geojson)?,
    )?;

    // 2. KPI dashboard document.
    fs::write(
        out_dir.join("dashboard.json"),
        serde_json::to_string_pretty(&report.dashboard)?,
    )?;

    // 3. Camera coverage bar chart (the Fig. 2 companion).
    let coverage = infra.cameras().coverage_report();
    let bars: Vec<(String, f64)> = coverage
        .iter()
        .map(|c| (c.city.clone(), c.cameras as f64))
        .collect();
    fs::write(
        out_dir.join("coverage.svg"),
        svg_bar_chart("DOTD cameras per city", &bars, 640, 360),
    )?;

    // 4. Fog placement latency chart (the Fig. 3 companion).
    use smartcity::fog::{FogSimulator, Placement, Topology, Workload};
    let sim = FogSimulator::new(Topology::four_tier(8, 4, 2));
    let mut latency_series = Vec::new();
    for (name, placement) in [
        (
            "early-exit",
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ),
        (
            "fog-assisted",
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ),
    ] {
        let points: Vec<(f64, f64)> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&esc| {
                let w = Workload::with_escalation(200, 100_000, 20.0, esc, 78);
                (
                    esc,
                    sim.runner(&w).placement(placement).run().mean_latency_s,
                )
            })
            .collect();
        latency_series.push(Series {
            name: name.into(),
            points,
        });
    }
    fs::write(
        out_dir.join("fog_latency.svg"),
        svg_line_chart("Mean latency vs escalation rate", &latency_series, 640, 360),
    )?;

    // 5. Cross-layer report panel: the pipeline report, a fog run, and the
    //    DFS cluster all render through the shared `Report` trait.
    let w = smartcity::fog::Workload::with_escalation(200, 100_000, 20.0, 0.3, 78);
    let fog_report = sim
        .runner(&w)
        .placement(Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        })
        .run();
    let dfs_stats = infra.dfs().stats();
    let layers = dashboard_with_reports(
        &[("layers", 3.0)],
        &[],
        &[
            ("pipeline", &report as &dyn Report),
            ("fog", &fog_report as &dyn Report),
            ("dfs", &dfs_stats as &dyn Report),
        ],
    );
    fs::write(
        out_dir.join("layers.json"),
        serde_json::to_string_pretty(&layers)?,
    )?;

    // 6. Prometheus scrape snapshot of the whole pipeline run.
    let prom = prometheus_text(telemetry.registry());
    fs::write(out_dir.join("metrics.prom"), &prom)?;
    println!("\npipeline telemetry (Prometheus text format):");
    for line in prom.lines().filter(|l| !l.starts_with('#')).take(8) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", prom.lines().count());

    for f in [
        "incidents.geojson",
        "dashboard.json",
        "coverage.svg",
        "fog_latency.svg",
        "layers.json",
        "metrics.prom",
    ] {
        let size = fs::metadata(out_dir.join(f))?.len();
        println!("wrote target/dashboard/{f} ({size} bytes)");
    }
    Ok(())
}
