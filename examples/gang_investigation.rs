//! Social-network narrowing for a violent incident (paper §IV-B).
//!
//! Builds the 67-gang / 982-member Baton Rouge network, synthesizes a tweet
//! corpus in which a handful of second-degree associates chattered near a
//! robbery, and runs the multi-modal narrowing that shrinks the ~200-person
//! field of interest to a short persons-of-interest list.
//!
//! ```sh
//! cargo run --release --example gang_investigation
//! ```

use scdata::tweets::TweetGenerator;
use scgeo::GeoPoint;
use scsocial::narrowing::{person_handle, Incident, NarrowingConfig};
use scsocial::GangNetworkGenerator;
use simclock::SimTime;
use smartcity::core::apps::social::InvestigationService;

fn main() {
    let network = GangNetworkGenerator::baton_rouge(31).generate();
    let stats = network.member_stats();
    println!("== Baton Rouge network (synthetic, calibrated to §IV-B) ==");
    println!("gangs: {}", network.gang_count());
    println!("members: {}", network.member_count());
    println!(
        "mean first-degree associates: {:.1}",
        stats.mean_first_degree
    );
    println!("mean second-degree field: {:.0}", stats.mean_second_degree);

    // A robbery at a known corner, with a known member involved.
    let incident = Incident {
        location: GeoPoint::new(30.4515, -91.1871),
        time: SimTime::from_secs(86_400 * 3 + 3_600 * 22), // day 3, 22:00
        seed_person: network.members()[40],
    };
    println!(
        "\nincident: armed robbery at {} (seed person {})",
        incident.location, incident.seed_person
    );

    // Corpus: three true second-degree associates tweeted risk vocabulary
    // near the scene; hundreds of benign tweets elsewhere.
    let field = network.graph().second_degree(incident.seed_person);
    let mut gen = TweetGenerator::new(32);
    let mut tweets = Vec::new();
    for &guilty in field.iter().take(3) {
        tweets.push(gen.near_incident(
            &person_handle(guilty),
            incident.location,
            600.0,
            incident.time,
            45 * 60 * 1_000_000,
        ));
    }
    for (i, &p) in field.iter().enumerate().skip(3).take(120) {
        let elsewhere = incident.location.offset_m(8_000.0 + i as f64, -6_000.0);
        tweets.push(gen.benign(&person_handle(p), elsewhere, SimTime::from_secs(1_000)));
    }
    println!("tweet corpus: {} tweets", tweets.len());

    let mut service = InvestigationService::new(network, tweets, NarrowingConfig::default());
    let (report_id, report) = service.investigate(&incident);
    println!("\n== narrowing report ({report_id}) ==");
    println!("first-degree associates: {}", report.first_degree);
    println!(
        "field of interest (second-degree): {}",
        report.field_of_interest
    );
    println!(
        "persons of interest after geo × time × text filter: {}",
        report.persons_of_interest.len()
    );
    for p in &report.persons_of_interest {
        println!("  {p} (investigate)");
    }
    println!("field reduction factor: {:.1}x", report.reduction_factor);
}
