//! AMBER-alert vehicle tracking (paper §IV-A1).
//!
//! "Identifying details of vehicles (e.g., make, model, year, color) from
//! video streams can be critical when tracking cars that are involved in
//! criminal activities (e.g., tracking cars described in AMBER Alerts)."
//!
//! This example trains the early-exit detector, then scans scenes from the
//! cameras nearest a corridor for a specific wanted vehicle class, printing
//! where it was spotted and which tier (device/server) produced each
//! detection.
//!
//! ```sh
//! cargo run --release --example amber_alert
//! ```

use scdata::vehicles::{VehicleCatalog, VehicleClassId};
use scdata::video::FrameGenerator;
use scneural::early_exit::ExitPoint;
use smartcity::core::apps::vehicle::{SceneDetector, VehicleClassifier};
use smartcity::core::infrastructure::Cyberinfrastructure;

fn main() {
    let classes = 8;
    let catalog = VehicleCatalog::generate(classes, 7);
    let wanted = VehicleClassId(3);
    println!(
        "AMBER alert issued for: {}",
        catalog.label(wanted).expect("class exists")
    );

    // Train the split Tiny/Full classifier on labelled crops.
    let mut gen = FrameGenerator::new(catalog.clone(), 16, 16, 8).noise(0.01);
    let (frames, labels) = gen.dataset(classes, 20);
    let mut clf = VehicleClassifier::new(classes, 16, 0.80, 9);
    println!(
        "training early-exit classifier on {} crops ...",
        frames.len()
    );
    clf.train(&frames, &labels, 60, 0.01);
    let (acc, offload) = clf.evaluate(&frames, &labels);
    println!("train accuracy {acc:.3}, offload fraction {offload:.3}");

    // Scan scenes observed by cameras along I-10 through Baton Rouge.
    let infra = Cyberinfrastructure::builder().seed(10).build();
    let downtown = scgeo::GeoPoint::new(30.4515, -91.1871);
    let cameras = infra.cameras().nearest(downtown, 6);
    let mut detector = SceneDetector::new(clf, 0.15);
    let mut scene_gen = FrameGenerator::new(catalog.clone(), 48, 48, 11).noise(0.01);

    let mut localized = 0;
    let mut total_truths = 0;
    let mut class_hits = 0;
    let mut edge_exits = 0;
    let mut server_exits = 0;
    for cam in cameras {
        let (scene, truths) = scene_gen.scene(2);
        let detections = detector.detect(&scene);
        total_truths += truths.len();
        for d in &detections {
            match d.exit {
                ExitPoint::Local => edge_exits += 1,
                ExitPoint::Server => server_exits += 1,
            }
        }
        for t in &truths {
            // Localization: any detection overlapping this vehicle.
            let best = detections
                .iter()
                .filter(|d| d.bbox.iou(&t.bbox) > 0.1)
                .max_by(|a, b| a.bbox.iou(&t.bbox).total_cmp(&b.bbox.iou(&t.bbox)));
            if let Some(d) = best {
                localized += 1;
                let right_class = d.class == t.class;
                if right_class {
                    class_hits += 1;
                }
                if t.class == wanted {
                    println!(
                        "  SIGHTING at {} ({}, {}): bbox ({},{})-({},{}), conf {:.2}, \
                         classified as {} ({})",
                        cam.id,
                        cam.city,
                        cam.corridor,
                        d.bbox.x0,
                        d.bbox.y0,
                        d.bbox.x1,
                        d.bbox.y1,
                        d.confidence,
                        catalog.label(d.class).unwrap_or_default(),
                        if right_class { "MATCH" } else { "mismatch" },
                    );
                }
            }
        }
        println!("{}: {} detections in scene", cam.id, detections.len());
    }
    println!(
        "\nlocalization recall: {localized}/{total_truths}; class matches on localized: \
         {class_hits}/{localized}; exits: {edge_exits} edge / {server_exits} server"
    );
}
