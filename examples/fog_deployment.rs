//! Fog-placement comparison (paper §II-B1, Fig. 3).
//!
//! Runs the same video-analysis workload under four computation placements
//! and prints the latency/bandwidth trade-off table the fog model is built
//! to win: early exit ships a fraction of the bytes of all-cloud while
//! avoiding all-edge's compute bottleneck.
//!
//! ```sh
//! cargo run --release --example fog_deployment
//! ```

use smartcity::fog::{FogSimulator, Placement, Topology, Workload};
use smartcity::telemetry::{prometheus_text, Telemetry};

fn main() {
    let telemetry = Telemetry::shared();
    let sim = FogSimulator::new(Topology::four_tier(8, 4, 2)).with_telemetry(telemetry.handle());
    let workload = Workload::with_escalation(400, 100_000, 20.0, 0.3, 51);
    println!(
        "workload: {} frames, 100 KB each, 30% escalation rate\n",
        workload.len()
    );
    println!(
        "{:<34} {:>10} {:>10} {:>12} {:>10}",
        "placement", "mean s", "p95 s", "upstream MB", "edge util"
    );
    for (name, placement) in [
        ("all-edge (full model on device)", Placement::AllEdge),
        ("server-only (ship raw frames)", Placement::ServerOnly),
        ("all-cloud (ship raw to cloud)", Placement::AllCloud),
        (
            "early-exit (paper, 30% local ops)",
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ),
        (
            "fog-assisted (tiny model on fog)",
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ),
    ] {
        let r = sim.runner(&workload).placement(placement).run();
        println!(
            "{:<34} {:>10.3} {:>10.3} {:>12.2} {:>10.2}",
            name,
            r.mean_latency_s,
            r.p95_latency_s,
            r.total_upstream_bytes() as f64 / 1e6,
            r.utilization_of(smartcity::fog::Tier::Edge),
        );
    }

    println!("\nearly-exit escalation-rate sweep (threshold quality proxy):");
    println!("{:>6} {:>10} {:>14}", "esc", "mean s", "fog→srv MB");
    for esc in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let w = Workload::with_escalation(300, 100_000, 20.0, esc, 52);
        let r = sim
            .runner(&w)
            .placement(Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            })
            .run();
        println!(
            "{esc:>6.1} {:>10.3} {:>14.2}",
            r.mean_latency_s,
            r.fog_to_server_bytes as f64 / 1e6
        );
    }

    // Every run above recorded into the same registry; dump the aggregate
    // scrape a Prometheus server would collect from this node.
    println!("\naggregate telemetry across all runs (Prometheus text format):");
    let prom = prometheus_text(telemetry.registry());
    for line in prom
        .lines()
        .filter(|l| l.starts_with("scfog_sim_jobs") || l.contains("_sum") || l.contains("_count"))
    {
        println!("  {line}");
    }
    println!("  ({} spans traced)", telemetry.trace_len());
}
