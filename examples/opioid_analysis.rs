//! Opioid-epidemic factor analysis (paper §V, future work).
//!
//! Generates synthetic district-level data with a known factor model and
//! recovers the factor ranking on the distributed MLlib substrate — the
//! analysis the paper plans for its health-care extension.
//!
//! ```sh
//! cargo run --release --example opioid_analysis
//! ```

use smartcity::core::apps::opioid::{analyze, generate_districts, TRUE_COEFFICIENTS};

fn main() {
    let districts = generate_districts(250, 1.5, 61);
    println!("generated {} district observations", districts.len());

    let analysis = analyze(&districts);
    println!("model fit: R² = {:.4}", analysis.r_squared);
    println!("\nfactors ranked by standardized weight:");
    for (name, weight) in analysis.ranked_factors() {
        println!("  {name:<22} {weight:>8.3}");
    }
    println!(
        "\nground-truth coefficients (prescriptions, calls, arrests, traffic): {:?}",
        TRUE_COEFFICIENTS
    );

    let sample = &districts[0];
    println!(
        "\ndistrict {}: observed overdose rate {:.1}, predicted {:.1}",
        sample.district,
        sample.overdose_rate,
        analysis.predict(sample)
    );
}
