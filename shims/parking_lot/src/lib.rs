//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std locks behind `parking_lot`'s poison-free API: `lock()` and
//! `read()`/`write()` return guards directly. A poisoned std lock (a thread
//! panicked while holding it) just yields the inner guard, matching
//! `parking_lot`'s behavior of not propagating poison.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
