//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the real API this workspace uses: an immutable,
//! cheaply cloneable byte buffer backed by `Arc<[u8]>`. Clones share the
//! allocation, matching the real crate's zero-copy semantics for the
//! operations used here (`from`, `from_static`, `copy_from_slice`, `slice`,
//! deref to `[u8]`).

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.slice(1..4).as_ref(), &[2, 3, 4]);
        assert_eq!(b.slice(..).to_vec(), vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn static_and_copy() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from_static(b"abc"), b"abc".to_vec());
    }
}
