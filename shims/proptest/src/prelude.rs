//! The usual `use proptest::prelude::*` import surface.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
    BoxedStrategy, Just, ProptestConfig, SizeRange, Strategy, TestRng,
};
