//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`boxed`, range and tuple strategies, [`Just`], [`any`],
//! `collection::vec`/`collection::hash_set`, weighted [`prop_oneof!`], and
//! the [`proptest!`] test macro. Case generation is **deterministic**: the
//! RNG seed is derived from the test's module path, name, and case index,
//! so every run explores the same inputs. There is no shrinking — a failing
//! case panics with the ordinary assert message.

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod prelude;

/// Deterministic RNG used for sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier and case index so each
    /// case gets an independent, reproducible stream.
    pub fn deterministic(test_id: &str, case: u32) -> Self {
        // FNV-1a over the id, then fold in the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
///
/// Object safe: the generic combinators are `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works (see [`BoxedStrategy`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Weighted choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; at least one arm, all weights nonzero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            let w = u64::from(*weight);
            if pick < w {
                return strat.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Wrapping difference handles ranges spanning negatives.
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128 as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let frac = rng.unit_f64() as $t;
                self.start + frac * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; keeps property bodies free of NaN handling.
        (rng.unit_f64() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Number of element counts a collection strategy may produce (inclusive).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Strategy structs for `Vec` and `HashSet`; see [`collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`collection::hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        // Duplicates shrink the set; bounded retries keep this total even
        // when the element domain is smaller than the target size.
        let mut attempts = 0;
        while out.len() < target && attempts < 10 * (target + 1) {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}

pub(crate) fn vec_strategy<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub(crate) fn hash_set_strategy<S: Strategy>(
    element: S,
    size: impl Into<SizeRange>,
) -> HashSetStrategy<S> {
    HashSetStrategy { element, size: size.into() }
}

/// Alternation over strategies, optionally weighted (`N => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion; panics (fails the case) like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a test that runs the body over `config.cases` sampled inputs.
///
/// Attributes (including `#[test]` and doc comments) pass through verbatim;
/// the repo's tests all write `#[test]` explicitly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not use directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut case_rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut case_rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let v = (-100i64..100).sample(&mut rng);
            assert!((-100..100).contains(&v));
            let f = (-10.0f32..10.0).sample(&mut rng);
            assert!((-10.0..10.0).contains(&f));
            let u = (1usize..80).sample(&mut rng);
            assert!((1..80).contains(&u));
        }
    }

    #[test]
    fn determinism() {
        let sample = |case| {
            let mut rng = TestRng::deterministic("det", case);
            collection::vec(0u32..1000, 5..20).sample(&mut rng)
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(sample(3), sample(4));
    }

    #[test]
    fn oneof_weights_and_map() {
        #[derive(Debug, PartialEq)]
        enum E {
            A,
            B(u8),
        }
        let strat = prop_oneof![
            3 => Just(E::A),
            1 => (0u8..10).prop_map(E::B),
        ];
        let mut rng = TestRng::deterministic("oneof", 0);
        let mut saw_a = 0;
        for _ in 0..200 {
            if strat.sample(&mut rng) == E::A {
                saw_a += 1;
            }
        }
        assert!(saw_a > 100, "weighted arm under-selected: {saw_a}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            xs in collection::vec(0u8..50, 0..30),
            flag in any::<bool>(),
            s in collection::hash_set(0u32..6, 0..=2),
        ) {
            prop_assert!(xs.len() < 30);
            prop_assert!(xs.iter().all(|&x| x < 50));
            prop_assert!(s.len() <= 2);
            let _ = flag;
        }
    }
}
