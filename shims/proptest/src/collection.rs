//! Collection strategies (`proptest::collection::{vec, hash_set}`).

use crate::{HashSetStrategy, SizeRange, Strategy, VecStrategy};
use std::hash::Hash;

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    crate::vec_strategy(element, size)
}

/// Hash sets of up to `size` elements drawn from `element`.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    crate::hash_set_strategy(element, size)
}
