//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder surface the benches use — `criterion_group!`
//! (both plain and `name/config/targets` forms), `criterion_main!`,
//! [`Criterion::bench_function`], [`Bencher::iter`] and
//! [`Bencher::iter_batched`] — backed by a small wall-clock harness that
//! calibrates an iteration count per sample and reports min/median/mean.
//! No plotting, no statistics beyond that; good enough to compare kernels
//! and spot order-of-magnitude regressions offline.

use std::time::{Duration, Instant};

/// How much setup output to keep per batch in [`Bencher::iter_batched`].
/// Only a hint in this shim; every batch runs one routine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup product; many per batch upstream.
    SmallInput,
    /// Large setup product; one per batch upstream.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// Top-level harness handle passed to each bench target.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Soft cap on total measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the soft cap on measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs `f` against a [`Bencher`] and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples_ns: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Compatibility no-op (real criterion finalizes reports here).
    pub fn final_summary(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    /// Per-iteration nanoseconds, one entry per sample.
    samples_ns: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: grow the per-sample iteration count until one sample
        // costs ~1ms, so cheap routines aren't drowned in timer noise.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
            if Instant::now() > deadline && self.samples_ns.len() >= 2 {
                break;
            }
        }
    }

    /// Times `routine` over fresh values from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let elapsed = start.elapsed();
            self.samples_ns.push(elapsed.as_nanos() as f64);
            if Instant::now() > deadline && self.samples_ns.len() >= 2 {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group; supports the plain and configured forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("shim/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(5);
        targets = target
    }

    criterion_group!(plain, target);

    #[test]
    fn harness_runs() {
        configured();
        plain();
    }
}
