//! Offline stand-in for `serde`.
//!
//! Defines the `Serialize`/`Deserialize` trait *names* so `use
//! serde::{Serialize, Deserialize}` resolves, and re-exports the no-op
//! derives under the `derive` feature. The traits are deliberately empty:
//! this workspace never drives serde's visitor machinery — JSON flows
//! through `serde_json::Value` exclusively.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
