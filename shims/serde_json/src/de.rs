//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::value::{Map, Number, Value};
use crate::{Error, Result};

/// Parses a JSON document from a string.
pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

/// Parses a JSON document from bytes (must be UTF-8).
pub fn from_slice(input: &[u8]) -> Result<Value> {
    let s = std::str::from_utf8(input).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("validated utf-8");
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(Error::new("unterminated string")),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(Error::new(format!("invalid escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some((_, c)) => {
                    if (c as u32) < 0x20 {
                        return Err(Error::new("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(n)));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::F64(n)))
            .map_err(|_| Error::new(format!("invalid number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::{from_slice, from_str};
    use crate::{json, to_string};

    #[test]
    fn roundtrip() {
        let v = json!({"a": [1, 2.5, "x", null, true], "b": {"c": -7}});
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
        assert_eq!(from_slice(s.as_bytes()).unwrap(), v);
    }

    #[test]
    fn whitespace_and_escapes() {
        let v = from_str(" { \"k\" : \"a\\nb\\u0041\" , \"n\" : 1e2 } ").unwrap();
        assert_eq!(v["k"], "a\nbA");
        assert_eq!(v["n"], 100.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
    }
}
