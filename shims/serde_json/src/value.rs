//! The dynamic JSON value tree.

use std::collections::{btree_map, BTreeMap};
use std::fmt;
use std::ops::Index;

/// A JSON number: integer or float, preserving which one it was written as.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
}

impl Number {
    /// The number as `f64` (always possible, maybe lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(n) => n as f64,
            Number::U64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The number as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(n) => Some(n),
            Number::U64(n) => i64::try_from(n).ok(),
            Number::F64(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(n as i64),
            Number::F64(_) => None,
        }
    }

    /// The number as `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(n) => u64::try_from(n).ok(),
            Number::U64(n) => Some(n),
            Number::F64(n) if n.fract() == 0.0 && n >= 0.0 && n < 1.9e19 => Some(n as u64),
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::U64(a), Number::U64(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A JSON object with sorted keys (deterministic serialization order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map { inner: BTreeMap::new() }
    }

    /// Inserts a key/value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> btree_map::Iter<'_, String, Value> {
        self.inner.iter()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> btree_map::Keys<'_, String, Value> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> btree_map::Values<'_, String, Value> {
        self.inner.values()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map { inner: iter.into_iter().collect() }
    }
}

/// A dynamically typed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer-representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64` if it is an unsigned-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object if it is one.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_string(self).expect("infallible"))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// Conversion into [`Value`], standing in for `Serialize` in the `json!`
/// macro and the `to_string` family.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
    )*};
}

to_json_signed!(i8, i16, i32, i64, isize);

macro_rules! to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(n) => Value::Number(Number::I64(n)),
                    Err(_) => Value::Number(Number::U64(v)),
                }
            }
        }
    )*};
}

to_json_unsigned!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for Map<String, Value> {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}
