//! Offline stand-in for `serde_json`.
//!
//! Implements the dynamic side of the real crate that this workspace uses:
//! [`Value`], [`Map`], the [`json!`] macro, compact/pretty serialization,
//! and a recursive-descent parser for [`from_str`]/[`from_slice`]. The
//! serde trait machinery is intentionally absent — conversion into `Value`
//! goes through the [`ToJson`] trait instead, which the `json!` macro uses
//! for interpolated expressions.
//!
//! Object keys are kept in a `BTreeMap`, matching real serde_json's default
//! (sorted keys), so serialized output is deterministic.

mod de;
mod macros;
mod ser;
mod value;

pub use de::{from_slice, from_str};
pub use ser::{to_string, to_string_pretty, to_vec};
pub use value::{Map, Number, ToJson, Value};

use std::fmt;

/// Error produced by parsing or serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;
