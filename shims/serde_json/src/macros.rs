//! The `json!` construction macro.
//!
//! A token-tree muncher in the style of the real crate: object and array
//! literals are walked token by token so nested `{...}`/`[...]` JSON forms
//! (which are not valid Rust expressions) recurse into `json!` itself, while
//! anything else falls through to an `expr` capture converted via
//! [`crate::ToJson`].

/// Builds a [`crate::Value`] from JSON-like syntax with expression
/// interpolation.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`]; do not use directly.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- terminals -----------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    // ---- arrays --------------------------------------------------------
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };

    // ---- objects -------------------------------------------------------
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};

    // ---- interpolated expression --------------------------------------
    ($other:expr) => { $crate::ToJson::to_json(&$other) };

    // ==== @array: accumulate elements into a vec ========================
    // Done: emit the vec.
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    // Done with trailing element (no comma).
    (@array [$($elems:expr,)*] $last:expr) => {
        ::std::vec![$($elems,)* $crate::json_internal!($last)]
    };
    // Next element is a JSON special form (must win over the expr capture).
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] @skipcomma $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(true),] @skipcomma $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(false),] @skipcomma $($rest)*)
    };
    (@array [$($elems:expr,)*] [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([ $($inner)* ]),] @skipcomma $($rest)*)
    };
    (@array [$($elems:expr,)*] { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({ $($inner)* }),] @skipcomma $($rest)*)
    };
    // Comma skipper after a special form.
    (@array [$($elems:expr,)*] @skipcomma , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };
    (@array [$($elems:expr,)*] @skipcomma) => {
        $crate::json_internal!(@array [$($elems,)*])
    };
    // Plain expression element followed by more elements.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };

    // ==== @object: munch `"key": value` pairs ===========================
    // Done.
    (@object $object:ident () () ()) => {};
    // `"key": <special form>` — JSON literals that are not Rust exprs.
    (@object $object:ident () ($key:literal : null $($rest:tt)*) $copy:tt) => {
        $object.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $object () (@skipcomma $($rest)*) (@skipcomma $($rest)*));
    };
    (@object $object:ident () ($key:literal : [ $($inner:tt)* ] $($rest:tt)*) $copy:tt) => {
        $object.insert(($key).to_string(), $crate::json_internal!([ $($inner)* ]));
        $crate::json_internal!(@object $object () (@skipcomma $($rest)*) (@skipcomma $($rest)*));
    };
    (@object $object:ident () ($key:literal : { $($inner:tt)* } $($rest:tt)*) $copy:tt) => {
        $object.insert(($key).to_string(), $crate::json_internal!({ $($inner)* }));
        $crate::json_internal!(@object $object () (@skipcomma $($rest)*) (@skipcomma $($rest)*));
    };
    // Comma skipper between pairs.
    (@object $object:ident () (@skipcomma , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident () (@skipcomma) $copy:tt) => {};
    // `"key": expr, ...` — expression value followed by more pairs.
    (@object $object:ident () ($key:literal : $value:expr, $($rest:tt)*) $copy:tt) => {
        $object.insert(($key).to_string(), $crate::json_internal!($value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // `"key": expr` — final pair.
    (@object $object:ident () ($key:literal : $value:expr) $copy:tt) => {
        $object.insert(($key).to_string(), $crate::json_internal!($value));
    };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn literals_and_nesting() {
        let v = json!({
            "s": "str",
            "n": 3,
            "f": 2.5,
            "b": true,
            "z": null,
            "arr": [1, 2.0, "three", null, [4], {"five": 5}],
            "obj": { "inner": [true, false] },
        });
        assert_eq!(v["s"], "str");
        assert_eq!(v["n"], 3);
        assert_eq!(v["f"], 2.5);
        assert_eq!(v["b"], true);
        assert!(v["z"].is_null());
        assert_eq!(v["arr"].as_array().unwrap().len(), 6);
        assert_eq!(v["arr"][5]["five"], 5);
        assert_eq!(v["obj"]["inner"][1], false);
    }

    #[test]
    fn interpolation() {
        let name = String::from("fog");
        let xs = vec![1.0f64, 2.0];
        let pairs: Vec<Value> = xs.iter().map(|x| json!([x, 1.0])).collect();
        let v = json!({
            "name": name,
            "count": xs.len(),
            "values": xs,
            "pairs": pairs,
            "formatted": format!("{}-{}", 1, 2),
        });
        assert_eq!(v["name"], "fog");
        assert_eq!(v["count"], 2);
        assert_eq!(v["values"][1], 2.0);
        assert_eq!(v["pairs"][0][0], 1.0);
        assert_eq!(v["formatted"], "1-2");
    }

    #[test]
    fn bare_values() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(7), 7);
        assert_eq!(json!([1, 2]), json!([1, 2]));
        assert_eq!(json!({}), Value::Object(crate::Map::new()));
    }
}
